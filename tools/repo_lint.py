#!/usr/bin/env python
"""Repository-specific lint rules that generic linters do not cover.

Four rules, all born from real failure modes of this codebase:

``RL001`` — no builtin ``hash()`` on routing/persistence code paths
    CPython salts ``hash()`` per process (PYTHONHASHSEED), so a shard
    router or a persisted artifact keyed on it changes meaning across
    restarts and across processes — precisely the places that must be
    deterministic.  Those paths use the CRC-32 based
    ``stable_partition_hash`` instead.  Scoped to ``src/repro/runtime``,
    ``src/repro/persistence`` and ``src/repro/storage``; ``__hash__``
    *method definitions* (in-process identity) are fine, *calling* the
    builtin is not.

``RL002`` — no silently-swallowed broad exceptions in ``src/repro``
    An ``except Exception:`` (or bare ``except:``) whose body is only
    ``pass`` hides real defects with no trace.  Intentional best-effort
    suppression must be spelled ``contextlib.suppress(...)`` — greppable,
    explicit about the exception types, and reviewed as such.

``RL003`` — no ``time.time()`` on latency-measurement paths
    Wall-clock time jumps under NTP slew and DST, so a latency computed
    from two ``time.time()`` readings can be negative or wildly wrong —
    and every histogram it feeds is silently corrupted.  Latency paths
    (``src/repro/runtime``, ``src/repro/gateway``,
    ``src/repro/persistence``, ``src/repro/observability``) must take
    their readings from :mod:`repro.observability.clock`
    (``perf_clock`` for durations, ``monotonic_time`` for
    cross-process span timestamps); ``observability/clock.py`` itself is
    the one sanctioned caller of ``time.time()``.

``RL004`` — every background thread is constructed with ``name=``
    The sampling profiler uses the thread name as the root of every
    collapsed stack, the watchdog and sampler name themselves in health
    reports, and ``threading.enumerate()`` dumps are how stalls get
    debugged — an anonymous ``Thread-7`` is unattributable in all three.
    Every ``threading.Thread(...)`` constructed under ``src/repro`` must
    pass a ``name=`` keyword (``repro-<role>`` by convention).

Run as a script (CI) or through ``tests/test_repo_lint.py``::

    python tools/repo_lint.py            # lint the repository, exit 0/1
    python tools/repo_lint.py --list     # print the rule catalogue
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories where builtin ``hash()`` is forbidden (RL001).
HASH_FORBIDDEN_PATHS = (
    "src/repro/runtime",
    "src/repro/persistence",
    "src/repro/storage",
)

#: Directory tree where silent broad excepts are forbidden (RL002).
SWALLOW_FORBIDDEN_PATH = "src/repro"

#: Latency-measurement trees where ``time.time()`` is forbidden (RL003).
WALL_CLOCK_FORBIDDEN_PATHS = (
    "src/repro/runtime",
    "src/repro/gateway",
    "src/repro/persistence",
    "src/repro/observability",
)

#: The one module allowed to call ``time.time()``: the clock itself.
WALL_CLOCK_SANCTIONED = "src/repro/observability/clock.py"

#: Directory tree where anonymous threads are forbidden (RL004).
THREAD_NAME_REQUIRED_PATH = "src/repro"


class Violation(NamedTuple):
    """One finding: file, line, rule code and explanation."""

    path: str
    line: int
    code: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_builtin_hash_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "hash"
    )


def _is_broad_silent_except(node: ast.AST) -> bool:
    if not isinstance(node, ast.ExceptHandler):
        return False
    if not (len(node.body) == 1 and isinstance(node.body[0], ast.Pass)):
        return False
    if node.type is None:  # bare except:
        return True
    names = []
    if isinstance(node.type, ast.Name):
        names = [node.type.id]
    elif isinstance(node.type, ast.Tuple):
        names = [e.id for e in node.type.elts if isinstance(e, ast.Name)]
    return any(name in ("Exception", "BaseException") for name in names)


def _lint_hash_calls(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_builtin_hash_call(node):
            yield Violation(
                relative,
                node.lineno,
                "RL001",
                "builtin hash() is process-salted and must not be used on "
                "routing/persistence paths; use "
                "repro.runtime.router.stable_partition_hash (or another "
                "explicit, stable hash)",
            )


def _is_wall_clock_call(node: ast.AST) -> bool:
    """Match ``time.time()`` and ``from time import time; time()`` calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return True
    return isinstance(func, ast.Name) and func.id == "time"


def _lint_wall_clock_calls(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_wall_clock_call(node):
            yield Violation(
                relative,
                node.lineno,
                "RL003",
                "time.time() is wall-clock and jumps under NTP/DST; latency "
                "paths must use repro.observability.clock (perf_clock for "
                "durations, monotonic_time for span timestamps, wall_clock "
                "where civil time is genuinely meant)",
            )


def _is_unnamed_thread_ctor(node: ast.AST) -> bool:
    """Match ``threading.Thread(...)`` / ``Thread(...)`` without ``name=``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    is_thread = (
        isinstance(func, ast.Attribute)
        and func.attr == "Thread"
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ) or (isinstance(func, ast.Name) and func.id == "Thread")
    if not is_thread:
        return False
    if any(keyword.arg is None for keyword in node.keywords):  # **kwargs: assume named
        return False
    return not any(keyword.arg == "name" for keyword in node.keywords)


def _lint_unnamed_threads(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_unnamed_thread_ctor(node):
            yield Violation(
                relative,
                node.lineno,
                "RL004",
                "threading.Thread(...) without name=; anonymous threads are "
                "unattributable in profiler collapsed stacks, health reports "
                "and threading.enumerate() dumps — pass name='repro-<role>'",
            )


def _lint_silent_excepts(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_broad_silent_except(node):
            yield Violation(
                relative,
                node.lineno,
                "RL002",
                "'except Exception: pass' silently swallows defects; use "
                "contextlib.suppress(<specific errors>) or handle/log the "
                "exception",
            )


def lint_file(path: Path, root: Optional[Path] = None) -> List[Violation]:
    """Lint one Python file; returns its violations."""
    root = root or REPO_ROOT
    relative = str(path.relative_to(root)) if path.is_relative_to(root) else str(path)
    tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
    violations: List[Violation] = []
    posix = Path(relative).as_posix()
    if any(posix.startswith(prefix) for prefix in HASH_FORBIDDEN_PATHS):
        violations.extend(_lint_hash_calls(path, tree, relative))
    if posix.startswith(SWALLOW_FORBIDDEN_PATH):
        violations.extend(_lint_silent_excepts(path, tree, relative))
    if posix.startswith(THREAD_NAME_REQUIRED_PATH):
        violations.extend(_lint_unnamed_threads(path, tree, relative))
    if (
        any(posix.startswith(prefix) for prefix in WALL_CLOCK_FORBIDDEN_PATHS)
        and posix != WALL_CLOCK_SANCTIONED
    ):
        violations.extend(_lint_wall_clock_calls(path, tree, relative))
    return violations


def lint_repository(root: Optional[Path] = None) -> List[Violation]:
    """Lint every Python file under ``src/repro``; returns all violations."""
    root = root or REPO_ROOT
    violations: List[Violation] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        violations.extend(lint_file(path, root=root))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        print("RL001  no builtin hash() under", ", ".join(HASH_FORBIDDEN_PATHS))
        print("RL002  no silent broad 'except: pass' under", SWALLOW_FORBIDDEN_PATH)
        print(
            "RL003  no time.time() under",
            ", ".join(WALL_CLOCK_FORBIDDEN_PATHS),
            f"(except {WALL_CLOCK_SANCTIONED})",
        )
        print(
            "RL004  every threading.Thread under",
            THREAD_NAME_REQUIRED_PATH,
            "must pass name=",
        )
        return 0
    violations = lint_repository()
    for violation in violations:
        print(violation.describe())
    if violations:
        print(f"{len(violations)} repo-lint violation(s)", file=sys.stderr)
        return 1
    print("repo lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
