#!/usr/bin/env python
"""Repository-specific lint rules that generic linters do not cover.

Two rules, both born from real failure modes of this codebase:

``RL001`` — no builtin ``hash()`` on routing/persistence code paths
    CPython salts ``hash()`` per process (PYTHONHASHSEED), so a shard
    router or a persisted artifact keyed on it changes meaning across
    restarts and across processes — precisely the places that must be
    deterministic.  Those paths use the CRC-32 based
    ``stable_partition_hash`` instead.  Scoped to ``src/repro/runtime``,
    ``src/repro/persistence`` and ``src/repro/storage``; ``__hash__``
    *method definitions* (in-process identity) are fine, *calling* the
    builtin is not.

``RL002`` — no silently-swallowed broad exceptions in ``src/repro``
    An ``except Exception:`` (or bare ``except:``) whose body is only
    ``pass`` hides real defects with no trace.  Intentional best-effort
    suppression must be spelled ``contextlib.suppress(...)`` — greppable,
    explicit about the exception types, and reviewed as such.

Run as a script (CI) or through ``tests/test_repo_lint.py``::

    python tools/repo_lint.py            # lint the repository, exit 0/1
    python tools/repo_lint.py --list     # print the rule catalogue
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories where builtin ``hash()`` is forbidden (RL001).
HASH_FORBIDDEN_PATHS = (
    "src/repro/runtime",
    "src/repro/persistence",
    "src/repro/storage",
)

#: Directory tree where silent broad excepts are forbidden (RL002).
SWALLOW_FORBIDDEN_PATH = "src/repro"


class Violation(NamedTuple):
    """One finding: file, line, rule code and explanation."""

    path: str
    line: int
    code: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_builtin_hash_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "hash"
    )


def _is_broad_silent_except(node: ast.AST) -> bool:
    if not isinstance(node, ast.ExceptHandler):
        return False
    if not (len(node.body) == 1 and isinstance(node.body[0], ast.Pass)):
        return False
    if node.type is None:  # bare except:
        return True
    names = []
    if isinstance(node.type, ast.Name):
        names = [node.type.id]
    elif isinstance(node.type, ast.Tuple):
        names = [e.id for e in node.type.elts if isinstance(e, ast.Name)]
    return any(name in ("Exception", "BaseException") for name in names)


def _lint_hash_calls(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_builtin_hash_call(node):
            yield Violation(
                relative,
                node.lineno,
                "RL001",
                "builtin hash() is process-salted and must not be used on "
                "routing/persistence paths; use "
                "repro.runtime.router.stable_partition_hash (or another "
                "explicit, stable hash)",
            )


def _lint_silent_excepts(path: Path, tree: ast.AST, relative: str) -> Iterable[Violation]:
    for node in ast.walk(tree):
        if _is_broad_silent_except(node):
            yield Violation(
                relative,
                node.lineno,
                "RL002",
                "'except Exception: pass' silently swallows defects; use "
                "contextlib.suppress(<specific errors>) or handle/log the "
                "exception",
            )


def lint_file(path: Path, root: Optional[Path] = None) -> List[Violation]:
    """Lint one Python file; returns its violations."""
    root = root or REPO_ROOT
    relative = str(path.relative_to(root)) if path.is_relative_to(root) else str(path)
    tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
    violations: List[Violation] = []
    posix = Path(relative).as_posix()
    if any(posix.startswith(prefix) for prefix in HASH_FORBIDDEN_PATHS):
        violations.extend(_lint_hash_calls(path, tree, relative))
    if posix.startswith(SWALLOW_FORBIDDEN_PATH):
        violations.extend(_lint_silent_excepts(path, tree, relative))
    return violations


def lint_repository(root: Optional[Path] = None) -> List[Violation]:
    """Lint every Python file under ``src/repro``; returns all violations."""
    root = root or REPO_ROOT
    violations: List[Violation] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        violations.extend(lint_file(path, root=root))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        print("RL001  no builtin hash() under", ", ".join(HASH_FORBIDDEN_PATHS))
        print("RL002  no silent broad 'except: pass' under", SWALLOW_FORBIDDEN_PATH)
        return 0
    violations = lint_repository()
    for violation in violations:
        print(violation.describe())
    if violations:
        print(f"{len(violations)} repo-lint violation(s)", file=sys.stderr)
        return 1
    print("repo lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
