"""Evaluation harness: metrics, workloads and experiment runners.

The paper is a demo paper and reports its evaluation qualitatively ("3-5
samples are sufficient", "overlaps reveal fast during testing", …).  To make
those claims measurable this package provides:

* :mod:`repro.evaluation.metrics` — precision / recall / F1, confusion
  matrices and latency statistics,
* :mod:`repro.evaluation.workloads` — generation of labelled train/test
  splits from the simulator (per gesture, per user),
* :mod:`repro.evaluation.harness` — experiment runners used by the
  ``benchmarks/`` directory: detection accuracy vs number of samples,
  cross-gesture confusion, overlap vs window scaling, optimisation impact
  and engine throughput.
"""

from repro.evaluation.metrics import (
    ClassificationMetrics,
    ConfusionMatrix,
    LatencyStats,
    f1_score,
    precision,
    recall,
)
from repro.evaluation.workloads import EvaluationWorkload, WorkloadConfig, build_workload
from repro.evaluation.harness import (
    AccuracyResult,
    DetectionExperiment,
    ExperimentConfig,
    ThroughputResult,
    measure_throughput,
)

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "ClassificationMetrics",
    "ConfusionMatrix",
    "LatencyStats",
    "WorkloadConfig",
    "EvaluationWorkload",
    "build_workload",
    "ExperimentConfig",
    "DetectionExperiment",
    "AccuracyResult",
    "ThroughputResult",
    "measure_throughput",
]
