"""Workload generation for the evaluation benchmarks.

A workload is a reproducible train/test split generated with the Kinect
simulator: for every gesture in the catalogue, ``training_samples``
performances by a training user and ``test_performances`` by (possibly
different) test users, plus idle segments as negative data.  Benchmarks use
workloads so the numbers in ``EXPERIMENTS.md`` can be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kinect.noise import GaussianNoise
from repro.kinect.recordings import Recording
from repro.kinect.simulator import KinectSimulator
from repro.kinect.trajectories import Trajectory, standard_gesture_catalog
from repro.kinect.users import BodyProfile, user_by_name
from repro.streams.clock import SimulatedClock


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a generated evaluation workload.

    Attributes
    ----------
    gestures:
        Names of the catalogue gestures to include (``None`` = all except
        the control gestures).
    training_samples:
        Number of training performances per gesture.
    test_performances:
        Number of test performances per gesture and test user.
    training_user / test_users:
        Body-profile names; using different users for testing exercises the
        position/scale invariance of the transformation.
    noise_sigma_mm:
        Sensor noise level.
    hold_s:
        Stationary hold before and after every performance.
    seed:
        Random seed for waypoint variation and noise.
    """

    gestures: Optional[Tuple[str, ...]] = None
    training_samples: int = 4
    test_performances: int = 5
    training_user: str = "adult"
    test_users: Tuple[str, ...] = ("adult", "child", "tall_adult")
    noise_sigma_mm: float = 6.0
    hold_s: float = 0.3
    seed: int = 13

    def __post_init__(self) -> None:
        if self.training_samples < 1:
            raise ValueError("training_samples must be at least 1")
        if self.test_performances < 1:
            raise ValueError("test_performances must be at least 1")
        if self.noise_sigma_mm < 0:
            raise ValueError("noise_sigma_mm must be non-negative")


@dataclass
class EvaluationWorkload:
    """A generated train/test corpus.

    Attributes
    ----------
    training:
        gesture name → list of training recordings (same user).
    test:
        gesture name → list of (user name, recording) test performances.
    idle:
        negative recordings (user standing still / random fidgeting).
    catalog:
        gesture name → trajectory used to generate it.
    """

    config: WorkloadConfig
    training: Dict[str, List[Recording]] = field(default_factory=dict)
    test: Dict[str, List[Tuple[str, Recording]]] = field(default_factory=dict)
    idle: List[Recording] = field(default_factory=list)
    catalog: Dict[str, Trajectory] = field(default_factory=dict)

    @property
    def gesture_names(self) -> List[str]:
        return sorted(self.training)

    def training_frames(self, gesture: str) -> List[List[Dict[str, float]]]:
        """The raw frame lists of all training samples of ``gesture``."""
        return [list(recording.frames) for recording in self.training[gesture]]

    def total_test_performances(self) -> int:
        return sum(len(performances) for performances in self.test.values())


def _make_simulator(user: BodyProfile, seed: int, noise_sigma: float) -> KinectSimulator:
    rng = np.random.default_rng(seed)
    return KinectSimulator(
        user=user,
        clock=SimulatedClock(),
        noise=GaussianNoise(sigma_mm=noise_sigma, rng=np.random.default_rng(rng.integers(2**31))),
        rng=np.random.default_rng(rng.integers(2**31)),
    )


def build_workload(config: Optional[WorkloadConfig] = None) -> EvaluationWorkload:
    """Generate a labelled evaluation workload from the simulator."""
    config = config or WorkloadConfig()
    catalog = standard_gesture_catalog()
    if config.gestures is not None:
        unknown = [name for name in config.gestures if name not in catalog]
        if unknown:
            raise ValueError(f"unknown gestures requested: {unknown}")
        catalog = {name: catalog[name] for name in config.gestures}
    else:
        # The two-hand swipe is reserved as the workflow control gesture.
        catalog = {
            name: trajectory
            for name, trajectory in catalog.items()
            if name != "two_hand_swipe"
        }

    workload = EvaluationWorkload(config=config, catalog=dict(catalog))

    training_user = user_by_name(config.training_user)
    for index, (name, trajectory) in enumerate(sorted(catalog.items())):
        simulator = _make_simulator(
            training_user, seed=config.seed + index, noise_sigma=config.noise_sigma_mm
        )
        samples = [
            Recording(
                gesture=name,
                user=training_user.name,
                frames=simulator.perform_variation(
                    trajectory, hold_start_s=config.hold_s, hold_end_s=config.hold_s
                ),
            )
            for _ in range(config.training_samples)
        ]
        workload.training[name] = samples

    for user_offset, user_name in enumerate(config.test_users):
        user = user_by_name(user_name)
        for index, (name, trajectory) in enumerate(sorted(catalog.items())):
            simulator = _make_simulator(
                user,
                seed=config.seed + 1000 + 37 * user_offset + index,
                noise_sigma=config.noise_sigma_mm,
            )
            for _ in range(config.test_performances):
                recording = Recording(
                    gesture=name,
                    user=user.name,
                    frames=simulator.perform_variation(
                        trajectory, hold_start_s=config.hold_s, hold_end_s=config.hold_s
                    ),
                )
                workload.test.setdefault(name, []).append((user.name, recording))

    for user_offset, user_name in enumerate(config.test_users):
        user = user_by_name(user_name)
        simulator = _make_simulator(
            user, seed=config.seed + 5000 + user_offset, noise_sigma=config.noise_sigma_mm
        )
        workload.idle.append(
            Recording(
                gesture="idle",
                user=user.name,
                frames=simulator.idle_frames(3.0),
            )
        )
    return workload
