"""Experiment runners used by the benchmark suite.

Two families of experiments cover the paper's claims:

* :class:`DetectionExperiment` — learn every workload gesture from its
  training samples, deploy the generated queries on a fresh engine, replay
  the (held-out) test performances and idle segments, and score detections
  per gesture.  This powers the accuracy-vs-samples curve ("3-5 samples are
  sufficient"), the cross-user invariance experiment, the overlap study and
  the optimisation ablation.
* :func:`measure_throughput` — stream synthetic frames through an engine
  with a configurable number of deployed gesture queries and measure
  per-tuple latency and sustained throughput against the Kinect's 30 Hz.
  The measurement can A/B the interpreted vs compiled predicate paths
  (``compile_predicates``) and the per-tuple vs batched delivery paths
  (``batch_size``); the result carries the engine's detections so callers
  can assert the fast paths detect exactly what the slow path does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.cep.engine import CEPEngine
from repro.cep.matcher import Detection, MatcherConfig
from repro.cep.query import Query
from repro.cep.views import RAW_STREAM_NAME, install_kinect_view
from repro.core.description import GestureDescription
from repro.core.learner import GestureLearner, LearnerConfig
from repro.core.optimization import OptimizerConfig, PatternOptimizer
from repro.core.querygen import QueryGenConfig, QueryGenerator
from repro.detection.detector import GestureDetector
from repro.evaluation.metrics import ClassificationMetrics, ConfusionMatrix, LatencyStats
from repro.evaluation.workloads import EvaluationWorkload
from repro.kinect.recordings import Recording
from repro.streams.clock import SimulatedClock


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a detection experiment.

    Attributes
    ----------
    training_samples:
        How many of each gesture's training samples to use (``None`` = all).
    window_scale:
        Extra scaling applied to every learned window before deployment
        (the generalisation knob of the overlap study).
    optimize:
        Run the pattern optimiser before deployment.
    learner / querygen / optimizer:
        Component configurations.
    """

    training_samples: Optional[int] = None
    window_scale: float = 1.0
    optimize: bool = False
    learner: LearnerConfig = field(default_factory=LearnerConfig)
    querygen: QueryGenConfig = field(default_factory=QueryGenConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)

    def __post_init__(self) -> None:
        if self.training_samples is not None and self.training_samples < 1:
            raise ValueError("training_samples must be at least 1 when given")
        if self.window_scale <= 0:
            raise ValueError("window_scale must be positive")


@dataclass
class AccuracyResult:
    """Outcome of one detection experiment."""

    per_gesture: Dict[str, ClassificationMetrics] = field(default_factory=dict)
    confusion: Optional[ConfusionMatrix] = None
    descriptions: Dict[str, GestureDescription] = field(default_factory=dict)
    queries: Dict[str, Query] = field(default_factory=dict)
    predicate_evaluations: int = 0
    frames_processed: int = 0

    @property
    def macro_f1(self) -> float:
        if not self.per_gesture:
            return 0.0
        return sum(m.f1 for m in self.per_gesture.values()) / len(self.per_gesture)

    @property
    def macro_recall(self) -> float:
        if not self.per_gesture:
            return 0.0
        return sum(m.recall for m in self.per_gesture.values()) / len(self.per_gesture)

    @property
    def macro_precision(self) -> float:
        if not self.per_gesture:
            return 0.0
        return sum(m.precision for m in self.per_gesture.values()) / len(self.per_gesture)

    def rows(self) -> List[Dict[str, float]]:
        return [metrics.as_row() for _, metrics in sorted(self.per_gesture.items())]


class DetectionExperiment:
    """Learn → deploy → replay → score, on a generated workload."""

    def __init__(
        self,
        workload: EvaluationWorkload,
        config: Optional[ExperimentConfig] = None,
    ) -> None:
        self.workload = workload
        self.config = config or ExperimentConfig()

    # -- learning -------------------------------------------------------------------

    def learn_descriptions(self) -> Dict[str, GestureDescription]:
        """Learn one description per workload gesture from its training data."""
        descriptions: Dict[str, GestureDescription] = {}
        for gesture in self.workload.gesture_names:
            samples = self.workload.training_frames(gesture)
            if self.config.training_samples is not None:
                samples = samples[: self.config.training_samples]
            learner = GestureLearner(gesture, config=self.config.learner)
            description = learner.learn(samples)
            if self.config.window_scale != 1.0:
                description = description.scaled(self.config.window_scale)
            if self.config.optimize:
                optimizer = PatternOptimizer(self.config.optimizer)
                description, _ = optimizer.optimize(description)
            descriptions[gesture] = description
        return descriptions

    # -- full run ---------------------------------------------------------------------

    def run(self) -> AccuracyResult:
        """Execute the experiment and return per-gesture metrics."""
        descriptions = self.learn_descriptions()
        generator = QueryGenerator(self.config.querygen)
        result = AccuracyResult(descriptions=descriptions)

        detector = self._build_detector(descriptions, result, generator)
        gestures = self.workload.gesture_names
        confusion = ConfusionMatrix(gestures)
        metrics = {name: ClassificationMetrics(name) for name in gestures}

        for performed in gestures:
            for _user, recording in self.workload.test.get(performed, []):
                detected = self._replay(detector, recording)
                confusion.record(performed, detected[0] if detected else None)
                detected_set = set(detected)
                if performed in detected_set:
                    metrics[performed].true_positives += 1
                else:
                    metrics[performed].false_negatives += 1
                for other in detected_set - {performed}:
                    if other in metrics:
                        metrics[other].false_positives += 1

        for recording in self.workload.idle:
            detected = self._replay(detector, recording)
            for other in set(detected):
                if other in metrics:
                    metrics[other].false_positives += 1

        result.per_gesture = metrics
        result.confusion = confusion
        result.predicate_evaluations = sum(
            deployed.matcher.stats.predicate_evaluations
            for deployed in detector.engine.queries.values()
        )
        result.frames_processed = detector.engine.tuples_processed
        return result

    # -- helpers ------------------------------------------------------------------------

    def _build_detector(
        self,
        descriptions: Mapping[str, GestureDescription],
        result: AccuracyResult,
        generator: QueryGenerator,
    ) -> GestureDetector:
        engine = CEPEngine(clock=SimulatedClock())
        install_kinect_view(engine)
        detector = GestureDetector(engine=engine, querygen_config=self.config.querygen)
        for gesture, description in sorted(descriptions.items()):
            query = generator.generate(description)
            result.queries[gesture] = query
            detector.deploy(query)
        return detector

    @staticmethod
    def _replay(detector: GestureDetector, recording: Recording) -> List[str]:
        """Replay one recording on a clean detector; return detected gestures."""
        detector.clear()
        detector.process_frames(recording.frames)
        return [event.gesture for event in detector.events]


@dataclass
class ThroughputResult:
    """Outcome of an engine throughput measurement."""

    queries_deployed: int
    frames_processed: int
    elapsed_seconds: float
    per_tuple_latency: LatencyStats
    detections: List[Detection] = field(default_factory=list)

    @property
    def tuples_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.frames_processed / self.elapsed_seconds

    @property
    def realtime_factor(self) -> float:
        """How many times faster than the Kinect's 30 Hz the engine runs."""
        return self.tuples_per_second / 30.0

    def as_row(self) -> Dict[str, float]:
        return {
            "queries": self.queries_deployed,
            "frames": self.frames_processed,
            "tuples_per_s": round(self.tuples_per_second, 1),
            "realtime_x": round(self.realtime_factor, 1),
            "mean_latency_us": round(self.per_tuple_latency.mean * 1e6, 1),
            "p95_latency_us": round(self.per_tuple_latency.p95 * 1e6, 1),
        }


def measure_throughput(
    queries: Sequence[Query],
    frames: Sequence[Mapping[str, float]],
    repeat: int = 1,
    batch_size: Optional[int] = None,
    compile_predicates: bool = True,
) -> ThroughputResult:
    """Measure engine throughput with ``queries`` deployed over ``frames``.

    The frames are raw sensor frames; they pass through the ``kinect_t``
    view and every deployed query, which is the paper's runtime data path.

    Parameters
    ----------
    batch_size:
        When given, frames are pushed through the engine's batched delivery
        path in chunks of this size (each chunk's latency is attributed
        evenly to its tuples); ``None`` pushes frame by frame.
    compile_predicates:
        Deploy matchers with compiled predicate closures (the default) or
        the interpreted ``Expression.evaluate`` walk, for A/B benchmarks.
    """
    engine = CEPEngine(
        clock=SimulatedClock(),
        matcher_config=MatcherConfig(compile_predicates=compile_predicates),
    )
    install_kinect_view(engine)
    for query in queries:
        engine.register_query(query, create_missing_streams=True)

    frames = list(frames)
    latency = LatencyStats()
    processed = 0
    start = time.perf_counter()
    for _ in range(max(1, repeat)):
        if batch_size is None:
            for frame in frames:
                tuple_start = time.perf_counter()
                engine.push(RAW_STREAM_NAME, frame)
                latency.add(time.perf_counter() - tuple_start)
                processed += 1
        else:
            for first in range(0, len(frames), batch_size):
                chunk = frames[first : first + batch_size]
                chunk_start = time.perf_counter()
                engine.push_many(RAW_STREAM_NAME, chunk, batch_size=batch_size)
                share = (time.perf_counter() - chunk_start) / len(chunk)
                for _ in chunk:
                    latency.add(share)
                processed += len(chunk)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        queries_deployed=len(queries),
        frames_processed=processed,
        elapsed_seconds=elapsed,
        per_tuple_latency=latency,
        detections=engine.detections(),
    )
