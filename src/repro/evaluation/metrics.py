"""Detection quality and latency metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def precision(true_positives: int, false_positives: int) -> float:
    """Fraction of reported detections that were correct (1.0 when nothing
    was reported — no spurious detections is a perfect precision)."""
    total = true_positives + false_positives
    if total == 0:
        return 1.0
    return true_positives / total


def recall(true_positives: int, false_negatives: int) -> float:
    """Fraction of performed gestures that were detected (1.0 when nothing
    was performed)."""
    total = true_positives + false_negatives
    if total == 0:
        return 1.0
    return true_positives / total


def f1_score(precision_value: float, recall_value: float) -> float:
    """Harmonic mean of precision and recall."""
    if precision_value + recall_value == 0:
        return 0.0
    return 2 * precision_value * recall_value / (precision_value + recall_value)


@dataclass
class ClassificationMetrics:
    """Detection counts and derived quality metrics for one gesture."""

    gesture: str
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        return precision(self.true_positives, self.false_positives)

    @property
    def recall(self) -> float:
        return recall(self.true_positives, self.false_negatives)

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tabular reporting."""
        return {
            "gesture": self.gesture,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
        }

    def __repr__(self) -> str:
        return (
            f"ClassificationMetrics({self.gesture}: P={self.precision:.2f} "
            f"R={self.recall:.2f} F1={self.f1:.2f})"
        )


class ConfusionMatrix:
    """Counts of (performed gesture → detected gesture) pairs.

    The special detected label ``"(none)"`` counts performances that
    produced no detection at all.
    """

    NONE_LABEL = "(none)"

    def __init__(self, gestures: Sequence[str]) -> None:
        self.gestures = list(gestures)
        self._counts: Dict[Tuple[str, str], int] = {}

    def record(self, performed: str, detected: Optional[str]) -> None:
        detected_label = detected if detected is not None else self.NONE_LABEL
        key = (performed, detected_label)
        self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, performed: str, detected: Optional[str]) -> int:
        detected_label = detected if detected is not None else self.NONE_LABEL
        return self._counts.get((performed, detected_label), 0)

    def row(self, performed: str) -> Dict[str, int]:
        labels = self.gestures + [self.NONE_LABEL]
        return {label: self.count(performed, label) for label in labels}

    def accuracy(self) -> float:
        """Fraction of performances whose first detection was the right one."""
        total = sum(self._counts.values())
        if total == 0:
            return 0.0
        correct = sum(
            count for (performed, detected), count in self._counts.items()
            if performed == detected
        )
        return correct / total

    def to_table(self) -> List[List[str]]:
        """Rows of a printable table: header then one row per gesture."""
        labels = self.gestures + [self.NONE_LABEL]
        table = [["performed \\ detected"] + labels]
        for performed in self.gestures:
            row = self.row(performed)
            table.append([performed] + [str(row[label]) for label in labels])
        return table

    def __repr__(self) -> str:
        return f"ConfusionMatrix(accuracy={self.accuracy():.2f})"


@dataclass
class LatencyStats:
    """Summary statistics over a list of latency samples (seconds)."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Linear-interpolation percentile, ``fraction`` in [0, 1]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be in [0, 1]")
        ordered = sorted(self.samples)
        position = fraction * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def p50(self) -> float:
        return self.percentile(0.5)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def as_row(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean * 1000:.2f}ms, "
            f"p95={self.p95 * 1000:.2f}ms)"
        )
