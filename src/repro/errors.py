"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the gesture-detection stack can catch a single base
class.  Sub-hierarchies mirror the subsystems described in ``DESIGN.md``:
the CEP engine, the learning pipeline, storage, and the interactive
workflow controller.
"""

from __future__ import annotations

from typing import Any, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# CEP engine errors
# ---------------------------------------------------------------------------


class CEPError(ReproError):
    """Base class for errors raised by the CEP engine (``repro.cep``)."""


class SchemaError(CEPError):
    """A tuple does not conform to the schema of the stream it was pushed to,
    or a schema definition itself is invalid (duplicate fields, bad types)."""


class ExpressionError(CEPError):
    """An expression references unknown fields, applies an operator to
    incompatible operands, or calls an unregistered function."""


class QuerySyntaxError(CEPError):
    """The query text could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class QueryRegistrationError(CEPError):
    """A query could not be registered with the engine (duplicate name,
    unknown source stream, or the engine is already closed)."""


class UnknownStreamError(CEPError):
    """A query or view references a stream that is not registered."""


class UnknownViewError(UnknownStreamError):
    """A view name is not installed on the engine.

    Subclasses :class:`UnknownStreamError` because views *are* derived
    streams; existing ``except UnknownStreamError`` handlers keep working.
    """


class UnknownQueryError(QueryRegistrationError):
    """No deployed query has the requested name.

    Subclasses :class:`QueryRegistrationError` for backwards compatibility
    with callers that catch the broader class.
    """


class QueryBuilderError(CEPError):
    """A fluent query-builder chain is incomplete or inconsistent
    (no event patterns, missing output name, unknown policy …)."""


class QueryAnalysisError(QueryRegistrationError):
    """A strict-mode deployment was rejected by the static query analyzer.

    Raised by ``analyze="strict"`` deployments when the analyzer reports
    error-severity findings.  Subclasses :class:`QueryRegistrationError`
    so existing deployment error handlers keep working.

    Attributes
    ----------
    diagnostics:
        The error-severity :class:`repro.analysis.Diagnostic` findings
        that caused the rejection, most severe first.
    codes:
        The distinct diagnostic codes involved, sorted.
    """

    def __init__(
        self,
        subject: str = "query",
        diagnostics: "Sequence[Any]" = (),
        message: str = "",
    ) -> None:
        self.diagnostics = tuple(diagnostics)
        self.codes = sorted({d.code for d in self.diagnostics})
        if not message:
            lines = [
                f"static analysis rejected {subject}: "
                f"{len(self.diagnostics)} error-severity finding(s) "
                f"[{', '.join(self.codes)}]"
            ]
            lines.extend(f"  {d.describe()}" for d in self.diagnostics)
            message = "\n".join(lines)
        super().__init__(message)


class UnknownFunctionError(ExpressionError):
    """An expression calls a function that is not registered as a UDF."""


# ---------------------------------------------------------------------------
# Learning pipeline errors
# ---------------------------------------------------------------------------


class LearningError(ReproError):
    """Base class for errors raised by the gesture learning pipeline."""


class EmptySampleError(LearningError):
    """A gesture sample contains no usable measurements."""


class IncompatibleSampleError(LearningError):
    """A new sample cannot be merged into an existing gesture description,
    e.g. because it tracks different joints than previous samples."""


class SampleDeviationWarning(UserWarning):
    """Issued when a newly added sample deviates strongly from the windows
    mined from previous samples (paper, Sec. 3.3.2)."""


class ValidationError(LearningError):
    """Gesture validation failed (e.g. an unresolvable overlap between two
    gesture patterns was detected and strict mode is enabled)."""


class QueryGenerationError(LearningError):
    """A CEP query could not be generated from a gesture description."""


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for gesture database errors."""


class GestureNotFoundError(StorageError):
    """The requested gesture does not exist in the gesture database."""


class DuplicateGestureError(StorageError):
    """A gesture with the same name already exists and overwrite is off."""


class SerializationError(StorageError):
    """A gesture description could not be (de)serialised."""


# ---------------------------------------------------------------------------
# Workflow / controller errors
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Base class for errors raised by the interactive learning workflow."""


class InvalidWorkflowStateError(WorkflowError):
    """An operation was requested that is not legal in the current state of
    the learning workflow (e.g. finalising before any sample was recorded)."""


class RecordingError(WorkflowError):
    """Recording a gesture sample failed (e.g. the user never became
    stationary, or the recording contained no movement)."""


# ---------------------------------------------------------------------------
# Session façade errors
# ---------------------------------------------------------------------------


class SessionError(ReproError):
    """Base class for errors raised by the :class:`repro.api.GestureSession`
    façade."""


class SessionStateError(SessionError):
    """An operation is not legal in the session's current lifecycle state
    (e.g. calling ``start()`` twice)."""


class SessionClosedError(SessionStateError):
    """The session has been closed; no further data can be fed through it."""


# ---------------------------------------------------------------------------
# Sharded runtime errors
# ---------------------------------------------------------------------------


class ShardedRuntimeError(ReproError):
    """Base class for errors raised by the sharded concurrent runtime
    (:mod:`repro.runtime`)."""


class RuntimeStateError(ShardedRuntimeError):
    """An operation is not legal in the runtime's current lifecycle state
    (e.g. feeding before ``start()`` or after ``stop()``)."""


class BackpressureError(ShardedRuntimeError):
    """A bounded shard queue is full and its backpressure policy is
    ``"error"``: the producer must slow down or drop data itself."""


class ShardFailedError(ShardedRuntimeError):
    """A worker shard died on an exception.

    The failing shard's original exception is chained as ``__cause__`` and
    also available as :attr:`cause`; ``shard_id`` names the shard.
    """

    def __init__(self, shard_id: int, cause: BaseException, detail: str = "") -> None:
        message = f"shard {shard_id} failed: {cause!r}"
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)
        self.shard_id = shard_id
        self.cause = cause


# ---------------------------------------------------------------------------
# Durability / persistence errors
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for errors raised by the durability subsystem
    (:mod:`repro.persistence`): event log, snapshots, recovery, replay."""


class EventLogError(PersistenceError):
    """The append-only event log could not be written, rotated or read
    (I/O failure, corrupt segment, manifest/segment disagreement)."""


class SnapshotError(PersistenceError):
    """A state snapshot could not be captured, written or restored —
    including a component refusing a state blob of the wrong kind or an
    incompatible topology (shard count / partition field mismatch)."""


class RecoveryError(PersistenceError):
    """Recovery from a durability directory failed (no usable snapshot or
    log, or the replayed tail is inconsistent with the snapshot)."""


class ReplayStateError(PersistenceError):
    """A replay operation is not legal in the controller's current state
    (seeking behind the cursor without a snapshot, advancing a finished
    replay, …)."""


# ---------------------------------------------------------------------------
# Gateway errors
# ---------------------------------------------------------------------------


class GatewayError(ReproError):
    """Base class for errors raised by the network-facing ingestion gateway
    (:mod:`repro.gateway`)."""


class WebSocketError(GatewayError):
    """A websocket frame or handshake violated RFC 6455 (bad opcode,
    unmasked client frame, fragmented control frame, truncated stream)."""


class HandshakeError(WebSocketError):
    """The HTTP request could not be upgraded to a websocket connection
    (missing ``Sec-WebSocket-Key``, wrong method, unsupported version)."""


class MessageTooBigError(WebSocketError):
    """An incoming frame or reassembled message exceeded the configured
    size limit; the connection is closed with status 1009."""


class ConnectionClosedError(WebSocketError):
    """The peer closed (or dropped) the connection; ``code`` carries the
    close status when one was received (``None`` on an abrupt drop)."""

    def __init__(self, message: str = "connection closed", code: "Any" = None) -> None:
        super().__init__(message)
        self.code = code


class GatewayProtocolError(GatewayError):
    """A client message violated the gateway's application protocol.

    ``code`` is the stable, typed error code sent back to the client in
    the error frame (see ``repro.gateway.protocol.ErrorCode``); ``fatal``
    says whether the server closes the connection after sending it.
    """

    def __init__(self, code: str, message: str, fatal: bool = False, **extra: "Any") -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message
        self.fatal = fatal
        #: Extra fields copied onto the error frame (e.g. the analyzer's
        #: diagnostic ``codes`` on an ``analysis_rejected`` rejection).
        self.extra = extra


class AdmissionError(GatewayError):
    """Edge admission control rejected the work under the tenant's
    ``error`` backpressure policy (or a hard limit such as the per-tenant
    connection cap was hit)."""


# ---------------------------------------------------------------------------
# Application-layer errors
# ---------------------------------------------------------------------------


class ApplicationError(ReproError):
    """Base class for errors raised by the demo applications."""


class NavigationError(ApplicationError):
    """An OLAP or graph navigation operation could not be applied."""


class BindingError(ApplicationError):
    """A gesture could not be bound to an application action."""
