"""Textual visualisation of gesture patterns and detection attempts.

The original demo renders an animated 3D body model with the learned windows
and tracked joint paths overlaid (paper Fig. 5) so users can see *why* a
movement was or was not detected.  Without a GUI this module provides the
closest faithful substitute: structured scene descriptions and compact ASCII
renderings that examples, logs and tests can emit.

Two artefacts are produced:

* :func:`describe_gesture` / :func:`render_gesture_ascii` — the learned pose
  windows of one gesture, projected onto a chosen coordinate plane,
* :func:`describe_attempt` — a detection attempt: which poses of the pattern
  a recorded movement passed through, where it left the expected corridor,
  and the final partial-match progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.description import GestureDescription


@dataclass
class AttemptReport:
    """How far a recorded movement got through a gesture's pose sequence."""

    gesture: str
    poses_total: int
    poses_reached: int
    frames: int
    first_unreached_pose: Optional[int]
    worst_miss_mm: float
    per_pose_hits: Dict[int, int] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        if self.poses_total == 0:
            return 0.0
        return self.poses_reached / self.poses_total

    @property
    def detected(self) -> bool:
        return self.poses_reached == self.poses_total

    def summary(self) -> str:
        state = "DETECTED" if self.detected else "not detected"
        lines = [
            f"gesture '{self.gesture}': {state} "
            f"({self.poses_reached}/{self.poses_total} poses, {self.frames} frames)"
        ]
        if not self.detected and self.first_unreached_pose is not None:
            lines.append(
                f"  movement never reached pose {self.first_unreached_pose}; "
                f"closest approach missed it by {self.worst_miss_mm:.0f} mm"
            )
        for index in sorted(self.per_pose_hits):
            lines.append(f"  pose {index}: {self.per_pose_hits[index]} matching frame(s)")
        return "\n".join(lines)


def describe_gesture(description: GestureDescription) -> List[Dict[str, object]]:
    """Return one row per pose window (centre/width per constrained field)."""
    rows: List[Dict[str, object]] = []
    for pose in description.poses:
        row: Dict[str, object] = {"pose": pose.sequence_index, "support": pose.support}
        for name in pose.window.fields:
            row[name] = (
                round(pose.window.center[name], 1),
                round(pose.window.width[name], 1),
            )
        rows.append(row)
    return rows


def describe_attempt(
    description: GestureDescription,
    frames: Sequence[Mapping[str, float]],
) -> AttemptReport:
    """Explain how far ``frames`` progressed through ``description``.

    The analysis walks the pose sequence the same way the NFA matcher does
    (each frame may advance by at most one pose) but additionally records,
    for the first pose that was never reached, how close the movement came —
    the number the paper's overlay visualisation conveys graphically.
    """
    poses = sorted(description.poses, key=lambda pose: pose.sequence_index)
    reached = 0
    per_pose_hits: Dict[int, int] = {pose.sequence_index: 0 for pose in poses}
    for frame in frames:
        if reached < len(poses) and poses[reached].contains(frame):
            per_pose_hits[poses[reached].sequence_index] += 1
            reached += 1
        # Count re-visits of already reached poses for the report.
        for pose in poses[:reached]:
            if pose.contains(frame):
                per_pose_hits[pose.sequence_index] += 1

    first_unreached = poses[reached].sequence_index if reached < len(poses) else None
    worst_miss = 0.0
    if first_unreached is not None and frames:
        target = poses[reached].window
        worst_miss = min(target.distance_from(frame) for frame in frames)
        # Convert window-width multiples into an approximate millimetre miss.
        mean_width = sum(target.width.values()) / len(target.width)
        worst_miss *= mean_width
    return AttemptReport(
        gesture=description.name,
        poses_total=len(poses),
        poses_reached=reached,
        frames=len(frames),
        first_unreached_pose=first_unreached,
        worst_miss_mm=worst_miss,
        per_pose_hits=per_pose_hits,
    )


def render_gesture_ascii(
    description: GestureDescription,
    plane: Tuple[str, str] = ("rhand_x", "rhand_y"),
    width: int = 61,
    height: int = 19,
    path: Optional[Sequence[Mapping[str, float]]] = None,
) -> str:
    """Render pose windows (and optionally a path) onto an ASCII grid.

    Pose windows are drawn as numbered boxes projected onto ``plane``; the
    optional ``path`` (e.g. a recorded attempt) is overlaid as ``*`` marks.
    The rendering is intentionally coarse — it is a debugging aid and the
    stand-in for the paper's 3D overlay, not a plotting library.
    """
    horizontal, vertical = plane
    relevant = [
        pose for pose in description.poses
        if horizontal in pose.window.center and vertical in pose.window.center
    ]
    if not relevant:
        return f"(gesture '{description.name}' does not constrain {horizontal}/{vertical})"

    lows_h = [pose.window.lower(horizontal) for pose in relevant]
    highs_h = [pose.window.upper(horizontal) for pose in relevant]
    lows_v = [pose.window.lower(vertical) for pose in relevant]
    highs_v = [pose.window.upper(vertical) for pose in relevant]
    if path:
        lows_h.extend(float(frame[horizontal]) for frame in path if horizontal in frame)
        highs_h.extend(float(frame[horizontal]) for frame in path if horizontal in frame)
        lows_v.extend(float(frame[vertical]) for frame in path if vertical in frame)
        highs_v.extend(float(frame[vertical]) for frame in path if vertical in frame)
    min_h, max_h = min(lows_h), max(highs_h)
    min_v, max_v = min(lows_v), max(highs_v)
    span_h = max(max_h - min_h, 1e-6)
    span_v = max(max_v - min_v, 1e-6)

    def to_cell(h_value: float, v_value: float) -> Tuple[int, int]:
        column = int((h_value - min_h) / span_h * (width - 1))
        row = int((max_v - v_value) / span_v * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, column))

    grid = [[" " for _ in range(width)] for _ in range(height)]

    for pose in relevant:
        top_left = to_cell(pose.window.lower(horizontal), pose.window.upper(vertical))
        bottom_right = to_cell(pose.window.upper(horizontal), pose.window.lower(vertical))
        label = str(pose.sequence_index % 10)
        for row in range(top_left[0], bottom_right[0] + 1):
            for column in range(top_left[1], bottom_right[1] + 1):
                on_border = (
                    row in (top_left[0], bottom_right[0])
                    or column in (top_left[1], bottom_right[1])
                )
                if on_border and grid[row][column] == " ":
                    grid[row][column] = label

    if path:
        for frame in path:
            if horizontal not in frame or vertical not in frame:
                continue
            row, column = to_cell(float(frame[horizontal]), float(frame[vertical]))
            grid[row][column] = "*"

    header = (
        f"'{description.name}' — {horizontal} (→ {min_h:.0f}..{max_h:.0f} mm) vs "
        f"{vertical} (↑ {min_v:.0f}..{max_v:.0f} mm)"
    )
    return "\n".join([header] + ["".join(row) for row in grid])
