"""Events delivered to applications and to the learning GUI.

Two kinds of objects leave the detection layer:

* :class:`GestureEvent` — "the output tuple sent to the application on
  gesture detection" (paper Sec. 3.3.4): the gesture name plus optional
  measures computed during detection (duration, involved joints, matched
  pose timestamps),
* :class:`DetectionFeedback` — the live progress information the paper's
  testing phase visualises (Fig. 5 / Sec. 3.1): how far each deployed
  pattern's best partial match has advanced, which helps users understand
  *why* a movement was not detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cep.matcher import Detection


@dataclass(frozen=True)
class GestureEvent:
    """A detected gesture, as delivered to application callbacks.

    ``partition`` identifies *who* gestured: it is the value of the
    matcher's partition field (the Kinect player id on the default
    configuration), or ``None`` for unpartitioned deployments.
    """

    gesture: str
    timestamp: float
    duration: float
    pose_timestamps: Tuple[float, ...] = ()
    measures: Dict[str, float] = field(default_factory=dict)
    partition: Any = None

    @property
    def player(self) -> Any:
        """Alias for :attr:`partition` under the Kinect schema's field name."""
        return self.partition

    @classmethod
    def from_detection(cls, detection: Detection) -> "GestureEvent":
        """Build an application event from an engine detection."""
        measures: Dict[str, float] = {}
        if detection.matched:
            last = detection.matched[-1]
            for key in ("rhand_x", "rhand_y", "rhand_z", "lhand_x", "lhand_y", "lhand_z"):
                if key in last:
                    measures[key] = float(last[key])
        return cls(
            gesture=detection.output,
            timestamp=detection.timestamp,
            duration=detection.duration,
            pose_timestamps=detection.step_timestamps,
            measures=measures,
            partition=detection.partition,
        )

    def __repr__(self) -> str:
        who = f", player={self.partition!r}" if self.partition is not None else ""
        return (
            f"GestureEvent(gesture={self.gesture!r}, t={self.timestamp:.3f}, "
            f"duration={self.duration:.3f}s{who})"
        )


@dataclass(frozen=True)
class DetectionFeedback:
    """Progress snapshot of all deployed gesture patterns.

    Attributes
    ----------
    timestamp:
        Time the snapshot was taken.
    progress:
        Gesture name → fraction of the pattern's poses already matched by
        its best partial match (0.0 … < 1.0; a completed match becomes a
        :class:`GestureEvent` instead).
    active_runs:
        Gesture name → number of partial matches currently tracked.
    """

    timestamp: float
    progress: Dict[str, float] = field(default_factory=dict)
    active_runs: Dict[str, int] = field(default_factory=dict)

    def best_candidate(self) -> Optional[str]:
        """The gesture the user currently seems closest to completing."""
        if not self.progress:
            return None
        name, value = max(self.progress.items(), key=lambda item: item[1])
        return name if value > 0 else None

    def describe(self) -> str:
        """Human-readable one-liner for console feedback."""
        if not self.progress:
            return "no gestures deployed"
        parts = [
            f"{name}: {value:.0%}"
            for name, value in sorted(self.progress.items(), key=lambda i: -i[1])
        ]
        return ", ".join(parts)
