"""The gesture detector: deploys learned gestures and dispatches events.

:class:`GestureDetector` is the runtime face of the system once learning is
done.  It owns (or is handed) a CEP engine with the ``kinect`` /
``kinect_t`` streams, turns gesture descriptions into queries via the
query generator, deploys them, and converts engine detections into
:class:`~repro.detection.events.GestureEvent` objects delivered to
registered handlers — exactly the "Controller / Application" interface of
the paper's Fig. 2.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cep.engine import CEPEngine, DeployedQuery
from repro.cep.matcher import Detection
from repro.cep.query import Query
from repro.cep.sinks import CallbackSink
from repro.cep.views import TRANSFORMED_STREAM_NAME, install_kinect_view
from repro.transform.pipeline import KinectTransformer
from repro.core.description import GestureDescription
from repro.core.querygen import QueryGenConfig, QueryGenerator
from repro.detection.events import DetectionFeedback, GestureEvent
from repro.errors import BindingError, GestureNotFoundError
from repro.storage.database import GestureDatabase
from repro.streams.clock import Clock, SimulatedClock

GestureHandler = Callable[[GestureEvent], None]


class GestureDetector:
    """Deploys gesture patterns on a CEP engine and dispatches events.

    Parameters
    ----------
    engine:
        An existing engine to deploy on; a new one (with the Kinect view
        installed) is created when omitted.
    clock:
        Time source for a newly created engine.
    querygen_config:
        Configuration used when deploying :class:`GestureDescription`
        objects (ignored for pre-built queries).

    Examples
    --------
    >>> detector = GestureDetector()
    >>> events = []
    >>> from repro.core import GestureDescription, PoseWindow, Window
    >>> description = GestureDescription(
    ...     name="hands_up",
    ...     poses=[PoseWindow(0, Window({"rhand_y": 500.0}, {"rhand_y": 200.0}))],
    ... )
    >>> detector.deploy(description)
    >>> detector.on_gesture("hands_up", events.append)
    >>> detector.process_frame({"ts": 0.0, "torso_x": 0, "torso_y": 0, "torso_z": 0,
    ...                         "rhand_x": 0, "rhand_y": 400, "rhand_z": 0,
    ...                         "relbow_x": 0, "relbow_y": 200, "relbow_z": 0})
    """

    def __init__(
        self,
        engine: Optional[CEPEngine] = None,
        clock: Optional[Clock] = None,
        querygen_config: Optional[QueryGenConfig] = None,
    ) -> None:
        if engine is None:
            engine = CEPEngine(clock=clock or SimulatedClock())
            install_kinect_view(engine)
        self.engine = engine
        self.generator = QueryGenerator(querygen_config)
        self._handlers: Dict[str, List[GestureHandler]] = {}
        self._global_handlers: List[GestureHandler] = []
        self._deployed: Dict[str, DeployedQuery] = {}
        self.events: List[GestureEvent] = []
        # Serialises event dispatch: on a sharded runtime detections arrive
        # from several worker threads at once, and handlers plus the events
        # list must observe them one at a time.  Reentrant because a handler
        # may feed another frame whose detection dispatches recursively.
        self._dispatch_lock = threading.RLock()

    # -- deployment ------------------------------------------------------------------

    def deploy(
        self,
        gesture: Union[GestureDescription, Query, str, Any],
        name: Optional[str] = None,
        analyze: str = "off",
    ) -> DeployedQuery:
        """Deploy a gesture description, a query object, query text, or a
        fluent builder chain (anything with a ``build() -> Query`` method).

        Returns the engine's deployed-query handle.  The gesture becomes
        active immediately; previously deployed gestures keep running.
        ``analyze`` gates the deployment through the static query analyzer
        (see :meth:`repro.cep.engine.CEPEngine.register_query`).
        """
        if isinstance(gesture, GestureDescription):
            query: Union[Query, str] = self.generator.generate(gesture)
            registration = name or gesture.name
        else:
            query = gesture
            registration = name

        sink = CallbackSink(self._dispatch)
        deployed = self.engine.register_query(
            query,
            name=registration,
            sink=sink,
            create_missing_streams=True,
            analyze=analyze,
        )
        self._deployed[deployed.name] = deployed
        return deployed

    def deploy_from_database(
        self, database: GestureDatabase, enabled_only: bool = True, analyze: str = "off"
    ) -> List[str]:
        """Deploy every gesture stored in ``database``; return their names.

        With ``analyze`` other than ``"off"`` the whole vocabulary is
        analysed first — including the cross-query duplicate, subsumption
        and factoring rules — and gated as one unit, then the individual
        deployments skip re-analysis.
        """
        if analyze != "off":
            from repro.analysis import (
                AnalysisContext,
                analyze_vocabulary,
                gate_diagnostics,
                validate_analyze_mode,
            )

            validate_analyze_mode(analyze)
            # Analyse exactly the queries the loop below will deploy: same
            # enabled filter, same generator configuration.
            queries = {
                record.name: self.generator.generate(record.description)
                for record in database.all_gestures(enabled_only=enabled_only)
            }
            report = analyze_vocabulary(
                queries, context=AnalysisContext.for_engine(self.engine)
            )
            gate_diagnostics(report.diagnostics, analyze, subject="vocabulary")
        deployed: List[str] = []
        for record in database.all_gestures(enabled_only=enabled_only):
            self.deploy(record.description)
            deployed.append(record.name)
        return deployed

    def undeploy(self, name: str) -> None:
        """Remove a deployed gesture."""
        if name not in self._deployed:
            raise GestureNotFoundError(f"gesture '{name}' is not deployed")
        self.engine.unregister_query(name)
        del self._deployed[name]

    def deployed_gestures(self) -> List[str]:
        return sorted(self._deployed)

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Pause/resume a deployed gesture (e.g. while its query is tuned)."""
        if name not in self._deployed:
            raise GestureNotFoundError(f"gesture '{name}' is not deployed")
        self.engine.enable_query(name, enabled)

    # -- handlers ---------------------------------------------------------------------

    def on_gesture(self, name: str, handler: GestureHandler) -> None:
        """Register a handler called whenever gesture ``name`` is detected."""
        if not callable(handler):
            raise BindingError("gesture handler must be callable")
        self._handlers.setdefault(name, []).append(handler)

    def on_any_gesture(self, handler: GestureHandler) -> None:
        """Register a handler called for every detection."""
        if not callable(handler):
            raise BindingError("gesture handler must be callable")
        self._global_handlers.append(handler)

    def _dispatch(self, detection: Detection) -> None:
        with self._dispatch_lock:
            event = GestureEvent.from_detection(detection)
            self.events.append(event)
            for handler in list(self._handlers.get(event.gesture, [])):
                handler(event)
            for handler in list(self._global_handlers):
                handler(event)

    # -- data path --------------------------------------------------------------------------

    def process_frame(self, frame: Mapping[str, float], stream: str = "kinect") -> None:
        """Push one raw sensor frame into the engine."""
        self.engine.push(stream, frame)

    def process_frames(
        self,
        frames: Sequence[Mapping[str, float]],
        stream: str = "kinect",
        batch_size: Optional[int] = None,
    ) -> int:
        """Push a whole recording; returns the number of frames pushed.

        ``batch_size`` selects the engine's batched delivery path (see
        :meth:`CEPEngine.push_many`); the default keeps per-tuple fan-out.
        """
        return self.engine.push_many(stream, frames, batch_size=batch_size)

    # -- transformation state ---------------------------------------------------------

    @property
    def transformers(self) -> List[KinectTransformer]:
        """The stateful Kinect transformers of the engine's installed views."""
        return [
            view.function
            for view in self.engine.views.values()
            if isinstance(view.function, KinectTransformer)
        ]

    @property
    def transformer(self) -> Optional[KinectTransformer]:
        """The ``kinect_t`` view's transformer (``None`` if not installed)."""
        view = self.engine.views.get(TRANSFORMED_STREAM_NAME)
        if view is not None and isinstance(view.function, KinectTransformer):
            return view.function
        transformers = self.transformers
        return transformers[0] if transformers else None

    # -- feedback / introspection --------------------------------------------------------------

    def feedback(self) -> DetectionFeedback:
        """Current partial-match progress of every deployed gesture."""
        timestamp = self.engine.clock.now()
        progress = {
            name: deployed.matcher.progress()
            for name, deployed in self._deployed.items()
        }
        active = {
            name: deployed.matcher.active_runs
            for name, deployed in self._deployed.items()
        }
        return DetectionFeedback(
            timestamp=timestamp, progress=progress, active_runs=active
        )

    def detections(self, name: Optional[str] = None) -> List[Detection]:
        """Raw engine detections (see :meth:`events` for application events)."""
        return self.engine.detections(name)

    def clear(self) -> None:
        """Reset the detector for a fresh scene.

        Drops collected events/detections, all partial matches, *and* the
        kinect view's smoothed-scale state: ``KinectTransformer.reset`` is
        exactly the "new user steps in" hook, and skipping it would let a
        previous user's smoothed scale skew the next user's first seconds.
        """
        self.events.clear()
        self.engine.clear_detections()
        self.engine.reset_matchers()
        for transformer in self.transformers:
            transformer.reset()

    def __repr__(self) -> str:
        return (
            f"GestureDetector(deployed={self.deployed_gestures()}, "
            f"events={len(self.events)})"
        )
