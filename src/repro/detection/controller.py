"""Motion detection and the sample-recording state machine (paper Sec. 3.1).

Recording training samples must itself be touchless, so the paper drives it
with control gestures and stationary-pose detection:

* the user triggers recording with a *wave* gesture,
* to avoid capturing the control gesture itself, the user first moves to
  the gesture's start pose; "the actual recording is triggered after the
  user did not move for some time",
* recording "lasts until the user stops at the end pose",
* a *two-hand swipe* finalises the learning phase.

:class:`MotionDetector` decides "is the user currently moving?" from a short
sliding window of transformed frames; :class:`RecordingController` is the
state machine that turns that signal plus the control-gesture events into
recorded samples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.distance import joint_fields
from repro.errors import RecordingError


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning of motion detection and the recording state machine.

    Attributes
    ----------
    motion_window_s:
        Length of the sliding window used to decide stationarity.
    frequency_hz:
        Sensor frame rate (window length in frames = window_s × rate).
    stationary_threshold_mm:
        The user counts as stationary when each observed joint stays within
        a bounding box of this diagonal over the whole window.  The default
        leaves ample headroom above Kinect-class sensor jitter (a joint held
        still with ~5-10 mm noise covers 40-70 mm over a 0.4 s window) while
        staying far below the several hundred millimetres an actual gesture
        movement covers.
    stationary_hold_s:
        How long the user must remain stationary before recording starts
        (and before a running recording is considered finished).
    watched_joints:
        Joints whose movement is monitored (hands by default — they carry
        gesture movement).
    max_recording_s:
        Safety bound: a recording longer than this raises
        :class:`~repro.errors.RecordingError` (the user likely walked away).
    min_recording_frames:
        Recordings shorter than this are rejected as accidental twitches.
    """

    motion_window_s: float = 0.4
    frequency_hz: float = 30.0
    stationary_threshold_mm: float = 100.0
    stationary_hold_s: float = 0.5
    watched_joints: Tuple[str, ...] = ("rhand", "lhand")
    max_recording_s: float = 15.0
    min_recording_frames: int = 8

    def __post_init__(self) -> None:
        if self.motion_window_s <= 0:
            raise ValueError("motion_window_s must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.stationary_threshold_mm <= 0:
            raise ValueError("stationary_threshold_mm must be positive")
        if self.stationary_hold_s < 0:
            raise ValueError("stationary_hold_s must be non-negative")
        if self.max_recording_s <= 0:
            raise ValueError("max_recording_s must be positive")
        if self.min_recording_frames < 1:
            raise ValueError("min_recording_frames must be at least 1")

    @property
    def window_frames(self) -> int:
        return max(2, int(round(self.motion_window_s * self.frequency_hz)))

    @property
    def hold_frames(self) -> int:
        return max(1, int(round(self.stationary_hold_s * self.frequency_hz)))


class MotionDetector:
    """Sliding-window movement detector over transformed frames."""

    def __init__(self, config: Optional[ControllerConfig] = None) -> None:
        self.config = config or ControllerConfig()
        self._fields = joint_fields(list(self.config.watched_joints))
        self._window: Deque[Mapping[str, float]] = deque(
            maxlen=self.config.window_frames
        )

    def reset(self) -> None:
        self._window.clear()

    def observe(self, frame: Mapping[str, float]) -> bool:
        """Add a frame; return True when the user is currently stationary.

        Until the window is full the user is reported as *moving* — starting
        to record on insufficient evidence would capture garbage.
        """
        self._window.append(frame)
        if len(self._window) < self.config.window_frames:
            return False
        return self.current_extent() <= self.config.stationary_threshold_mm

    def current_extent(self) -> float:
        """Largest per-joint bounding-box diagonal over the window (mm).

        The per-joint maximum (instead of a sum over all watched joints)
        keeps the stationarity decision independent of how many joints are
        watched: sensor jitter on several idle joints must not add up to a
        "movement".
        """
        if not self._window:
            return 0.0
        largest = 0.0
        for joint in self.config.watched_joints:
            total = 0.0
            for axis in ("x", "y", "z"):
                name = f"{joint}_{axis}"
                values = [float(frame[name]) for frame in self._window if name in frame]
                if not values:
                    continue
                span = max(values) - min(values)
                total += span * span
            largest = max(largest, total ** 0.5)
        return largest


class RecordingPhase(str, Enum):
    """States of the sample-recording state machine."""

    IDLE = "idle"
    ARMED = "armed"              # control gesture seen; waiting for start pose
    READY = "ready"              # user is stationary at the start pose
    RECORDING = "recording"      # movement in progress
    FINISHING = "finishing"      # user became stationary; confirming the end pose
    COMPLETE = "complete"        # a sample is available via take_sample()


@dataclass
class _RecordingState:
    frames: List[Dict[str, float]] = field(default_factory=list)
    stationary_streak: int = 0
    start_ts: float = 0.0


class RecordingController:
    """Turns the motion signal into recorded gesture samples.

    The controller is fed *transformed* frames one at a time via
    :meth:`observe`; control-gesture detections arrive via :meth:`arm` (the
    wave gesture) and are usually wired up by the
    :class:`~repro.detection.workflow.LearningWorkflow`.
    """

    def __init__(self, config: Optional[ControllerConfig] = None) -> None:
        self.config = config or ControllerConfig()
        self.motion = MotionDetector(self.config)
        self.phase = RecordingPhase.IDLE
        self._state = _RecordingState()
        self._completed: Optional[List[Dict[str, float]]] = None
        self._last_timestamp = -1.0 / self.config.frequency_hz

    # -- control ---------------------------------------------------------------------

    def arm(self) -> None:
        """Arm the controller (the user performed the record control gesture)."""
        self.phase = RecordingPhase.ARMED
        self.motion.reset()
        self._state = _RecordingState()
        self._completed = None

    def cancel(self) -> None:
        """Abort any recording in progress."""
        self.phase = RecordingPhase.IDLE
        self._state = _RecordingState()
        self._completed = None
        self.motion.reset()

    # -- data path --------------------------------------------------------------------

    def observe(self, frame: Mapping[str, float]) -> RecordingPhase:
        """Feed one transformed frame; returns the controller phase after it."""
        stationary = self.motion.observe(frame)
        timestamp = self._frame_timestamp(frame)

        if self.phase in (RecordingPhase.IDLE, RecordingPhase.COMPLETE):
            return self.phase

        if self.phase is RecordingPhase.ARMED:
            if stationary:
                self._state.stationary_streak += 1
                if self._state.stationary_streak >= self.config.hold_frames:
                    self.phase = RecordingPhase.READY
                    self._state.stationary_streak = 0
            else:
                self._state.stationary_streak = 0
            return self.phase

        if self.phase is RecordingPhase.READY:
            if not stationary:
                # Movement started: this frame is the first of the sample.
                self.phase = RecordingPhase.RECORDING
                self._state.frames = [dict(frame)]
                self._state.start_ts = timestamp
            return self.phase

        if self.phase is RecordingPhase.RECORDING:
            self._state.frames.append(dict(frame))
            self._check_duration(timestamp)
            if stationary:
                self._state.stationary_streak += 1
                if self._state.stationary_streak >= self.config.hold_frames:
                    self._finish()
            else:
                self._state.stationary_streak = 0
            return self.phase

        return self.phase

    def _frame_timestamp(self, frame: Mapping[str, float]) -> float:
        """Event time of a frame, synthesised when the frame carries no ``ts``.

        The max-duration guard compares the current frame's time against the
        recording's start time, so both must come from one monotone basis.
        Frames lacking ``ts`` previously defaulted to ``0.0``, which made
        the guard compare against zero and either never fire or cancel
        immediately.  A ``ts``-less frame now advances the last seen
        timestamp by one frame period, so fully ts-less streams count time
        from zero at the configured rate, and streams that lose ``ts``
        mid-recording keep counting from where the real timestamps stopped.
        """
        value = frame.get("ts")
        if value is not None:
            self._last_timestamp = float(value)
        else:
            self._last_timestamp += 1.0 / self.config.frequency_hz
        return self._last_timestamp

    def _check_duration(self, timestamp: float) -> None:
        if timestamp - self._state.start_ts > self.config.max_recording_s:
            self.cancel()
            raise RecordingError(
                "recording exceeded the maximum duration of "
                f"{self.config.max_recording_s:.0f}s and was cancelled"
            )

    def _finish(self) -> None:
        frames = self._state.frames
        # Drop the trailing stationary frames (the end-pose hold) except for
        # a short tail that anchors the end pose.
        tail = self.config.hold_frames
        if len(frames) > tail:
            frames = frames[: len(frames) - tail + 1]
        if len(frames) < self.config.min_recording_frames:
            # Too short to be a deliberate gesture: go back to READY and wait.
            self.phase = RecordingPhase.READY
            self._state = _RecordingState()
            return
        self._completed = frames
        self.phase = RecordingPhase.COMPLETE

    # -- results ------------------------------------------------------------------------

    @property
    def has_sample(self) -> bool:
        return self._completed is not None

    def take_sample(self) -> List[Dict[str, float]]:
        """Return the recorded sample and reset to IDLE.

        Raises
        ------
        RecordingError
            If no completed sample is available.
        """
        if self._completed is None:
            raise RecordingError("no completed recording is available")
        sample = self._completed
        self._completed = None
        self.phase = RecordingPhase.IDLE
        self._state = _RecordingState()
        self.motion.reset()
        return sample
