"""The interactive gesture-learning workflow (paper Fig. 2 / Sec. 3.1).

:class:`LearningWorkflow` wires every component of the reproduction into the
loop the paper demonstrates:

1. the Kinect stream flows through the engine and the ``kinect_t`` view,
2. pre-defined *control gestures* steer the tool itself: a wave arms the
   recording controller for a new sample, a two-hand swipe finalises the
   learning phase,
3. recorded samples are mined (distance-based sampling) and merged into the
   gesture description incrementally, with deviation warnings,
4. on finalisation the CEP query is generated, stored in the gesture
   database and deployed, and the workflow enters the *testing phase*, where
   the user's movements either produce detections or progress feedback that
   explains how far the best partial match got.

Besides the stream-driven path, every step can be driven programmatically
(``begin_gesture`` / ``record_sample`` / ``finalize``), which is what the
examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Mapping, Optional, Sequence

from repro.cep.engine import CEPEngine
from repro.cep.matcher import Detection
from repro.cep.sinks import CallbackSink
from repro.cep.views import RAW_STREAM_NAME, TRANSFORMED_STREAM_NAME, install_kinect_view
from repro.core.description import GestureDescription
from repro.core.learner import GestureLearner, LearnerConfig
from repro.core.merging import MergeResult
from repro.core.querygen import QueryGenConfig, QueryGenerator
from repro.core.validation import OverlapReport, PatternValidator
from repro.detection.controller import ControllerConfig, RecordingController, RecordingPhase
from repro.detection.detector import GestureDetector
from repro.detection.events import DetectionFeedback, GestureEvent
from repro.errors import InvalidWorkflowStateError, RecordingError
from repro.storage.database import GestureDatabase
from repro.streams.clock import Clock, SimulatedClock

#: Query text of the pre-defined control gestures (paper Sec. 3.1).  They are
#: deliberately generous windows so they work without per-user training; the
#: workflow exposes them for reconfiguration.
WAVE_CONTROL_QUERY = """
SELECT "__control_record"
MATCHING (
  kinect_t( abs(rhand_x - 400) < 120 and abs(rhand_y - 450) < 160 ) ->
  kinect_t( abs(rhand_x - 100) < 120 and abs(rhand_y - 450) < 160 )
  within 2 seconds select first consume all
) ->
kinect_t( abs(rhand_x - 400) < 120 and abs(rhand_y - 450) < 160 )
within 2 seconds select first consume all;
"""

FINALIZE_CONTROL_QUERY = """
SELECT "__control_finalize"
MATCHING kinect_t(
  abs(rhand_x - 100) < 150 and abs(lhand_x + 100) < 150 and
  abs(rhand_y - 200) < 160 and abs(lhand_y - 200) < 160
) ->
kinect_t(
  abs(rhand_x - 600) < 200 and abs(lhand_x + 600) < 200
)
within 2 seconds select first consume all;
"""

#: Registration names of the control queries.
CONTROL_RECORD = "__control_record"
CONTROL_FINALIZE = "__control_finalize"


class WorkflowPhase(str, Enum):
    """Top-level states of the learning workflow."""

    IDLE = "idle"
    COLLECTING = "collecting"
    TESTING = "testing"


@dataclass(frozen=True)
class WorkflowConfig:
    """Configuration of the learning workflow.

    Attributes
    ----------
    min_samples:
        Minimum samples required before :meth:`LearningWorkflow.finalize`
        accepts (the paper reports 3–5 are usually sufficient).
    learner:
        Configuration template for per-gesture learners.
    querygen:
        Query-generation configuration.
    controller:
        Motion-detection / recording configuration.
    validate_on_finalize:
        Run the overlap validator against already stored gestures when a new
        gesture is finalised.
    auto_deploy:
        Deploy the generated query immediately on finalisation (the testing
        phase of the paper).
    """

    min_samples: int = 3
    learner: LearnerConfig = field(default_factory=LearnerConfig)
    querygen: QueryGenConfig = field(default_factory=QueryGenConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    validate_on_finalize: bool = True
    auto_deploy: bool = True

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


class LearningWorkflow:
    """End-to-end interactive gesture learning."""

    def __init__(
        self,
        engine: Optional[CEPEngine] = None,
        database: Optional[GestureDatabase] = None,
        config: Optional[WorkflowConfig] = None,
        clock: Optional[Clock] = None,
        deploy_control_gestures: bool = True,
        detector: Optional[GestureDetector] = None,
    ) -> None:
        self.config = config or WorkflowConfig()
        if engine is None:
            engine = detector.engine if detector is not None else None
        if engine is None:
            engine = CEPEngine(clock=clock or SimulatedClock())
            install_kinect_view(engine)
        self.engine = engine
        self.database = database or GestureDatabase(":memory:")
        if detector is not None and detector.engine is not engine:
            raise InvalidWorkflowStateError(
                "the workflow's detector must share the workflow's engine"
            )
        self.detector = detector or GestureDetector(
            engine=engine, querygen_config=self.config.querygen
        )
        self.controller = RecordingController(self.config.controller)
        self.generator = QueryGenerator(self.config.querygen)
        self.validator = PatternValidator()

        self.phase = WorkflowPhase.IDLE
        self.messages: List[str] = []
        self._learner: Optional[GestureLearner] = None
        self._current_gesture: Optional[str] = None
        self._last_report: Optional[OverlapReport] = None

        # Controller listens to the transformed stream.
        self._transformed = self.engine.get_stream(TRANSFORMED_STREAM_NAME)
        self._transformed.subscribe(self._on_transformed_frame, name="workflow-controller")

        if deploy_control_gestures:
            self._deploy_control_gestures()

    # -- control-gesture wiring --------------------------------------------------------

    def _deploy_control_gestures(self) -> None:
        record_sink = CallbackSink(self._on_record_control)
        finalize_sink = CallbackSink(self._on_finalize_control)
        self.engine.register_query(
            WAVE_CONTROL_QUERY, name=CONTROL_RECORD, sink=record_sink
        )
        self.engine.register_query(
            FINALIZE_CONTROL_QUERY, name=CONTROL_FINALIZE, sink=finalize_sink
        )

    def _on_record_control(self, detection: Detection) -> None:
        if self.phase is WorkflowPhase.COLLECTING:
            self._log("control: wave detected — move to the start pose and hold still")
            self.controller.arm()

    def _on_finalize_control(self, detection: Detection) -> None:
        if self.phase is WorkflowPhase.COLLECTING and self.sample_count >= self.config.min_samples:
            self._log("control: two-hand swipe detected — finalising gesture")
            self.finalize()

    # -- stream-driven path ---------------------------------------------------------------

    def process_frame(self, frame: Mapping[str, float]) -> None:
        """Push one raw sensor frame into the engine (streaming mode)."""
        self.engine.push(RAW_STREAM_NAME, frame)

    def process_frames(self, frames: Sequence[Mapping[str, float]]) -> int:
        for frame in frames:
            self.process_frame(frame)
        return len(frames)

    def _on_transformed_frame(self, frame: Mapping[str, float]) -> None:
        if self.phase is not WorkflowPhase.COLLECTING:
            return
        phase = self.controller.observe(frame)
        if phase is RecordingPhase.COMPLETE and self.controller.has_sample:
            sample = self.controller.take_sample()
            result = self._add_transformed_sample(sample)
            self._log(
                f"recorded sample {result.sample_index + 1} "
                f"({len(sample)} frames, deviation {result.deviation:.2f})"
            )

    # -- programmatic path -----------------------------------------------------------------

    def begin_gesture(self, name: str) -> None:
        """Start collecting samples for a new gesture."""
        if self.phase is WorkflowPhase.COLLECTING:
            raise InvalidWorkflowStateError(
                f"already collecting samples for '{self._current_gesture}'"
            )
        learner_config = self.config.learner
        # The workflow always feeds the learner transformed frames.
        learner_config = LearnerConfig(
            joints=learner_config.joints,
            min_joint_path_mm=learner_config.min_joint_path_mm,
            joint_path_fraction=learner_config.joint_path_fraction,
            sampling=learner_config.sampling,
            merging=learner_config.merging,
            transform_input=False,
            stream=learner_config.stream,
        )
        self._learner = GestureLearner(name, config=learner_config)
        self._current_gesture = name
        self.phase = WorkflowPhase.COLLECTING
        self._log(f"started learning gesture '{name}'")

    def record_sample(self, frames: Sequence[Mapping[str, float]], raw: bool = True) -> MergeResult:
        """Add one sample programmatically.

        Parameters
        ----------
        frames:
            The sample's sensor frames.
        raw:
            Whether the frames are raw camera frames (they are transformed
            with the engine's ``kinect_t`` transformer) or already
            transformed.
        """
        if self.phase is not WorkflowPhase.COLLECTING or self._learner is None:
            raise InvalidWorkflowStateError("call begin_gesture() before record_sample()")
        if not frames:
            raise RecordingError("cannot record an empty sample")
        if raw:
            transformer = self.engine.get_view(TRANSFORMED_STREAM_NAME).function
            frames = [transformer(frame) for frame in frames]
        return self._add_transformed_sample(frames)

    def _add_transformed_sample(
        self, frames: Sequence[Mapping[str, float]]
    ) -> MergeResult:
        assert self._learner is not None
        result = self._learner.add_sample(frames)
        for warning in result.warnings:
            self._log(f"warning: {warning}")
        return result

    @property
    def sample_count(self) -> int:
        return self._learner.sample_count if self._learner else 0

    @property
    def current_gesture(self) -> Optional[str]:
        return self._current_gesture

    def finalize(self) -> GestureDescription:
        """Finish learning: generate, validate, store and deploy the query."""
        if self.phase is not WorkflowPhase.COLLECTING or self._learner is None:
            raise InvalidWorkflowStateError("no gesture is currently being learned")
        if self.sample_count < self.config.min_samples:
            raise InvalidWorkflowStateError(
                f"gesture '{self._current_gesture}' has only {self.sample_count} "
                f"sample(s); {self.config.min_samples} are required"
            )
        description = self._learner.description()
        query = self.generator.generate(description)
        query_text = query.to_query()

        if self.config.validate_on_finalize:
            existing = [record.description for record in self.database.all_gestures()]
            self._last_report = self.validator.validate(existing + [description])
            for first, second in self._last_report.subsumptions:
                self._log(f"validation: pattern '{first}' also detects '{second}'")

        self.database.save_gesture(description, query_text=query_text)
        if self.config.auto_deploy:
            if description.name in self.detector.deployed_gestures():
                self.detector.undeploy(description.name)
            self.detector.deploy(description)
            self.database.log_deployment(description.name, query_text)

        self.phase = WorkflowPhase.TESTING
        self._log(
            f"gesture '{description.name}' learned from {description.sample_count} "
            f"sample(s): {description.pose_count} poses, "
            f"{description.predicate_count()} predicates"
        )
        return description

    def accept(self) -> None:
        """Accept the tested gesture and return to the idle state."""
        if self.phase is not WorkflowPhase.TESTING:
            raise InvalidWorkflowStateError("there is no gesture under test to accept")
        self.phase = WorkflowPhase.IDLE
        self._learner = None
        self._current_gesture = None
        self._log("gesture accepted")

    def discard(self) -> None:
        """Throw away the gesture being learned or tested."""
        if self._current_gesture is not None:
            if self._current_gesture in self.detector.deployed_gestures():
                self.detector.undeploy(self._current_gesture)
            if self.database.has_gesture(self._current_gesture) and self.phase is WorkflowPhase.TESTING:
                self.database.delete_gesture(self._current_gesture)
        self.phase = WorkflowPhase.IDLE
        self._learner = None
        self._current_gesture = None
        self.controller.cancel()
        self._log("gesture discarded")

    # -- testing phase -------------------------------------------------------------------------

    def test_events(self) -> List[GestureEvent]:
        """Gesture events observed since deployment (the testing phase)."""
        return list(self.detector.events)

    def feedback(self) -> DetectionFeedback:
        """Partial-match progress of all deployed gestures (Fig. 5 feedback)."""
        return self.detector.feedback()

    @property
    def last_validation(self) -> Optional[OverlapReport]:
        return self._last_report

    # -- misc --------------------------------------------------------------------------------------

    def _log(self, message: str) -> None:
        self.messages.append(message)

    def __repr__(self) -> str:
        return (
            f"LearningWorkflow(phase={self.phase.value}, "
            f"gesture={self._current_gesture!r}, samples={self.sample_count})"
        )
