"""Gesture detection and the interactive learning workflow.

This package connects the learning pipeline (:mod:`repro.core`) with the
CEP engine (:mod:`repro.cep`) the way the paper's Fig. 2 describes:

* :mod:`repro.detection.events` — the gesture events and feedback objects
  applications receive,
* :mod:`repro.detection.detector` — :class:`GestureDetector`, which deploys
  learned gestures as CEP queries and dispatches detections to handlers,
* :mod:`repro.detection.controller` — motion/stationary detection and the
  recording state machine driven by control gestures (wave to record, both
  hands to finalise),
* :mod:`repro.detection.workflow` — :class:`LearningWorkflow`, the
  end-to-end interactive loop: record samples, mine patterns, merge, deploy
  and test, with visual-feedback hooks.
"""

from repro.detection.events import DetectionFeedback, GestureEvent
from repro.detection.detector import GestureDetector
from repro.detection.controller import (
    ControllerConfig,
    MotionDetector,
    RecordingController,
    RecordingPhase,
)
from repro.detection.workflow import LearningWorkflow, WorkflowConfig, WorkflowPhase
from repro.detection.visualization import (
    AttemptReport,
    describe_attempt,
    describe_gesture,
    render_gesture_ascii,
)

__all__ = [
    "AttemptReport",
    "describe_attempt",
    "describe_gesture",
    "render_gesture_ascii",
    "GestureEvent",
    "DetectionFeedback",
    "GestureDetector",
    "MotionDetector",
    "RecordingController",
    "RecordingPhase",
    "ControllerConfig",
    "LearningWorkflow",
    "WorkflowConfig",
    "WorkflowPhase",
]
