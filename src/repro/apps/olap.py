"""An in-memory OLAP cube with gesture-friendly navigation operators.

The paper's earlier demo (Data3, ICDE 2012) navigates an OLAP database with
Kinect gestures: "detected patterns can be easily mapped to
application-specific interfaces as navigation operators, e.g., drill-down or
pivot on an OLAP cube".  This module provides that substrate: a small
multidimensional cube over flat fact rows, dimension hierarchies, and a
:class:`CubeNavigator` whose operations (drill-down, roll-up, pivot, slice,
next/previous member) are designed to be bound to gestures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NavigationError


@dataclass(frozen=True)
class Dimension:
    """One cube dimension with an ordered hierarchy of levels.

    Attributes
    ----------
    name:
        Dimension name (``"time"``, ``"geography"``, …).
    levels:
        Hierarchy levels from coarsest to finest, e.g.
        ``("year", "quarter", "month")``.  Each level must be a column of
        the fact rows.
    """

    name: str
    levels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError(f"dimension '{self.name}' needs at least one level")

    def level_index(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise NavigationError(
                f"dimension '{self.name}' has no level '{level}'; "
                f"levels are {list(self.levels)}"
            ) from None


class OlapCube:
    """A fact table plus dimension metadata, aggregated on demand.

    Parameters
    ----------
    facts:
        Flat fact rows; every dimension level and the measure must be a key.
    dimensions:
        The cube's dimensions.
    measure:
        Name of the numeric measure column.

    Examples
    --------
    >>> cube = olap_demo_cube()
    >>> result = cube.aggregate(group_by=["year"])
    >>> sorted(result)[:2]
    [(2011,), (2012,)]
    """

    def __init__(
        self,
        facts: Sequence[Mapping[str, Any]],
        dimensions: Sequence[Dimension],
        measure: str,
    ) -> None:
        if not facts:
            raise ValueError("an OLAP cube needs at least one fact row")
        if not dimensions:
            raise ValueError("an OLAP cube needs at least one dimension")
        self.facts = [dict(row) for row in facts]
        self.dimensions = {dimension.name: dimension for dimension in dimensions}
        self.measure = measure
        for dimension in dimensions:
            for level in dimension.levels:
                if level not in self.facts[0]:
                    raise ValueError(
                        f"fact rows have no column '{level}' required by "
                        f"dimension '{dimension.name}'"
                    )
        if measure not in self.facts[0]:
            raise ValueError(f"fact rows have no measure column '{measure}'")

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[name]
        except KeyError:
            raise NavigationError(
                f"unknown dimension '{name}'; cube has {sorted(self.dimensions)}"
            ) from None

    def members(self, level: str) -> List[Any]:
        """Distinct values of a hierarchy level, sorted."""
        return sorted({row[level] for row in self.facts})

    def aggregate(
        self,
        group_by: Sequence[str],
        filters: Optional[Mapping[str, Any]] = None,
    ) -> Dict[Tuple[Any, ...], float]:
        """Sum the measure grouped by the given levels under the filters."""
        filters = filters or {}
        result: Dict[Tuple[Any, ...], float] = {}
        for row in self.facts:
            if any(row.get(column) != value for column, value in filters.items()):
                continue
            key = tuple(row[level] for level in group_by)
            result[key] = result.get(key, 0.0) + float(row[self.measure])
        return result


@dataclass
class CubeViewState:
    """The navigator's current viewpoint on the cube."""

    row_dimension: str
    column_dimension: str
    row_level_index: int = 0
    column_level_index: int = 0
    slice_filters: Dict[str, Any] = field(default_factory=dict)


class CubeNavigator:
    """Stateful cube navigation designed to be driven by gestures.

    Every public operation corresponds to one gesture binding in the demo:
    ``drill_down`` / ``roll_up`` change the granularity of the row
    dimension, ``pivot`` swaps row and column dimensions, ``slice_member`` /
    ``next_member`` / ``previous_member`` restrict to a member of the
    current level, and ``reset`` returns to the initial view.
    """

    def __init__(
        self,
        cube: OlapCube,
        row_dimension: Optional[str] = None,
        column_dimension: Optional[str] = None,
    ) -> None:
        names = sorted(cube.dimensions)
        if len(names) < 2:
            raise NavigationError("cube navigation needs at least two dimensions")
        self.cube = cube
        self.state = CubeViewState(
            row_dimension=row_dimension or names[0],
            column_dimension=column_dimension or names[1],
        )
        if self.state.row_dimension == self.state.column_dimension:
            raise NavigationError("row and column dimensions must differ")
        self.history: List[str] = []

    # -- introspection ------------------------------------------------------------------

    @property
    def row_level(self) -> str:
        dimension = self.cube.dimension(self.state.row_dimension)
        return dimension.levels[self.state.row_level_index]

    @property
    def column_level(self) -> str:
        dimension = self.cube.dimension(self.state.column_dimension)
        return dimension.levels[self.state.column_level_index]

    def describe(self) -> str:
        filters = ", ".join(f"{k}={v}" for k, v in self.state.slice_filters.items())
        return (
            f"rows={self.state.row_dimension}/{self.row_level}, "
            f"columns={self.state.column_dimension}/{self.column_level}"
            + (f", slice[{filters}]" if filters else "")
        )

    def view(self) -> Dict[Tuple[Any, ...], float]:
        """The currently visible aggregate (rows × columns)."""
        return self.cube.aggregate(
            group_by=[self.row_level, self.column_level],
            filters=self.state.slice_filters,
        )

    # -- navigation operators -------------------------------------------------------------

    def drill_down(self) -> str:
        """Move the row dimension one hierarchy level finer."""
        dimension = self.cube.dimension(self.state.row_dimension)
        if self.state.row_level_index + 1 >= len(dimension.levels):
            raise NavigationError(
                f"already at the finest level of '{dimension.name}'"
            )
        self.state.row_level_index += 1
        return self._record(f"drill_down -> {self.row_level}")

    def roll_up(self) -> str:
        """Move the row dimension one hierarchy level coarser."""
        if self.state.row_level_index == 0:
            raise NavigationError(
                f"already at the coarsest level of '{self.state.row_dimension}'"
            )
        self.state.row_level_index -= 1
        return self._record(f"roll_up -> {self.row_level}")

    def pivot(self) -> str:
        """Swap row and column dimensions (and their levels)."""
        state = self.state
        state.row_dimension, state.column_dimension = (
            state.column_dimension,
            state.row_dimension,
        )
        state.row_level_index, state.column_level_index = (
            state.column_level_index,
            state.row_level_index,
        )
        return self._record("pivot")

    def slice_member(self, member: Any) -> str:
        """Restrict the view to one member of the current row level."""
        members = self.cube.members(self.row_level)
        if member not in members:
            raise NavigationError(
                f"'{member}' is not a member of level '{self.row_level}'"
            )
        self.state.slice_filters[self.row_level] = member
        return self._record(f"slice {self.row_level}={member}")

    def next_member(self) -> str:
        """Slice to the next member of the current row level (wraps around)."""
        return self._step_member(+1)

    def previous_member(self) -> str:
        """Slice to the previous member of the current row level."""
        return self._step_member(-1)

    def _step_member(self, direction: int) -> str:
        members = self.cube.members(self.row_level)
        current = self.state.slice_filters.get(self.row_level)
        if current is None or current not in members:
            index = 0 if direction > 0 else len(members) - 1
        else:
            index = (members.index(current) + direction) % len(members)
        self.state.slice_filters[self.row_level] = members[index]
        return self._record(f"slice {self.row_level}={members[index]}")

    def clear_slice(self) -> str:
        """Remove all slice filters."""
        self.state.slice_filters.clear()
        return self._record("clear_slice")

    def reset(self) -> str:
        """Return to the initial, coarsest view."""
        self.state.row_level_index = 0
        self.state.column_level_index = 0
        self.state.slice_filters.clear()
        return self._record("reset")

    def _record(self, operation: str) -> str:
        self.history.append(operation)
        return operation


def olap_demo_cube() -> OlapCube:
    """The small sales cube used by examples, tests and benchmarks."""
    regions = {
        "north": ["berlin", "hamburg"],
        "south": ["munich", "stuttgart"],
    }
    products = {
        "electronics": ["camera", "sensor"],
        "furniture": ["desk", "chair"],
    }
    facts: List[Dict[str, Any]] = []
    value = 10.0
    for year in (2011, 2012, 2013):
        for quarter in (1, 2, 3, 4):
            for region, cities in regions.items():
                for city in cities:
                    for category, items in products.items():
                        for product in items:
                            facts.append(
                                {
                                    "year": year,
                                    "quarter": quarter,
                                    "region": region,
                                    "city": city,
                                    "category": category,
                                    "product": product,
                                    "revenue": value,
                                }
                            )
                            value = (value * 1.07) % 997 + 5
    dimensions = [
        Dimension("time", ("year", "quarter")),
        Dimension("geography", ("region", "city")),
        Dimension("product", ("category", "product")),
    ]
    return OlapCube(facts=facts, dimensions=dimensions, measure="revenue")
