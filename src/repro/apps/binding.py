"""Binding detected gestures to application actions.

The selling point of the paper's declarative approach is that "detected
patterns can be easily mapped to application-specific interfaces" and that
these mappings can be exchanged at runtime — like keyboard shortcuts.
:class:`GestureBindings` implements that layer: it subscribes to a
:class:`~repro.detection.detector.GestureDetector`, maps gesture names onto
callables (typically the navigation operators of the OLAP or graph
navigator), keeps an auditable :class:`ActionLog`, and lets bindings be
re-assigned while the system is running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.detection.detector import GestureDetector
from repro.detection.events import GestureEvent
from repro.errors import BindingError, NavigationError

Action = Callable[[], Any]


@dataclass
class ActionLogEntry:
    """One executed (or failed) gesture-triggered action."""

    gesture: str
    action: str
    timestamp: float
    result: Optional[str] = None
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


@dataclass
class ActionLog:
    """The record of everything gestures made the application do."""

    entries: List[ActionLogEntry] = field(default_factory=list)

    def append(self, entry: ActionLogEntry) -> None:
        self.entries.append(entry)

    def successes(self) -> List[ActionLogEntry]:
        return [entry for entry in self.entries if entry.succeeded]

    def failures(self) -> List[ActionLogEntry]:
        return [entry for entry in self.entries if not entry.succeeded]

    def __len__(self) -> int:
        return len(self.entries)


class GestureBindings:
    """Runtime-exchangeable mapping of gesture names to application actions."""

    def __init__(self, detector: GestureDetector) -> None:
        self.detector = detector
        self.log = ActionLog()
        self._bindings: Dict[str, Action] = {}
        self._action_names: Dict[str, str] = {}
        detector.on_any_gesture(self._on_event)

    # -- binding management ------------------------------------------------------------

    def bind(self, gesture: str, action: Action, name: Optional[str] = None) -> None:
        """Bind ``gesture`` to ``action`` (replacing any previous binding).

        Parameters
        ----------
        gesture:
            Gesture name as produced by the detector.
        action:
            Zero-argument callable; its return value (if any) is stringified
            into the action log.
        name:
            Human-readable action name for the log; defaults to the
            callable's ``__name__``.
        """
        if not callable(action):
            raise BindingError("an action must be callable")
        self._bindings[gesture] = action
        self._action_names[gesture] = name or getattr(action, "__name__", "action")

    def unbind(self, gesture: str) -> None:
        if gesture not in self._bindings:
            raise BindingError(f"gesture '{gesture}' is not bound")
        del self._bindings[gesture]
        del self._action_names[gesture]

    def rebind(self, gesture: str, action: Action, name: Optional[str] = None) -> None:
        """Exchange the action bound to a gesture at runtime."""
        self.bind(gesture, action, name)

    def swap(self, first: str, second: str) -> None:
        """Swap the actions of two gestures (a favourite demo trick)."""
        if first not in self._bindings or second not in self._bindings:
            raise BindingError("both gestures must be bound before swapping")
        self._bindings[first], self._bindings[second] = (
            self._bindings[second],
            self._bindings[first],
        )
        self._action_names[first], self._action_names[second] = (
            self._action_names[second],
            self._action_names[first],
        )

    def bound_gestures(self) -> List[str]:
        return sorted(self._bindings)

    def action_name(self, gesture: str) -> str:
        try:
            return self._action_names[gesture]
        except KeyError:
            raise BindingError(f"gesture '{gesture}' is not bound") from None

    # -- event handling -----------------------------------------------------------------

    def _on_event(self, event: GestureEvent) -> None:
        action = self._bindings.get(event.gesture)
        if action is None:
            return
        entry = ActionLogEntry(
            gesture=event.gesture,
            action=self._action_names[event.gesture],
            timestamp=event.timestamp,
        )
        try:
            result = action()
            entry.result = None if result is None else str(result)
        except NavigationError as error:
            # Navigation errors (e.g. "already at the coarsest level") are
            # expected user-facing outcomes, not crashes.
            entry.error = str(error)
        self.log.append(entry)

    def trigger(self, gesture: str, timestamp: float = 0.0) -> ActionLogEntry:
        """Manually trigger a binding (useful in tests and dry runs)."""
        if gesture not in self._bindings:
            raise BindingError(f"gesture '{gesture}' is not bound")
        self._on_event(
            GestureEvent(gesture=gesture, timestamp=timestamp, duration=0.0)
        )
        return self.log.entries[-1]
