"""A property graph with gesture-friendly navigation.

The paper's companion demo [1] lets users play the "Kevin Bacon game":
navigating a collaboration graph with gestures — select a neighbour, follow
an edge, step back, jump to the shortest path toward a target.  This module
provides the substrate: a small in-memory property graph and a
:class:`GraphNavigator` whose operations map one-to-one onto gestures.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import NavigationError


class PropertyGraph:
    """An undirected property graph (nodes and edges carry attribute dicts)."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Dict[str, Any]] = {}
        self._edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self._adjacency: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------------------

    def add_node(self, node_id: str, **properties: Any) -> None:
        if not node_id:
            raise ValueError("node id must be non-empty")
        self._nodes.setdefault(node_id, {}).update(properties)
        self._adjacency.setdefault(node_id, set())

    def add_edge(self, first: str, second: str, **properties: Any) -> None:
        if first == second:
            raise ValueError("self-loops are not supported")
        for node in (first, second):
            if node not in self._nodes:
                self.add_node(node)
        key = self._edge_key(first, second)
        self._edges.setdefault(key, {}).update(properties)
        self._adjacency[first].add(second)
        self._adjacency[second].add(first)

    @staticmethod
    def _edge_key(first: str, second: str) -> Tuple[str, str]:
        return (first, second) if first <= second else (second, first)

    # -- queries -------------------------------------------------------------------------

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> Dict[str, Any]:
        try:
            return dict(self._nodes[node_id])
        except KeyError:
            raise NavigationError(f"unknown node '{node_id}'") from None

    def edge(self, first: str, second: str) -> Dict[str, Any]:
        key = self._edge_key(first, second)
        try:
            return dict(self._edges[key])
        except KeyError:
            raise NavigationError(f"no edge between '{first}' and '{second}'") from None

    def neighbours(self, node_id: str) -> List[str]:
        if node_id not in self._adjacency:
            raise NavigationError(f"unknown node '{node_id}'")
        return sorted(self._adjacency[node_id])

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def shortest_path(self, source: str, target: str) -> List[str]:
        """Unweighted shortest path (BFS); raises when none exists."""
        if source not in self._nodes or target not in self._nodes:
            raise NavigationError("both endpoints must exist in the graph")
        if source == target:
            return [source]
        previous: Dict[str, str] = {}
        visited = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in sorted(self._adjacency[current]):
                if neighbour in visited:
                    continue
                previous[neighbour] = current
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(previous[path[-1]])
                    return list(reversed(path))
                visited.add(neighbour)
                queue.append(neighbour)
        raise NavigationError(f"no path between '{source}' and '{target}'")


class GraphNavigator:
    """Stateful graph exploration designed to be driven by gestures.

    The navigator keeps a *current node*, a highlighted neighbour index and
    a navigation history, so the gesture set of the Kevin-Bacon demo maps
    directly: swipe left/right cycles the highlighted neighbour, push
    follows the edge, a back gesture returns, and a "find path" gesture
    highlights the shortest path to a chosen target.
    """

    def __init__(self, graph: PropertyGraph, start: str) -> None:
        if not graph.has_node(start):
            raise NavigationError(f"start node '{start}' does not exist")
        self.graph = graph
        self.current = start
        self.highlight_index = 0
        self.history: List[str] = []
        self.operations: List[str] = []
        self.target: Optional[str] = None

    # -- introspection ---------------------------------------------------------------------

    def neighbours(self) -> List[str]:
        return self.graph.neighbours(self.current)

    @property
    def highlighted(self) -> Optional[str]:
        neighbours = self.neighbours()
        if not neighbours:
            return None
        return neighbours[self.highlight_index % len(neighbours)]

    def describe(self) -> str:
        return (
            f"at '{self.current}', highlighting '{self.highlighted}' "
            f"({len(self.neighbours())} neighbours)"
        )

    # -- gesture-bound operations --------------------------------------------------------------

    def highlight_next(self) -> str:
        """Cycle the highlighted neighbour forward (e.g. swipe right)."""
        if not self.neighbours():
            raise NavigationError(f"node '{self.current}' has no neighbours")
        self.highlight_index = (self.highlight_index + 1) % len(self.neighbours())
        return self._record(f"highlight {self.highlighted}")

    def highlight_previous(self) -> str:
        """Cycle the highlighted neighbour backward (e.g. swipe left)."""
        if not self.neighbours():
            raise NavigationError(f"node '{self.current}' has no neighbours")
        self.highlight_index = (self.highlight_index - 1) % len(self.neighbours())
        return self._record(f"highlight {self.highlighted}")

    def follow(self) -> str:
        """Move to the highlighted neighbour (e.g. push gesture)."""
        destination = self.highlighted
        if destination is None:
            raise NavigationError(f"node '{self.current}' has no neighbours")
        self.history.append(self.current)
        self.current = destination
        self.highlight_index = 0
        return self._record(f"follow -> {destination}")

    def back(self) -> str:
        """Return to the previously visited node."""
        if not self.history:
            raise NavigationError("navigation history is empty")
        self.current = self.history.pop()
        self.highlight_index = 0
        return self._record(f"back -> {self.current}")

    def set_target(self, target: str) -> str:
        """Choose the node the user is trying to reach (Kevin Bacon)."""
        if not self.graph.has_node(target):
            raise NavigationError(f"unknown target '{target}'")
        self.target = target
        return self._record(f"target {target}")

    def path_to_target(self) -> List[str]:
        """Shortest path from the current node to the chosen target."""
        if self.target is None:
            raise NavigationError("no target set")
        return self.graph.shortest_path(self.current, self.target)

    def follow_path(self) -> str:
        """Take one step along the shortest path toward the target."""
        path = self.path_to_target()
        if len(path) < 2:
            return self._record("already at target")
        self.history.append(self.current)
        self.current = path[1]
        self.highlight_index = 0
        return self._record(f"follow_path -> {self.current}")

    def _record(self, operation: str) -> str:
        self.operations.append(operation)
        return operation


def collaboration_demo_graph() -> PropertyGraph:
    """The small actor-collaboration graph used by examples and tests.

    A miniature "Kevin Bacon game" instance: actors are nodes, edges mean
    "appeared in a film together" and carry the film title.
    """
    graph = PropertyGraph()
    collaborations = [
        ("kevin_bacon", "tom_hanks", "Apollo 13"),
        ("tom_hanks", "meg_ryan", "Joe Versus the Volcano"),
        ("tom_hanks", "robin_wright", "Forrest Gump"),
        ("robin_wright", "sean_penn", "She's So Lovely"),
        ("kevin_bacon", "john_lithgow", "Footloose"),
        ("john_lithgow", "sylvester_stallone", "Cliffhanger"),
        ("meg_ryan", "billy_crystal", "When Harry Met Sally"),
        ("billy_crystal", "robert_de_niro", "Analyze This"),
        ("robert_de_niro", "al_pacino", "Heat"),
        ("al_pacino", "keanu_reeves", "The Devil's Advocate"),
        ("keanu_reeves", "sandra_bullock", "Speed"),
        ("sandra_bullock", "tom_hanks", "Extremely Loud and Incredibly Close"),
        ("sean_penn", "al_pacino", "Carlito's Way"),
    ]
    for first, second, film in collaborations:
        graph.add_node(first, kind="actor")
        graph.add_node(second, kind="actor")
        graph.add_edge(first, second, film=film)
    return graph
