"""Demo applications driven by gestures.

The paper's demonstration (Sec. 4) controls two database UIs with gestures:
navigation through an OLAP cube (the Data3 demo, [3]) and traversal of a
graph database (the "Kevin Bacon game", [1]).  This package provides both
as in-memory substrates plus the binding layer that maps detected gestures
onto their navigation operations:

* :mod:`repro.apps.olap` — a small multidimensional cube with drill-down,
  roll-up, pivot and slice operators,
* :mod:`repro.apps.graph` — a property graph with neighbourhood navigation,
* :mod:`repro.apps.binding` — :class:`GestureBindings`, which connects a
  :class:`~repro.detection.detector.GestureDetector` to application actions
  and lets them be exchanged at runtime (the flexibility the demo shows
  off).
"""

from repro.apps.olap import CubeNavigator, Dimension, OlapCube, olap_demo_cube
from repro.apps.graph import GraphNavigator, PropertyGraph, collaboration_demo_graph
from repro.apps.binding import ActionLog, GestureBindings

__all__ = [
    "OlapCube",
    "Dimension",
    "CubeNavigator",
    "olap_demo_cube",
    "PropertyGraph",
    "GraphNavigator",
    "collaboration_demo_graph",
    "GestureBindings",
    "ActionLog",
]
