"""Sharded concurrent runtime: scale the detection path across worker shards.

The single-threaded :class:`~repro.cep.engine.CEPEngine` stays the unit of
matching semantics; this package is the execution layer that runs N of them
side by side:

``repro.runtime.router``
    stable partition-hash routing — all tuples of one player reach the
    same shard, in order.
``repro.runtime.queues``
    bounded per-shard queues with explicit backpressure
    (``block`` / ``drop_oldest`` / ``error``).
``repro.runtime.shard``
    worker shards: thread- and process-backed executors behind one
    protocol, with graceful failure reporting.
``repro.runtime.results``
    merging per-shard detections into one timestamp-ordered view.
``repro.runtime.metrics``
    per-shard throughput / queue-depth / drop / detection counters.
``repro.runtime.sharded``
    :class:`ShardedRuntime`, the engine-shaped façade over all of it.

Most applications never import this package directly:
``GestureSession(SessionConfig(shards=4))`` runs the whole session on a
sharded runtime transparently (see :mod:`repro.api.session`).
"""

from repro.errors import (
    BackpressureError,
    RuntimeStateError,
    ShardedRuntimeError,
    ShardFailedError,
)
from repro.runtime.metrics import MetricsRegistry, ShardMetrics
from repro.runtime.queues import BackpressurePolicy, ShardQueue
from repro.runtime.results import DetectionLog, merge_detections
from repro.runtime.router import HashPartitionRouter, stable_partition_hash
from repro.runtime.shard import (
    EngineShard,
    ProcessShard,
    RemoteShardError,
    ShardEngineSpec,
    ShardFailure,
)
from repro.runtime.sharded import ShardedQuery, ShardedRuntime

__all__ = [
    "BackpressureError",
    "BackpressurePolicy",
    "DetectionLog",
    "EngineShard",
    "HashPartitionRouter",
    "MetricsRegistry",
    "ProcessShard",
    "RemoteShardError",
    "RuntimeStateError",
    "ShardEngineSpec",
    "ShardFailure",
    "ShardFailedError",
    "ShardMetrics",
    "ShardQueue",
    "ShardedQuery",
    "ShardedRuntime",
    "ShardedRuntimeError",
    "merge_detections",
    "stable_partition_hash",
]
