"""Bounded per-shard queues with explicit backpressure.

Each worker shard is fed from one :class:`ShardQueue`.  The queue is
bounded **in tuples** (a chunk of 64 frames occupies 64 slots, a control
message occupies none), and what happens when a producer outruns a worker
is an explicit policy instead of an accident:

``"block"``
    The producer waits until the worker has made room — lossless, and the
    natural choice when replaying recordings at full speed.
``"drop_oldest"``
    The oldest queued *tuples* are discarded to make room and counted in
    the shard's metrics — the live-sensor choice, where a stale frame is
    worthless and the freshest data must win.  Control messages are never
    dropped.
``"drop_newest"``
    The *offered* tuples are discarded (and counted) when they do not
    fit — the queued backlog is left untouched.  The admission-control
    choice: work already accepted keeps its service guarantee, late
    arrivals pay the cost.  Control messages are never dropped.
``"error"``
    :class:`~repro.errors.BackpressureError` is raised to the producer —
    for callers that implement their own flow control.

The queue also tracks *unfinished work* (items taken by the worker but not
yet processed), which is what lets the runtime implement ``drain()`` as a
real barrier rather than "queue looks empty".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, List, Optional, Tuple

from repro.errors import BackpressureError, RuntimeStateError
from repro.runtime.metrics import ShardMetrics

__all__ = ["BackpressurePolicy", "ShardQueue"]


class BackpressurePolicy:
    """The backpressure policies a :class:`ShardQueue` understands."""

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    DROP_NEWEST = "drop_newest"
    ERROR = "error"

    ALL = (BLOCK, DROP_OLDEST, DROP_NEWEST, ERROR)

    @classmethod
    def validate(cls, policy: str) -> str:
        if policy not in cls.ALL:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; expected one of {cls.ALL}"
            )
        return policy


class ShardQueue:
    """A bounded FIFO of ``(item, weight)`` entries shared by one producer
    side and one worker thread.

    ``weight`` is the number of tuples an item carries; control messages
    enqueue with weight 0 and are exempt from capacity accounting (they
    must reach the worker even when the data path is saturated — dropping
    a ``deploy`` or ``drain`` marker would wedge the runtime).
    """

    def __init__(
        self,
        capacity: int,
        policy: str = BackpressurePolicy.BLOCK,
        metrics: Optional[ShardMetrics] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self.policy = BackpressurePolicy.validate(policy)
        self.metrics = metrics
        self._items: deque = deque()
        self._weight = 0
        self._unfinished = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)

    # -- producer side ----------------------------------------------------------------

    def put(self, item: Any, weight: int = 0) -> int:
        """Enqueue ``item``; returns the number of tuples dropped to fit it.

        A chunk heavier than the whole capacity is admitted once the queue
        is empty (otherwise a ``block`` producer would deadlock against
        itself, and a ``drop_newest`` producer could never make progress);
        chunk your feeds to at most the capacity to keep the bound tight.
        """
        with self._lock:
            if self._closed:
                raise RuntimeStateError("the shard queue is closed")
            dropped = 0
            if weight > 0 and self._weight + weight > self.capacity:
                if self.policy == BackpressurePolicy.ERROR:
                    raise BackpressureError(
                        f"shard queue is full ({self._weight}/{self.capacity} "
                        f"tuples queued, {weight} more offered)"
                    )
                if self.policy == BackpressurePolicy.DROP_NEWEST:
                    if self._weight > 0:
                        # Reject the offered chunk whole; the backlog keeps
                        # its service guarantee.
                        if self.metrics is not None:
                            self.metrics.add_dropped(weight)
                        return weight
                    # Oversized chunk against an empty queue: admit it (the
                    # producer could otherwise never make progress).
                elif self.policy == BackpressurePolicy.DROP_OLDEST:
                    dropped = self._evict_oldest_locked(
                        self._weight + weight - self.capacity
                    )
                else:  # block
                    while (
                        self._weight > 0
                        and self._weight + weight > self.capacity
                        and not self._closed
                    ):
                        self._not_full.wait()
                    if self._closed:
                        raise RuntimeStateError("the shard queue is closed")
            self._items.append((item, weight))
            self._weight += weight
            self._unfinished += 1
            if self.metrics is not None:
                if dropped:
                    self.metrics.add_dropped(dropped)
                self.metrics.record_queue_depth(self._weight)
            self._not_empty.notify()
            return dropped

    def _evict_oldest_locked(self, need: int) -> int:
        """Drop the oldest tuple-bearing items until ``need`` slots are free.

        Control items (weight 0) are preserved in place; the relative order
        of everything kept is unchanged.
        """
        dropped = 0
        kept: List[Tuple[Any, int]] = []
        while self._items and dropped < need:
            item, weight = self._items.popleft()
            if weight == 0:
                kept.append((item, weight))
                continue
            dropped += weight
            self._weight -= weight
            self._unfinished -= 1
        for entry in reversed(kept):
            self._items.appendleft(entry)
        if dropped and self._unfinished == 0 and not self._items:
            self._all_done.notify_all()
        return dropped

    # -- worker side ------------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Tuple[Any, int]]:
        """Dequeue the next ``(item, weight)``; ``None`` on timeout/closed-empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item, weight = self._items.popleft()
            self._weight -= weight
            self._not_full.notify_all()
            return item, weight

    def task_done(self) -> None:
        """Mark one dequeued item as fully processed (drain barrier)."""
        with self._lock:
            self._unfinished -= 1
            if self._unfinished < 0:
                raise RuntimeStateError("task_done() called more often than put()")
            if self._unfinished == 0:
                self._all_done.notify_all()

    # -- barriers and lifecycle -------------------------------------------------------

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until every enqueued item has been processed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._unfinished > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                if not self._all_done.wait(timeout=remaining):
                    return False
            return True

    def close(self) -> None:
        """Refuse further puts and wake every waiter.  Idempotent.

        Items already queued stay readable via :meth:`get` so a worker can
        finish a graceful drain after close.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._all_done.notify_all()

    def abandon(self) -> None:
        """Discard all queued items and release drain waiters (failure path)."""
        with self._lock:
            self._items.clear()
            self._weight = 0
            self._unfinished = 0
            self._not_full.notify_all()
            self._all_done.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        """Queued tuple count (not items)."""
        with self._lock:
            return self._weight

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ShardQueue(depth={self._weight}/{self.capacity}, "
                f"items={len(self._items)}, policy={self.policy!r}, "
                f"closed={self._closed})"
            )
