"""The sharded concurrent runtime: N engines behind one engine-shaped API.

:class:`ShardedRuntime` executes the existing single-threaded
:class:`~repro.cep.engine.CEPEngine` across N worker shards without
touching matcher semantics.  The contract that makes this correct is PR 2's
partitioning: all matcher and transformer state is keyed strictly per
player, so as long as every tuple of one player reaches the same shard in
order (:class:`~repro.runtime.router.HashPartitionRouter`), each shard is
an exact replica of "an inline engine that only ever saw these players".
Per-partition detection sequences are therefore byte-identical to the
inline path — the B4 benchmark asserts it on the interpreted, compiled and
batched paths.

The runtime deliberately *duck-types the engine surface* used by
:class:`~repro.detection.detector.GestureDetector` and
:class:`~repro.api.session.GestureSession` (``register_query`` /
``push_many`` / ``detections`` / ``reset_matchers`` / …), so the whole
detection stack runs sharded unchanged: deployment fans out to every shard
through the same text/compiled-predicate-cache path, feeds are routed by
partition hash, and reads drain the queues first so callers observe
everything they fed (the inline semantics).

Choose the executor to match the hardware:

* ``executor="thread"`` (default) — cheap, shared-memory, introspectable;
  on GIL-bound CPython the shards time-slice one core.
* ``executor="process"`` — real parallelism on multi-core machines at the
  price of pickling tuples and detections across a pipe.

Example
-------
>>> from repro.runtime import ShardedRuntime, ShardEngineSpec
>>> with ShardedRuntime(shard_count=2) as runtime:
...     _ = runtime.register_query(
...         'SELECT "hands_up" MATCHING kinect_t(rhand_y > 400);'
...     )
...     runtime.push_many(
...         "kinect_t",
...         [{"ts": 0.0, "player": p, "rhand_y": 500.0} for p in (1, 2)],
...     )
...     sorted(d.partition for d in runtime.detections())
2
[1, 2]
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Union

from repro.cep.engine import CEPEngine, IngestTap, coerce_query
from repro.cep.matcher import Detection, MatcherConfig
from repro.cep.query import Query
from repro.cep.sinks import FanOutSink, Sink
from repro.errors import (
    QueryRegistrationError,
    RuntimeStateError,
    SerializationError,
    ShardFailedError,
    SnapshotError,
    UnknownQueryError,
)
from repro.observability.telemetry import Telemetry
from repro.observability.tracing import TraceContext
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.queues import BackpressurePolicy
from repro.runtime.results import DetectionLog
from repro.runtime.router import HashPartitionRouter
from repro.runtime.shard import (
    EngineShard,
    ProcessShard,
    ShardEngineSpec,
    ShardFailure,
    current_detection_latency,
)
from repro.streams.clock import Clock, SimulatedClock

__all__ = ["ShardedRuntime", "ShardedQuery"]

#: Sentinel distinguishing "parameter not given" from an explicit ``None``.
_UNSET: Any = object()

#: The executors a runtime can run its shards on.
_EXECUTORS = ("thread", "process")


class _ShardedMatcherView:
    """Aggregate, best-effort view over the per-shard matchers.

    Thread shards expose their live matcher state (reads are lock-free and
    may be slightly stale); process shards expose nothing, so their
    contribution reads as zero.  Only used for Fig. 5 style progress
    feedback, never for correctness.
    """

    def __init__(self, runtime: "ShardedRuntime", name: str) -> None:
        self._runtime = runtime
        self._name = name

    def _shard_matchers(self):
        for shard in self._runtime._shards:
            deployed = shard.deployed.get(self._name)
            if deployed is not None:
                yield deployed.matcher

    def progress(self) -> float:
        best = 0.0
        for matcher in self._shard_matchers():
            try:
                best = max(best, matcher.progress())
            except RuntimeError:  # racy read of a live run table
                continue
        return best

    @property
    def active_runs(self) -> int:
        total = 0
        for matcher in self._shard_matchers():
            try:
                total += matcher.active_runs
            except RuntimeError:
                continue
        return total


class ShardedQuery:
    """A query deployed on every shard of a :class:`ShardedRuntime`.

    The engine-side analogue is :class:`~repro.cep.engine.DeployedQuery`;
    this handle exposes the same reading surface (``name`` / ``sink`` /
    ``detections`` / ``clear_detections`` / ``progress``), backed by the
    runtime's merged detection log instead of a single collector.
    """

    def __init__(self, runtime: "ShardedRuntime", query: Query, name: str) -> None:
        self._runtime = runtime
        self.query = query
        self.name = name
        #: Parent-side sinks: every detection of every shard is emitted
        #: here, in global arrival order, from the runtime's dispatch lock.
        self.sink = FanOutSink([])
        self.enabled = True
        self.matcher = _ShardedMatcherView(runtime, name)

    def detections(self, partition: Any = _UNSET) -> List[Detection]:
        """Merged, timestamp-ordered detections of this query so far."""
        self._runtime._drain_for_read()
        if partition is _UNSET:
            return self._runtime._log.snapshot(query_name=self.name)
        return self._runtime._log.snapshot(query_name=self.name, partition=partition)

    def clear_detections(self) -> None:
        self._runtime._drain_for_read()
        if self._runtime.started and not self._runtime.stopped:
            self._runtime._broadcast("clear_query_detections", self.name)
        self._runtime._log.clear_query(self.name)

    def progress(self) -> float:
        """Partial-match progress (best shard; zero on process shards)."""
        return self.matcher.progress()

    def __repr__(self) -> str:
        return (
            f"ShardedQuery(name={self.name!r}, "
            f"shards={self._runtime.shard_count}, enabled={self.enabled})"
        )


class ShardedRuntime:
    """Owns N engine shards, a partition-hash router and a metrics registry.

    Parameters
    ----------
    shard_count:
        Number of worker shards (engines).  ``1`` is legal and useful for
        A/B tests, but the inline engine is cheaper when no concurrency is
        wanted — :class:`~repro.api.session.SessionConfig` keeps ``shards=1``
        on the inline path for exactly that reason.
    spec:
        Per-shard engine recipe (matcher/transform configuration, stream
        names).  Every shard builds an identical engine from it.
    executor:
        ``"thread"`` (default) or ``"process"`` — see the module docstring.
    backpressure:
        Queue policy when a producer outruns a shard: ``"block"`` (default),
        ``"drop_oldest"`` (thread executor only), ``"drop_newest"`` or
        ``"error"``.
    queue_capacity:
        Per-shard queue bound, in tuples.
    partition_field:
        Tuple field the router hashes (default: the spec's matcher
        partition field).  Deployed queries must partition on the same
        field; ``register_query`` enforces it.
    engine_factory:
        Optional ``shard_id -> CEPEngine`` override for custom stacks
        (thread executor only — a factory cannot cross a process boundary).
    metrics:
        Optional shared :class:`MetricsRegistry`; a private one is created
        by default.
    clock:
        Time source reported to callers (``feedback()`` timestamps);
        defaults to a fresh simulated clock.
    """

    def __init__(
        self,
        shard_count: int,
        spec: Optional[ShardEngineSpec] = None,
        executor: str = "thread",
        backpressure: str = BackpressurePolicy.BLOCK,
        queue_capacity: int = 2048,
        partition_field: Optional[str] = None,
        engine_factory: Optional[Callable[[int], CEPEngine]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected one of {_EXECUTORS}")
        if executor == "process" and engine_factory is not None:
            raise ValueError(
                "engine_factory requires executor='thread'; a factory cannot "
                "cross a process boundary"
            )
        BackpressurePolicy.validate(backpressure)
        self.spec = spec or ShardEngineSpec()
        field = partition_field or self.spec.matcher.partition_field
        if not field:
            raise ValueError(
                "a sharded runtime needs a partition field to route on; "
                "configure MatcherConfig.partition_field (or partition_field=)"
            )
        self.shard_count = shard_count
        self.executor = executor
        self.backpressure = backpressure
        self.queue_capacity = queue_capacity
        self.router = HashPartitionRouter(shard_count, partition_field=field)
        self.metrics = metrics or MetricsRegistry()
        self.clock = clock or SimulatedClock()
        self.tuples_processed = 0
        self._engine_factory = engine_factory
        self._shards: List[Union[EngineShard, ProcessShard]] = []
        self._queries: Dict[str, ShardedQuery] = {}
        self._log = DetectionLog()
        self._dispatch_lock = threading.Lock()
        self._listeners: List[Callable[[Detection], None]] = []
        self._ingest_taps: List[IngestTap] = []
        #: Exceptions raised by ``add_listener`` callbacks, as
        #: ``(detection, error)`` pairs (bounded; oldest dropped).
        self.listener_errors: Deque[tuple] = deque(maxlen=256)
        self._started = False
        self._stopped = False
        self._worker_idents: set = set()
        self._failure_handled = False
        #: The parent-side telemetry bundle: thread shards write into it
        #: directly, process shards are collected into it.  Built from the
        #: spec unless the caller hands in a shared instance (the session
        #: does, so gateway and runtime spans land in one tracer).
        self.telemetry = telemetry if telemetry is not None else self.spec.build_telemetry()
        self._query_stats_cache: Dict[str, Dict[str, int]] = {}
        if self.telemetry is not None:
            self._e2e_histogram = self.metrics.histogram("ingest_to_detection")
            self.metrics.add_refresh_hook(self._refresh_telemetry)
            # The refresh hook (run by ``collect()`` before any exposition)
            # already re-broadcasts and caches; the provider reads the cache
            # so one scrape costs one broadcast, not two.
            self.metrics.set_query_stats_provider(lambda: self._query_stats_cache)
        else:
            self._e2e_histogram = None

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "ShardedRuntime":
        """Build and start every shard.  Raises on double-start."""
        if self._started:
            raise RuntimeStateError("the runtime is already started")
        if self._stopped:
            raise RuntimeStateError("the runtime has been stopped")
        self._started = True
        for shard_id in range(self.shard_count):
            shard_metrics = self.metrics.shard(shard_id)
            if self.executor == "process":
                shard: Union[EngineShard, ProcessShard] = ProcessShard(
                    shard_id,
                    self.spec,
                    shard_metrics,
                    self._on_detection,
                    queue_capacity=self.queue_capacity,
                    backpressure=self.backpressure,
                    telemetry=self.telemetry,
                )
            else:
                shard = EngineShard(
                    shard_id,
                    self.spec,
                    shard_metrics,
                    self._on_detection,
                    queue_capacity=self.queue_capacity,
                    backpressure=self.backpressure,
                    engine_factory=self._engine_factory,
                    telemetry=self.telemetry,
                )
            self._shards.append(shard)
        for shard in self._shards:
            shard.start()
        for shard in self._shards:
            thread = getattr(shard, "_thread", None)
            if thread is not None:
                self._worker_idents.add(thread.ident)
            listener = getattr(shard, "_listener", None)
            if listener is not None:
                self._worker_idents.add(listener.ident)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop every shard; with ``drain`` all queued work finishes first.

        Idempotent.  A failure recorded during shutdown is kept readable on
        :attr:`failure` but not raised — ``stop()`` is the cleanup path.
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        if drain and not self.failed and self.telemetry is not None:
            # Final collection while the shards still answer controls: the
            # ``telemetry`` / ``query_stats`` controls are FIFO behind any
            # queued tuples, so this observes everything fed so far.
            with contextlib.suppress(Exception):
                self.collect_telemetry(timeout=timeout)
                self.query_stats()
        self._stopped = True
        for shard in self._shards:
            shard.stop(drain=drain and not self.failed, timeout=timeout)
        for shard in self._shards:
            shard.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every shard worker to exit (after :meth:`stop`)."""
        for shard in self._shards:
            shard.join(timeout=timeout)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Barrier: block until every tuple fed so far has been processed."""
        self._raise_if_failed()
        if not self._started or self._stopped:
            return
        try:
            for shard in self._shards:
                shard.drain(timeout=timeout)
        except ShardFailedError:
            self._raise_if_failed()  # graceful shutdown of healthy shards
            raise
        self._raise_if_failed()

    def __enter__(self) -> "ShardedRuntime":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- failure handling --------------------------------------------------------------

    @property
    def failure(self) -> Optional[ShardFailure]:
        """The first shard failure, if any shard died."""
        for shard in self._shards:
            if shard.failure is not None:
                return shard.failure
        return None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def _raise_if_failed(self) -> None:
        failure = self.failure
        if failure is None:
            return
        # Graceful shutdown: stop the healthy shards once, without waiting
        # on their queues, then surface the failing shard's exception.
        if not self._failure_handled:
            self._failure_handled = True
            for shard in self._shards:
                if shard.failure is None:
                    shard.stop(drain=False)
            self._stopped = True
        failure.raise_()

    # -- deployment (engine-compatible surface) ----------------------------------------

    def register_query(
        self,
        query: Union[str, Query, Any],
        name: Optional[str] = None,
        sink: Optional[Sink] = None,
        matcher_config: Optional[MatcherConfig] = None,
        create_missing_streams: bool = True,
        partition_field: Optional[str] = _UNSET,
        analyze: str = "off",
    ) -> ShardedQuery:
        """Deploy a query on **every** shard; returns the fan-out handle.

        Accepts exactly what :meth:`CEPEngine.register_query` accepts
        (query text, a :class:`Query`, or a builder chain).  The query is
        normalised to its canonical text and deployed shard-side through
        the standard parse → compiled-predicate-cache path, so cache keys
        and matcher behaviour are identical to an inline deployment.

        The effective partition field must match the router's: a query
        partitioned on a different field (or unpartitioned) would see only
        a hash-arbitrary subset of its partitions per shard.
        """
        self._raise_if_failed()
        self._ensure_running()
        query = coerce_query(query)
        registration_name = name or query.registration_name
        if registration_name in self._queries:
            raise QueryRegistrationError(
                f"a query named '{registration_name}' is already registered"
            )
        base_config = matcher_config or self.spec.matcher
        effective_field = (
            partition_field if partition_field is not _UNSET else base_config.partition_field
        )
        if effective_field != self.router.partition_field:
            raise QueryRegistrationError(
                f"query '{registration_name}' partitions on "
                f"{effective_field!r} but the runtime routes on "
                f"{self.router.partition_field!r}; a shard would only see a "
                f"hash-arbitrary subset of its partitions. Deploy with a "
                f"matching partition_field, or run this query on an inline "
                f"engine."
            )
        if analyze != "off":
            # Gate coordinator-side, before the deploy broadcast: a rejected
            # query must never reach any shard.
            from repro.analysis import (
                AnalysisContext,
                analyze_query,
                gate_diagnostics,
                validate_analyze_mode,
            )

            validate_analyze_mode(analyze)
            context = AnalysisContext(
                partition_field=effective_field,
                run_ttl_seconds=base_config.run_ttl_seconds,
            )
            gate_diagnostics(
                analyze_query(query, context=context, name=registration_name),
                analyze,
                subject=f"query '{registration_name}'",
            )
        override = None if partition_field is _UNSET else (partition_field,)
        handle = ShardedQuery(self, query, registration_name)
        if sink is not None:
            handle.sink.add(sink)
        payload = (registration_name, query.to_query(), matcher_config, override)
        self._broadcast("deploy", payload)
        self._queries[registration_name] = handle
        return handle

    def unregister_query(self, name: str) -> None:
        """Remove a deployed query from every shard."""
        if name not in self._queries:
            raise UnknownQueryError(
                f"no query named '{name}' is registered; "
                f"deployed queries: {self.query_names()}"
            )
        self._broadcast("undeploy", name)
        del self._queries[name]

    def get_query(self, name: str) -> ShardedQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise UnknownQueryError(
                f"no query named '{name}' is registered; "
                f"deployed queries: {self.query_names()}"
            ) from None

    def query_names(self) -> List[str]:
        return sorted(self._queries)

    @property
    def queries(self) -> Dict[str, ShardedQuery]:
        return dict(self._queries)

    def enable_query(self, name: str, enabled: bool = True) -> None:
        """Pause or resume a query on every shard."""
        handle = self.get_query(name)
        self._broadcast("enable", (name, enabled))
        handle.enabled = enabled

    def register_function(self, name: str, function: Callable[..., Any], arity: Optional[int] = None) -> None:
        """Register a UDF on every shard.

        With the process executor the function must be picklable (a
        module-level function); closures and lambdas only work on the
        thread executor.
        """
        self._ensure_running()
        self._broadcast("register_function", (name, function, arity))

    @property
    def views(self) -> Dict[str, Any]:
        """Always empty: views live inside the shards.

        Shard-local transformer state is managed through
        :meth:`reset_transformers`, never by direct mutation from outside
        the worker.
        """
        return {}

    # -- data path ---------------------------------------------------------------------

    def _originate_trace(self, trace: Optional[TraceContext]) -> Optional[TraceContext]:
        """Continue a caller's trace, or make the head sampling decision."""
        if trace is not None:
            return trace
        telemetry = self.telemetry
        if telemetry is not None and telemetry.tracing_active:
            return telemetry.tracer.sample("ingest")
        return None

    def push(
        self,
        stream_name: str,
        record: Mapping[str, Any],
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Route one tuple to its partition's shard."""
        self._raise_if_failed()
        self._ensure_running()
        for tap in self._ingest_taps:
            tap(stream_name, (record,), None)
        shard = self._shards[self.router.shard_for(record)]
        try:
            shard.enqueue_tuples(stream_name, [record], None, trace=self._originate_trace(trace))
        except ShardFailedError:
            self._raise_if_failed()
            raise
        self.tuples_processed += 1

    def push_many(
        self,
        stream_name: str,
        records: Iterable[Mapping[str, Any]],
        batch_size: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> int:
        """Route many tuples; returns the number accepted for routing.

        Per-shard (and therefore per-partition) order is the input order.
        ``batch_size`` selects the shard engines' batched delivery path,
        exactly like :meth:`CEPEngine.push_many`; ``None`` keeps per-tuple
        fan-out inside each shard.  The call returns once every tuple is
        *enqueued* (subject to backpressure); use :meth:`drain` — or any
        read, which drains implicitly — to wait for processing.

        ``trace`` continues a caller-started trace context (the gateway
        passes its request trace here); without one, a sampled tracer makes
        its head decision per call.  The routing/enqueue work is recorded
        as an ``ingest.route`` span and the chosen context rides each
        shard's queue, so downstream queue/shard/matcher spans share the
        trace id across thread *and* process executors.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1 when given")
        self._raise_if_failed()
        self._ensure_running()
        if self._ingest_taps:
            records = records if isinstance(records, list) else list(records)
            for tap in self._ingest_taps:
                tap(stream_name, records, batch_size)
        trace = self._originate_trace(trace)
        span = None
        if trace is not None and self.telemetry is not None and self.telemetry.tracing_active:
            span = self.telemetry.tracer.span(
                "ingest.route", "ingest", trace, stream=stream_name
            )
        downstream = span.context if span is not None else trace
        buckets = self.router.split(records)
        count = 0
        try:
            for shard, bucket in zip(self._shards, buckets):
                if bucket:
                    shard.enqueue_tuples(stream_name, bucket, batch_size, trace=downstream)
                    count += len(bucket)
        except ShardFailedError:
            self._raise_if_failed()
            raise
        finally:
            if span is not None:
                span.close(tuples=count)
        self.tuples_processed += count
        return count

    def feed(
        self,
        records: Iterable[Mapping[str, Any]],
        batch_size: Optional[int] = None,
        stream: Optional[str] = None,
    ) -> int:
        """Convenience: :meth:`push_many` into the spec's raw sensor stream."""
        return self.push_many(stream or self.spec.raw_stream, records, batch_size)

    # -- ingest taps -------------------------------------------------------------------

    def add_ingest_tap(self, tap: IngestTap) -> None:
        """Observe every externally pushed tuple *before* it is routed.

        Parent-side analogue of :meth:`CEPEngine.add_ingest_tap` — the
        durability subsystem's write-ahead hook.  Taps run on the feeding
        thread, before any shard queue sees the tuples.
        """
        self._ingest_taps.append(tap)

    def remove_ingest_tap(self, tap: IngestTap) -> None:
        """Detach a previously added ingest tap (missing taps are ignored)."""
        self._ingest_taps = [t for t in self._ingest_taps if t is not tap]

    # -- state capture / restore -------------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Snapshot the whole runtime as a JSON-serialisable dictionary.

        Drains every shard first, so the snapshot is a consistent barrier:
        it reflects exactly the tuples fed before this call.  The snapshot
        records the routing topology (shard count, partition field, router
        epoch); :meth:`restore_state` refuses a topology mismatch, because
        per-shard run tables are only valid under the routing that built
        them.
        """
        self._raise_if_failed()
        self._ensure_running()
        self.drain()
        shard_states = self._broadcast("capture_state", None)
        clock_now = self.clock.now() if isinstance(self.clock, SimulatedClock) else None
        return {
            "kind": "sharded-runtime",
            "router": {
                "shard_count": self.router.shard_count,
                "partition_field": self.router.partition_field,
                "epoch": self.router.epoch,
            },
            "tuples_processed": self.tuples_processed,
            "clock": clock_now,
            "queries": [
                {
                    "name": name,
                    "text": self._queries[name].query.to_query(),
                    "enabled": self._queries[name].enabled,
                }
                for name in sorted(self._queries)
            ],
            "detections": [d.to_state() for d in self._log.entries()],
            "shards": {str(shard_id): state for shard_id, state in enumerate(shard_states)},
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`capture_state` snapshot into this runtime.

        Queries missing parent-side are re-deployed from their captured
        text (which broadcasts the standard ``deploy`` to every shard);
        each shard then restores its own engine state in place.  The
        parent's merged detection log is restored from the snapshot.

        Raises
        ------
        repro.errors.SerializationError
            If ``state`` is not a sharded-runtime snapshot.
        repro.errors.SnapshotError
            If the snapshot's routing topology (shard count, partition
            field or router epoch) differs from this runtime's — per-shard
            state cannot be re-routed here; re-sharding a snapshot is a
            separate migration.
        """
        if state.get("kind") != "sharded-runtime":
            raise SerializationError(
                f"cannot restore a ShardedRuntime from a "
                f"{state.get('kind')!r} state blob"
            )
        router_state = state.get("router", {})
        mine = {
            "shard_count": self.router.shard_count,
            "partition_field": self.router.partition_field,
            "epoch": self.router.epoch,
        }
        if dict(router_state) != mine:
            raise SnapshotError(
                f"snapshot routing topology {dict(router_state)!r} does not "
                f"match this runtime's {mine!r}; restore into a runtime with "
                f"the same sharding (re-sharding snapshots is not supported)"
            )
        self._raise_if_failed()
        self._ensure_running()
        for entry in state.get("queries", []):
            if entry["name"] not in self._queries:
                self.register_query(entry["text"], name=entry["name"])
            handle = self._queries[entry["name"]]
            handle.enabled = bool(entry.get("enabled", True))
        for shard_id, shard in enumerate(self._shards):
            shard_state = state.get("shards", {}).get(str(shard_id))
            if shard_state is not None:
                shard.control("restore_state", shard_state)
        self._log.restore(
            [Detection.from_state(d) for d in state.get("detections", [])]
        )
        clock_now = state.get("clock")
        if (
            clock_now is not None
            and isinstance(self.clock, SimulatedClock)
            and clock_now > self.clock.now()
        ):
            self.clock.set(clock_now)
        self.tuples_processed = int(state.get("tuples_processed", 0))

    # -- detections --------------------------------------------------------------------

    def _on_detection(self, shard_id: int, detection: Detection) -> None:
        """Serialisation point: every shard's detections pass through here.

        Runs on shard worker/listener threads, so it must never raise: a
        raising sink is isolated by :class:`FanOutSink`, and a raising
        listener is recorded in :attr:`listener_errors` — either would
        otherwise kill the emitting shard (or wedge a process shard's
        credit stream).

        The global dispatch lock covers only the bookkeeping (metrics,
        log, handle lookup); sinks and listeners run *outside* it.  They
        are internally thread-safe, and holding the lock across user code
        would let one slow (or blocking) handler stall every other
        shard's detections — in the worst case a handler feeding a full
        ``block``-policy queue would deadlock the whole runtime.
        """
        latency = current_detection_latency() if self._e2e_histogram is not None else None
        with self._dispatch_lock:
            self.metrics.shard(shard_id).add_detections()
            if latency is not None:
                self._e2e_histogram.record(latency)
            self._log.record(detection)
            handle = self._queries.get(detection.query_name)
            listeners = list(self._listeners)
        if handle is not None and handle.enabled:
            try:
                handle.sink.emit(detection)
            except Exception as error:  # noqa: BLE001 — a sink must not kill a shard
                self.listener_errors.append((detection, error))
        for listener in listeners:
            try:
                listener(detection)
            except Exception as error:  # noqa: BLE001 — isolation is the point
                self.listener_errors.append((detection, error))

    def add_listener(self, listener: Callable[[Detection], None]) -> None:
        """Observe every detection of every query (called serialised).

        Exceptions raised by a listener are isolated and recorded in
        :attr:`listener_errors` — they never break a shard's data path.
        """
        self._listeners.append(listener)

    def detections(
        self, name: Optional[str] = None, partition: Any = _UNSET
    ) -> List[Detection]:
        """Merged, timestamp-ordered detections (drains pending work first).

        Same contract as :meth:`CEPEngine.detections`: optionally one
        query's, optionally restricted to one partition.  Restricted to a
        single partition the sequence is identical to what an inline
        engine would have produced.
        """
        if name is not None and name not in self._queries:
            raise UnknownQueryError(
                f"no query named '{name}' is registered; "
                f"deployed queries: {self.query_names()}"
            )
        self._drain_for_read()
        if partition is _UNSET:
            return self._log.snapshot(query_name=name)
        return self._log.snapshot(query_name=name, partition=partition)

    def clear_detections(self) -> None:
        """Drop collected detections, parent-side and on every shard."""
        self._drain_for_read()
        if self._started and not self._stopped:
            self._broadcast("clear_detections", None)
        self._log.clear()

    # -- telemetry ---------------------------------------------------------------------

    def query_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-query matcher counters, summed across every shard.

        Broadcasts the ``query_stats`` control (FIFO behind queued work, so
        the counters reflect everything fed before the call) and caches the
        merged result.  From a worker/listener thread — or once the runtime
        is stopped or failed — the cached counters are returned instead:
        broadcasting from a worker would deadlock on its own queue.
        """
        if (
            not self._started
            or self._stopped
            or self.failed
            or threading.get_ident() in self._worker_idents
        ):
            return {name: dict(stats) for name, stats in self._query_stats_cache.items()}
        per_shard = self._broadcast("query_stats", None)
        merged: Dict[str, Dict[str, int]] = {}
        for shard_stats in per_shard:
            if not isinstance(shard_stats, Mapping):
                continue
            for name, counters in shard_stats.items():
                bucket = merged.setdefault(name, {})
                for key, value in counters.items():
                    bucket[key] = bucket.get(key, 0) + int(value)
        self._query_stats_cache = merged
        return {name: dict(stats) for name, stats in merged.items()}

    def collect_telemetry(self, timeout: Optional[float] = None) -> None:
        """Pull process-shard histograms and spans parent-side.

        Thread shards share the parent's structures, so their
        ``collect_telemetry`` is a no-op; process shards answer the
        ``telemetry`` control with cumulative histogram states (replaced
        parent-side) and drained spans (absorbed exactly once).  Safe to
        call any time; quietly skips when there is nothing to collect.
        """
        if (
            not self._started
            or self._stopped
            or self.failed
            or threading.get_ident() in self._worker_idents
        ):
            return
        for shard in self._shards:
            with contextlib.suppress(Exception):
                shard.collect_telemetry(timeout=timeout)

    def _refresh_telemetry(self) -> None:
        """Metrics-registry refresh hook: make ``/metrics`` reads current."""
        self.collect_telemetry(timeout=5.0)
        with contextlib.suppress(Exception):
            self.query_stats()

    def shard_liveness(self) -> List[Dict[str, float]]:
        """One cheap parent-visible liveness row per shard.

        The health watchdog's input: worker aliveness, current backlog
        (enqueued − processed − dropped), processed count (the progress
        heartbeat), and live queue occupancy.  Reads only parent-side
        counters and thread/process flags — no control broadcast, so it
        never blocks behind queued work and is safe from any thread.
        """
        rows: List[Dict[str, float]] = []
        for shard in self._shards:
            snapshot = shard.metrics.snapshot()
            queue = getattr(shard, "queue", None)
            if queue is not None:  # thread shard
                depth, capacity = queue.depth, queue.capacity
            else:  # process shard: parent-side credit accounting
                depth = shard._credits.in_flight
                capacity = shard.queue_capacity
            rows.append(
                {
                    "shard_id": shard.shard_id,
                    "alive": bool(shard.alive),
                    "failed": bool(shard.failed),
                    "backlog": max(
                        0.0,
                        snapshot["tuples_enqueued"]
                        - snapshot["tuples_processed"]
                        - snapshot["tuples_dropped"],
                    ),
                    "tuples_processed": snapshot["tuples_processed"],
                    "queue_depth": float(depth),
                    "queue_capacity": float(capacity),
                }
            )
        return rows

    def export_trace(self) -> Dict[str, Any]:
        """The collected spans as a Chrome trace-event document.

        Collects process shards first, so an export after a drain holds the
        full gateway → queue → shard → matcher span tree.  Empty (but
        valid) when tracing is off.
        """
        if self.telemetry is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        self.collect_telemetry()
        return self.telemetry.tracer.export()

    def reset_matchers(self) -> None:
        """Discard all partial matches on every shard."""
        self._broadcast("reset_matchers", None)

    def reset_transformers(self) -> None:
        """Reset shard-local transformer smoothing state ("new scene")."""
        self._broadcast("reset_transformers", None)

    # -- internals ---------------------------------------------------------------------

    def _ensure_running(self) -> None:
        if not self._started:
            self.start()
            return
        if self._stopped:
            raise RuntimeStateError("the runtime has been stopped")

    def _drain_for_read(self) -> None:
        """Drain before a read — unless called *from* a worker context.

        A sink or ``on()`` handler runs on a shard's worker (or listener)
        thread; draining from there would deadlock on the very queue the
        handler is servicing.  Such callers read the current state instead,
        which for their own shard is consistent up to the triggering tuple.

        Reads never raise: after a shard failure (surfaced by the next
        :meth:`push_many` / :meth:`drain`) the detections collected so far
        stay readable, exactly like results stay readable after ``stop``.
        """
        if threading.get_ident() in self._worker_idents:
            return
        if self._started and not self._stopped and not self.failed:
            # The failure surfaces on feed/drain; reads stay usable.
            with contextlib.suppress(ShardFailedError):
                self.drain()

    def _broadcast(self, op: str, payload: Any) -> List[Any]:
        """Run a control on every shard; first error wins after all acks."""
        self._ensure_running()
        results = []
        first_error: Optional[BaseException] = None
        for shard in self._shards:
            try:
                results.append(shard.control(op, payload))
            except ShardFailedError:
                self._raise_if_failed()
                raise
            except Exception as error:  # noqa: BLE001 — collect, finish fan-out, re-raise
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def __repr__(self) -> str:
        state = (
            "failed"
            if self.failed
            else "stopped"
            if self._stopped
            else "started"
            if self._started
            else "new"
        )
        return (
            f"ShardedRuntime(shards={self.shard_count}, executor={self.executor!r}, "
            f"state={state}, queries={self.query_names()}, "
            f"tuples={self.tuples_processed})"
        )
