"""Merging per-shard detections into one consistent view.

Each shard completes matches independently, so detections arrive at the
runtime in *per-shard* order but interleaved arbitrarily *across* shards
(worker scheduling is non-deterministic).  The :class:`DetectionLog`
restores a deterministic global view:

* every recorded detection keeps an arrival sequence number, so the
  per-shard (and therefore per-partition — one partition never spans
  shards) order is preserved exactly;
* reads sort by ``(timestamp, partition key, arrival)`` — event time first,
  then a canonical encoding of the partition value so that two players
  gesturing in the very same frame order deterministically, with arrival
  order as the final stable tie-break within one partition.

Restricted to a single partition the merged view is byte-for-byte the
sequence a single inline engine would have produced, which is the
equivalence the B4 benchmark asserts.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, List, Optional, Tuple

from repro.cep.matcher import Detection

__all__ = ["DetectionLog", "merge_detections", "partition_sort_key"]

#: Sentinel distinguishing "parameter not given" from an explicit ``None``
#: (``partition=None`` meaningfully selects the unpartitioned bucket).
_UNSET: Any = object()


def partition_sort_key(partition: Any) -> Tuple[str, str]:
    """A total order over arbitrary partition values.

    Partition values are usually small ints, but the field is untyped;
    ordering by ``(type name, repr)`` is deterministic across runs and
    never raises on mixed types.
    """
    return (type(partition).__name__, repr(partition))


def merge_detections(detections: Iterable[Detection]) -> List[Detection]:
    """Timestamp-ordered merge of detections from several shards.

    Stable: equal keys keep their input order, so passing per-shard
    sequences concatenated in arrival order preserves each shard's
    internal order exactly.
    """
    return sorted(
        detections,
        key=lambda d: (d.timestamp, partition_sort_key(d.partition)),
    )


class DetectionLog:
    """A thread-safe, append-only log of detections with merged reads.

    Workers append concurrently via :meth:`record`; readers always get
    snapshot copies, never live references.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: List[Detection] = []

    def record(self, detection: Detection) -> None:
        with self._lock:
            self._entries.append(detection)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def entries(self) -> List[Detection]:
        """Arrival-ordered copy (what snapshots persist; reads merge instead)."""
        with self._lock:
            return list(self._entries)

    def restore(self, detections: Iterable[Detection]) -> None:
        """Replace the log contents (snapshot recovery path)."""
        with self._lock:
            self._entries = list(detections)

    def clear_query(self, query_name: str) -> None:
        """Drop one query's detections, keeping every other query's."""
        with self._lock:
            self._entries = [d for d in self._entries if d.query_name != query_name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(
        self,
        query_name: Optional[str] = None,
        partition: Any = _UNSET,
    ) -> List[Detection]:
        """Merged, timestamp-ordered copy; optionally filtered.

        ``query_name`` restricts to one deployed query's detections;
        ``partition`` to one player (pass ``None`` explicitly for the
        unpartitioned bucket).
        """
        with self._lock:
            entries = list(self._entries)
        if query_name is not None:
            entries = [d for d in entries if d.query_name == query_name]
        if partition is not _UNSET:
            entries = [d for d in entries if d.partition == partition]
        return merge_detections(entries)

    def __repr__(self) -> str:
        return f"DetectionLog(entries={len(self)})"
