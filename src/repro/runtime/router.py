"""Partition-hash routing: which shard owns which player.

The sharded runtime executes one :class:`~repro.cep.engine.CEPEngine` per
shard, and correctness of the partitioned matchers (PR 2) only requires
that *all tuples of one partition reach the same shard in order*.  The
router guarantees exactly that: a tuple's partition value is hashed with a
**stable** hash (CRC-32 over a canonical byte encoding — Python's builtin
``hash`` is salted per process and would route differently on every run and
on the two sides of a process boundary) and reduced modulo the shard count.

Tuples that do not carry the partition field all share the ``None`` key —
the same convention the matcher uses for its run table — and therefore all
land on one shard, preserving their relative order too.
"""

from __future__ import annotations

import contextlib
import zlib
from typing import Any, Iterable, List, Mapping, Sequence

from repro.cep.tuples import DEFAULT_PARTITION_FIELD

__all__ = ["stable_partition_hash", "HashPartitionRouter"]


def _canonical_bytes(key: Any) -> bytes:
    """A byte encoding of a partition value that is stable across runs.

    Values that compare equal in Python must encode identically, because
    the matcher's run table is a plain dict: ``True``, ``1`` and ``1.0``
    are one partition there and must be one shard here (sensor frames
    deserialised from JSON routinely stringify player ids as floats).
    """
    if key is None:
        return b"\x00none"
    if isinstance(key, bool):
        key = int(key)
    elif isinstance(key, float) and key.is_integer():
        key = int(key)
    if isinstance(key, int):
        return b"\x02int:" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"\x03float:" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"\x04str:" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, bytes):
        return b"\x05bytes:" + key
    return b"\x06repr:" + repr(key).encode("utf-8", "surrogatepass")


def stable_partition_hash(key: Any) -> int:
    """CRC-32 of the canonical encoding: deterministic across processes."""
    return zlib.crc32(_canonical_bytes(key))


class HashPartitionRouter:
    """Routes tuples to shards by a stable hash of their partition value.

    Parameters
    ----------
    shard_count:
        Number of shards to route across (must be positive).
    partition_field:
        Tuple field carrying the partition value (default ``"player"``);
        must match the partition field the deployed matchers use, otherwise
        one player's tuples would be split across shards and per-player
        detection equivalence would be lost.
    """

    def __init__(
        self,
        shard_count: int,
        partition_field: str = DEFAULT_PARTITION_FIELD,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if not partition_field:
            raise ValueError(
                "partition_field must be a non-empty field name; a sharded "
                "runtime cannot route unpartitioned streams"
            )
        self.shard_count = shard_count
        self.partition_field = partition_field
        #: Routing-topology generation.  Snapshots record it so recovery can
        #: refuse to restore per-shard state into a runtime whose routing
        #: differs (re-sharding a snapshot is a planned, separate migration).
        self.epoch = 0

    def shard_for_key(self, key: Any) -> int:
        """Shard index owning partition value ``key``."""
        return stable_partition_hash(key) % self.shard_count

    def shard_for(self, record: Mapping[str, Any]) -> int:
        """Shard index owning ``record`` (by its partition field)."""
        return self.shard_for_key(record.get(self.partition_field))

    def split(
        self, records: Iterable[Mapping[str, Any]]
    ) -> List[List[Mapping[str, Any]]]:
        """Group ``records`` per shard, preserving per-shard arrival order.

        Because routing is a pure function of the partition value, the
        bucket of shard *i* restricted to one partition is exactly the
        input restricted to that partition — order intact, which is what
        the per-partition matcher semantics require.
        """
        buckets: List[List[Mapping[str, Any]]] = [[] for _ in range(self.shard_count)]
        if self.shard_count == 1:
            buckets[0].extend(records)
            return buckets
        field = self.partition_field
        # Memoise hash -> shard per distinct key: a 30 Hz stream repeats the
        # same handful of player ids thousands of times.
        cache: dict = {}
        for record in records:
            key = record.get(field)
            try:
                shard = cache[key]
            except (KeyError, TypeError):
                shard = self.shard_for_key(key)
                with contextlib.suppress(TypeError):
                    cache[key] = shard
            buckets[shard].append(record)
        return buckets

    def counts(self, records: Sequence[Mapping[str, Any]]) -> List[int]:
        """Per-shard tuple counts for ``records`` (load-skew introspection)."""
        return [len(bucket) for bucket in self.split(records)]

    def __repr__(self) -> str:
        return (
            f"HashPartitionRouter(shards={self.shard_count}, "
            f"field={self.partition_field!r})"
        )
