"""Worker shards: one engine, one queue, one worker each.

A shard is the unit of concurrency of the sharded runtime: it owns a
private :class:`~repro.cep.engine.CEPEngine` (with its own ``kinect_t``
view and run tables), a bounded :class:`~repro.runtime.queues.ShardQueue`,
and a worker that services the queue.  Everything that touches the engine —
tuples *and* control operations like deploying a query or resetting
matchers — flows through the queue, so engine state is only ever touched
from the worker and no engine-internal locking is needed.  Because the
queue is FIFO, a control enqueued after a feed observes all of that feed's
tuples, exactly like an inline engine would.

Two executors implement the same protocol:

:class:`EngineShard`
    The worker is a daemon *thread*.  Zero serialisation cost and shared
    memory (the runtime can introspect live matcher state), but on a
    GIL-bound CPython build shards time-slice one core; the win over the
    inline path comes from queue-drain batching, not parallelism.
:class:`ProcessShard`
    The worker is a *process* (forkserver/spawn, never a multi-threaded
    fork).  Tuples and detections cross a pipe,
    so there is pickling overhead and no live engine introspection, but
    shards genuinely run in parallel — the executor to use for CPU-bound
    scaling on multi-core machines.  Queries travel as query *text*
    (builder/parser round-trips are byte-identical, so compiled-predicate
    cache keys agree with the parent's), and the backpressure bound is
    enforced parent-side with a credit counter fed by the worker's
    processed acknowledgements.

Failure semantics are identical: an exception on the data path marks the
shard failed, pending control waiters are released with the failure, and
the owning runtime surfaces a :class:`~repro.errors.ShardFailedError`
(chaining the original exception) on the next interaction.  A failing
*control* (e.g. deploying a malformed query) is reported to its caller and
does **not** kill the shard.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.cep.engine import CEPEngine, DeployedQuery
from repro.cep.matcher import Detection, MatcherConfig
from repro.cep.sinks import CallbackSink
from repro.cep.views import RAW_STREAM_NAME, TRANSFORMED_STREAM_NAME, install_kinect_view
from repro.errors import BackpressureError, RuntimeStateError, ShardFailedError
from repro.observability.clock import monotonic_time, perf_clock
from repro.observability.histogram import LatencyHistogram
from repro.observability.telemetry import Telemetry, TelemetryConfig
from repro.observability.tracing import TraceContext, use_context
from repro.runtime.metrics import ShardMetrics
from repro.runtime.queues import BackpressurePolicy, ShardQueue
from repro.streams.clock import SimulatedClock
from repro.transform.pipeline import KinectTransformer, TransformConfig

__all__ = [
    "ShardEngineSpec",
    "EngineShard",
    "ProcessShard",
    "RemoteShardError",
    "ShardFailure",
    "current_detection_latency",
]

#: How detections leave a shard: ``callback(shard_id, detection)``.
DetectionCallback = Callable[[int, Detection], None]


class RemoteShardError(Exception):
    """An exception that happened inside a shard *process*.

    The original object cannot always cross the pipe, so this carries its
    ``repr`` and the formatted remote traceback instead.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


@dataclass
class ShardFailure:
    """Why a shard died: the exception plus its (possibly remote) traceback."""

    shard_id: int
    error: BaseException
    traceback_text: str = ""

    def raise_(self) -> None:
        raise ShardFailedError(
            self.shard_id, self.error, detail=self.traceback_text
        ) from self.error


@dataclass(frozen=True)
class ShardEngineSpec:
    """A picklable recipe for one shard's engine.

    Each shard builds the standard stack from it: a fresh
    :class:`~repro.cep.engine.CEPEngine` with the configured matcher
    defaults and the Kinect transformation view between ``raw_stream`` and
    ``view_stream``.  Being a plain dataclass of plain dataclasses it
    crosses a process boundary losslessly, which is what lets thread and
    process shards run *identical* engines.
    """

    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    transform: TransformConfig = field(default_factory=TransformConfig)
    raw_stream: str = RAW_STREAM_NAME
    view_stream: str = TRANSFORMED_STREAM_NAME
    install_view: bool = True
    #: Telemetry knobs for the shard's side of the pipeline.  Rides the
    #: pickle boundary with the rest of the spec, so a process shard's
    #: child builds the same tracer/histogram configuration the parent
    #: runs (``None`` = telemetry fully off).
    telemetry: Optional[TelemetryConfig] = None

    def build(self) -> CEPEngine:
        engine = CEPEngine(clock=SimulatedClock(), matcher_config=self.matcher)
        if self.install_view:
            install_kinect_view(
                engine,
                transform_config=self.transform,
                raw_name=self.raw_stream,
                view_name=self.view_stream,
            )
        elif self.raw_stream not in engine.streams:
            engine.create_stream(self.raw_stream)
        return engine

    def build_telemetry(self) -> Optional[Telemetry]:
        """The live telemetry bundle this spec describes (``None`` when off)."""
        if self.telemetry is None or not self.telemetry.enabled:
            return None
        return Telemetry(self.telemetry)


# ---------------------------------------------------------------------------
# Control operations (shared by both executors)
# ---------------------------------------------------------------------------


def _apply_control(
    engine: CEPEngine,
    op: str,
    payload: Any,
    emit: Callable[[Detection], None],
) -> Any:
    """Execute one control operation against a shard-local engine."""
    if op == "deploy":
        name, query_text, matcher_config, partition_override = payload
        kwargs: Dict[str, Any] = {}
        if partition_override is not None:
            kwargs["partition_field"] = partition_override[0]
        return engine.register_query(
            query_text,
            name=name,
            sink=CallbackSink(emit),
            matcher_config=matcher_config,
            create_missing_streams=True,
            **kwargs,
        )
    if op == "undeploy":
        engine.unregister_query(payload)
        return None
    if op == "enable":
        name, enabled = payload
        engine.enable_query(name, enabled)
        return None
    if op == "clear_detections":
        engine.clear_detections()
        return None
    if op == "clear_query_detections":
        engine.get_query(payload).clear_detections()
        return None
    if op == "reset_matchers":
        engine.reset_matchers()
        return None
    if op == "reset_transformers":
        for view in engine.views.values():
            if isinstance(view.function, KinectTransformer):
                view.function.reset()
        return None
    if op == "register_function":
        name, function, arity = payload
        engine.register_function(name, function, arity)
        return None
    if op == "capture_state":
        return engine.capture_state()
    if op == "query_stats":
        return engine.query_stats()
    if op == "restore_state":
        # Re-registered queries need the shard's detection callback attached,
        # exactly as a live "deploy" would wire it.
        return engine.restore_state(payload, sink_factory=lambda: CallbackSink(emit))
    if op == "flush":
        return None
    raise ValueError(f"unknown shard control operation {op!r}")


#: Control ops whose result is plain data and may cross a process boundary
#: (everything else acks with ``None`` on the process executor).
#: ``telemetry`` is handled by the worker loops themselves (it needs the
#: shard's histograms and tracer, which ``_apply_control`` cannot see).
_PICKLABLE_CONTROL_RESULTS = frozenset({"capture_state", "query_stats", "telemetry"})


#: Per-thread ingest stamp of the batch currently being processed, plus the
#: parent-listener override for latencies computed in a child process.
_batch_meta = threading.local()


def current_detection_latency() -> Optional[float]:
    """Ingest→now latency of the batch being processed on this thread.

    :func:`_run_batch` installs the producer's enqueue stamp for the
    duration of the engine push, so a detection callback running
    synchronously under it (thread shards) reads the end-to-end
    ingest→detection latency with one clock call.  Process shards compute
    the latency child-side at emit time, ship it with the detection, and
    the parent listener installs it here as an override around its
    callback.  ``None`` whenever telemetry is off — recording is then
    skipped entirely.
    """
    override = getattr(_batch_meta, "override", None)
    if override is not None:
        return override
    enqueued_at = getattr(_batch_meta, "enqueued_at", None)
    if enqueued_at is None:
        return None
    return max(0.0, monotonic_time() - enqueued_at)


def _run_batch(
    engine: CEPEngine,
    telemetry: Optional[Telemetry],
    shard_id: int,
    stream: str,
    records: Sequence[Mapping[str, Any]],
    batch_size: Optional[int],
    meta: Optional[Any],
) -> "tuple[float, Optional[float]]":
    """Process one queued batch; returns ``(busy_seconds, queue_wait)``.

    Shared by both executors so thread and process shards measure and
    trace identically.  ``meta`` is the telemetry stamp the producer
    attached at enqueue time — ``(enqueue_monotonic, trace_context)`` —
    or ``None`` when telemetry is off, in which case this is exactly the
    old hot path plus one ``is None`` check.
    """
    queue_wait: Optional[float] = None
    trace: Optional[TraceContext] = None
    if meta is not None:
        enqueued_at, trace = meta
        dequeued_at = monotonic_time()
        queue_wait = max(0.0, dequeued_at - enqueued_at)
    span = None
    if trace is not None and telemetry is not None and telemetry.tracing_active:
        telemetry.tracer.record_between(
            "queue.wait",
            "queue",
            trace,
            dequeued_at - queue_wait,
            dequeued_at,
            shard=shard_id,
            tuples=len(records),
        )
        span = telemetry.tracer.span(
            "shard.batch",
            "shard",
            trace,
            shard=shard_id,
            stream=stream,
            tuples=len(records),
        )
    if meta is not None:
        _batch_meta.enqueued_at = enqueued_at
    started = perf_clock()
    try:
        if span is not None:
            with use_context(span.context):
                engine.push_many(stream, records, batch_size=batch_size)
        else:
            engine.push_many(stream, records, batch_size=batch_size)
    finally:
        busy = perf_clock() - started
        if meta is not None:
            _batch_meta.enqueued_at = None
    if span is not None:
        span.close()
    if telemetry is not None:
        telemetry.maybe_log_slow_batch(
            busy, stream, len(records), shard_id=shard_id, context=trace
        )
    return busy, queue_wait


class _Control:
    """A control message with a completion event (thread-side handle)."""

    __slots__ = ("op", "payload", "done", "result", "error")

    def __init__(self, op: str, payload: Any = None) -> None:
        self.op = op
        self.payload = payload
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def resolve(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


class _ShardBase:
    """Lifecycle/failure bookkeeping shared by both shard executors."""

    def __init__(self, shard_id: int, metrics: ShardMetrics) -> None:
        self.shard_id = shard_id
        self.metrics = metrics
        self._failure: Optional[ShardFailure] = None
        self._failure_lock = threading.Lock()
        self._started = False
        self._stopped = False

    @property
    def failure(self) -> Optional[ShardFailure]:
        with self._failure_lock:
            return self._failure

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def _record_failure(
        self, error: BaseException, traceback_text: str = ""
    ) -> ShardFailure:
        with self._failure_lock:
            if self._failure is None:
                self._failure = ShardFailure(self.shard_id, error, traceback_text)
                self.metrics.add_error()
            return self._failure

    def raise_if_failed(self) -> None:
        failure = self.failure
        if failure is not None:
            failure.raise_()


# ---------------------------------------------------------------------------
# Thread executor
# ---------------------------------------------------------------------------


class EngineShard(_ShardBase):
    """One engine serviced by a worker thread from a bounded queue."""

    def __init__(
        self,
        shard_id: int,
        spec: ShardEngineSpec,
        metrics: ShardMetrics,
        on_detection: DetectionCallback,
        queue_capacity: int = 2048,
        backpressure: str = BackpressurePolicy.BLOCK,
        engine_factory: Optional[Callable[[int], CEPEngine]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(shard_id, metrics)
        self.spec = spec
        self._engine_factory = engine_factory
        self._on_detection = on_detection
        #: Shared with the owning runtime: thread shards record spans and
        #: histograms straight into the parent's structures, so there is
        #: nothing to collect later (unlike process shards).
        self.telemetry = telemetry
        self.queue = ShardQueue(queue_capacity, policy=backpressure, metrics=metrics)
        self._thread: Optional[threading.Thread] = None
        #: Shard-local deployed queries, for live introspection (progress).
        self.deployed: Dict[str, DeployedQuery] = {}
        self.engine: Optional[CEPEngine] = None
        self._engine_ready = threading.Event()

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeStateError(f"shard {self.shard_id} is already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{self.shard_id}", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the worker; with ``drain`` every queued item is processed first.

        Best-effort on shutdown: if the drain times out, the queue is
        closed anyway (mirroring :meth:`ProcessShard.stop`).
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        if drain and not self.failed:
            self.queue.join(timeout=timeout)
        self.queue.close()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- producer API ------------------------------------------------------------------

    def enqueue_tuples(
        self,
        stream: str,
        records: Sequence[Mapping[str, Any]],
        batch_size: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Queue a chunk of tuples for this shard, respecting backpressure.

        Chunks are split to at most the queue capacity so the ``block``
        policy's bound stays meaningful, and to at most ``batch_size`` so
        the worker's engine sees the same chunk boundaries an inline
        ``push_many(batch_size=…)`` would produce.

        With telemetry on, each chunk carries ``(enqueue_time, trace)`` so
        the worker can close the queue-wait histogram and continue the
        caller's trace; with telemetry off the stamp is ``None`` and the
        worker takes the unmeasured path.
        """
        self.raise_if_failed()
        meta = (monotonic_time(), trace) if self.telemetry is not None else None
        limit = self.queue.capacity
        if batch_size is not None:
            limit = min(limit, batch_size)
        total = len(records)
        for start in range(0, total, limit):
            chunk = records[start : start + limit]
            try:
                self.queue.put(
                    ("tuples", stream, chunk, batch_size, meta), weight=len(chunk)
                )
            except RuntimeStateError:
                # The queue closes when the worker dies; surface the cause.
                self.raise_if_failed()
                raise
            self.metrics.add_enqueued(len(chunk))

    def control(self, op: str, payload: Any = None, timeout: Optional[float] = None) -> Any:
        """Run a control operation on the worker and wait for its result."""
        self.raise_if_failed()
        handle = _Control(op, payload)
        try:
            self.queue.put(handle, weight=0)
        except RuntimeStateError:
            self.raise_if_failed()
            raise
        deadline = None if timeout is None else time.monotonic() + timeout
        while not handle.done.wait(timeout=0.5):
            self.raise_if_failed()
            if deadline is not None and time.monotonic() > deadline:
                raise RuntimeStateError(
                    f"shard {self.shard_id} control {op!r} timed out"
                )
        if handle.error is not None:
            raise handle.error
        return handle.result

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until everything enqueued so far has been processed.

        Raises :class:`~repro.errors.RuntimeStateError` if ``timeout``
        expires with work still pending — returning normally would let the
        caller read incomplete results believing them complete.
        """
        self.raise_if_failed()
        completed = self.queue.join(timeout=timeout)
        self.raise_if_failed()
        if not completed:
            raise RuntimeStateError(
                f"shard {self.shard_id} drain timed out with work still queued"
            )

    def collect_telemetry(self, timeout: Optional[float] = None) -> None:
        """No-op: thread shards write shared histograms/spans directly."""

    # -- worker ------------------------------------------------------------------------

    def _emit(self, detection: Detection) -> None:
        self._on_detection(self.shard_id, detection)

    def _run(self) -> None:
        try:
            if self._engine_factory is not None:
                engine = self._engine_factory(self.shard_id)
            else:
                engine = self.spec.build()
            engine.telemetry = self.telemetry
            self.engine = engine
            self._engine_ready.set()
        except Exception as error:  # noqa: BLE001 — a dead shard must report, not raise
            self._record_failure(error, traceback.format_exc())
            self._engine_ready.set()
            self._fail_pending()
            return
        while True:
            got = self.queue.get(timeout=0.5)
            if got is None:
                if self.queue.closed:
                    break
                continue
            item, _weight = got
            try:
                if isinstance(item, _Control):
                    try:
                        result = _apply_control(engine, item.op, item.payload, self._emit)
                    except Exception as error:  # noqa: BLE001 — report to the caller
                        item.resolve(error=error)
                    else:
                        if item.op == "deploy" and isinstance(result, DeployedQuery):
                            self.deployed[result.name] = result
                        elif item.op == "undeploy":
                            self.deployed.pop(item.payload, None)
                        elif item.op == "restore_state" and isinstance(result, list):
                            for restored in result:
                                if isinstance(restored, DeployedQuery):
                                    self.deployed[restored.name] = restored
                        item.resolve(result=result)
                else:
                    _tag, stream, records, batch_size, meta = item
                    busy, queue_wait = _run_batch(
                        engine,
                        self.telemetry,
                        self.shard_id,
                        stream,
                        records,
                        batch_size,
                        meta,
                    )
                    if queue_wait is not None:
                        self.metrics.record_queue_wait(queue_wait)
                        self.metrics.record_batch_seconds(busy)
                    self.metrics.add_processed(len(records), busy)
            except Exception as error:  # noqa: BLE001 — data-path failure kills the shard
                self._record_failure(error, traceback.format_exc())
                self.queue.task_done()
                self._fail_pending()
                return
            self.queue.task_done()

    def _fail_pending(self) -> None:
        """After a failure: release every queued control and drain waiter."""
        failure = self.failure
        while True:
            got = self.queue.get(timeout=0)
            if got is None:
                break
            item, _weight = got
            if isinstance(item, _Control):
                item.resolve(
                    error=ShardFailedError(
                        self.shard_id, failure.error, detail=failure.traceback_text
                    )
                )
            self.queue.task_done()
        self.queue.close()
        self.queue.abandon()


# ---------------------------------------------------------------------------
# Process executor
# ---------------------------------------------------------------------------


def _process_context():
    """The safest available multiprocessing start method.

    Never plain ``fork``: the parent already runs listener threads (and
    arbitrary application threads), and forking a multi-threaded process is
    a documented deadlock hazard.  ``forkserver`` (POSIX) forks workers
    from a clean single-threaded server and does not re-execute
    ``__main__``; ``spawn`` is the portable fallback.  Everything that
    crosses the boundary (the spec, query text, tuples, detections) is
    picklable by design.
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


def _process_shard_main(shard_id: int, spec: ShardEngineSpec, in_queue, out_queue) -> None:
    """Entry point of a shard worker process."""
    try:
        engine = spec.build()
        telemetry = spec.build_telemetry()
        engine.telemetry = telemetry
    except Exception:  # noqa: BLE001 — report construction failures too
        out_queue.put(("failed", "engine construction failed", traceback.format_exc()))
        out_queue.put(("bye",))
        return

    # Child-local latency histograms.  Cumulative over the shard's life;
    # the parent *replaces* its copies on every ``telemetry`` collection,
    # so nothing is double-counted and nothing rides the per-batch path.
    queue_wait_histogram = LatencyHistogram()
    batch_histogram = LatencyHistogram()

    # Child-side continuous profiler: samples this process's threads and
    # ships counts to the parent on ``telemetry`` collections (drained,
    # like spans, so the parent folds increments, never re-counts).
    profiler = telemetry.profiler if telemetry is not None else None
    if profiler is not None:
        profiler.start()

    def emit(detection: Detection) -> None:
        # The e2e latency is measured here, child-side, where the ingest
        # stamp is still live — the pipe crossing is excluded by design
        # (it is parent dispatch, not pipeline processing).
        out_queue.put(("det", detection, current_detection_latency()))

    def telemetry_snapshot() -> Dict[str, Any]:
        """Picklable telemetry payload; spans are drained, never re-sent."""
        snapshot = {
            "histograms": {
                "queue_wait": queue_wait_histogram.to_state(),
                "batch_processing": batch_histogram.to_state(),
            },
            "spans": telemetry.tracer.drain() if telemetry is not None else [],
            "query_stats": engine.query_stats(),
        }
        if profiler is not None:
            # Drain semantics: ship the accumulated counts and reset, so
            # the parent's absorb() is a pure increment.
            snapshot["profile"] = profiler.to_state()
            profiler.clear()
        return snapshot

    while True:
        message = in_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "tuples":
                _tag, stream, records, batch_size, meta = message
                busy, queue_wait = _run_batch(
                    engine, telemetry, shard_id, stream, records, batch_size, meta
                )
                if queue_wait is not None:
                    queue_wait_histogram.record(queue_wait)
                    batch_histogram.record(busy)
                out_queue.put(("done", len(records), busy))
            elif kind == "control":
                _tag, token, op, payload = message
                try:
                    if op == "telemetry":
                        result = telemetry_snapshot()
                    else:
                        result = _apply_control(engine, op, payload, emit)
                except Exception as error:  # noqa: BLE001 — report to the caller
                    out_queue.put(("nack", token, repr(error), traceback.format_exc()))
                else:
                    if op not in _PICKLABLE_CONTROL_RESULTS:
                        result = None
                    out_queue.put(("ack", token, result))
        except Exception as error:  # noqa: BLE001 — data-path failure kills the shard
            out_queue.put(("failed", repr(error), traceback.format_exc()))
            break
    if profiler is not None:
        profiler.stop()
    out_queue.put(("bye",))


class _Credits:
    """Parent-side tuple-in-flight accounting for a process shard."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._in_flight = 0
        self._lock = threading.Lock()
        self._released = threading.Condition(self._lock)
        self._broken = False

    def acquire(self, count: int, block: bool) -> bool:
        with self._lock:
            if block:
                while (
                    self._in_flight > 0
                    and self._in_flight + count > self.capacity
                    and not self._broken
                ):
                    self._released.wait()
                if self._broken:
                    return False
            elif self._in_flight + count > self.capacity:
                return False
            self._in_flight += count
            return True

    def release(self, count: int) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - count)
            self._released.notify_all()

    def break_(self) -> None:
        """Wake and refuse all waiters (shard failed)."""
        with self._lock:
            self._broken = True
            self._released.notify_all()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class ProcessShard(_ShardBase):
    """One engine serviced by a worker *process*; same protocol as
    :class:`EngineShard`.

    Restrictions compared to the thread executor: ``drop_oldest`` is not
    supported (the queued data lives in the child; ``drop_newest`` works —
    an offered chunk that finds no credits is dropped parent-side before
    it ever crosses the pipe), control payloads must
    be picklable, there is no live matcher introspection (progress
    feedback reads zero), and — as with any ``spawn``/``forkserver``
    multiprocessing program — the application's ``__main__`` module must
    be importable (guard entry points with ``if __name__ == "__main__":``).
    """

    def __init__(
        self,
        shard_id: int,
        spec: ShardEngineSpec,
        metrics: ShardMetrics,
        on_detection: DetectionCallback,
        queue_capacity: int = 2048,
        backpressure: str = BackpressurePolicy.BLOCK,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(shard_id, metrics)
        BackpressurePolicy.validate(backpressure)
        if backpressure == BackpressurePolicy.DROP_OLDEST:
            raise ValueError(
                "the process executor cannot drop queued tuples (they live in "
                "the worker process); use backpressure='block' or 'error', or "
                "the thread executor"
            )
        self.spec = spec
        #: Parent-side bundle: absorbed spans from the child land in this
        #: tracer on :meth:`collect_telemetry`.  The child builds its own
        #: from ``spec.telemetry``.
        self.telemetry = telemetry
        self._telemetry_enabled = spec.telemetry is not None and spec.telemetry.enabled
        self._on_detection = on_detection
        self._backpressure = backpressure
        self._credits = _Credits(queue_capacity)
        self.queue_capacity = queue_capacity
        context = _process_context()
        self._in_queue = context.Queue()
        self._out_queue = context.Queue()
        self._process = context.Process(
            target=_process_shard_main,
            args=(shard_id, spec, self._in_queue, self._out_queue),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._listener: Optional[threading.Thread] = None
        self._pending: Dict[int, _Control] = {}
        self._pending_lock = threading.Lock()
        self._token_counter = 0
        self._listener_done = threading.Event()
        self.deployed: Dict[str, DeployedQuery] = {}  # always empty; API parity
        self.engine = None  # no parent-side engine; API parity

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeStateError(f"shard {self.shard_id} is already started")
        self._started = True
        self._process.start()
        self._listener = threading.Thread(
            target=self._listen, name=f"repro-shard-{self.shard_id}-listener", daemon=True
        )
        self._listener.start()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        if not self._started or self._stopped:
            return
        self._stopped = True
        if drain and not self.failed:
            # Best-effort drain on shutdown.
            with contextlib.suppress(Exception):
                self.control("flush", timeout=timeout)
        # The child may already be gone.
        with contextlib.suppress(Exception):
            self._in_queue.put(("stop",))

    def join(self, timeout: Optional[float] = None) -> None:
        if not self._started:
            return
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._listener_done.wait(timeout=timeout or 5.0)
        # Unblock any producer still waiting on credits.
        self._credits.break_()

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    # -- producer API ------------------------------------------------------------------

    def enqueue_tuples(
        self,
        stream: str,
        records: Sequence[Mapping[str, Any]],
        batch_size: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.raise_if_failed()
        # The stamp is parent-clock monotonic time: on the platforms the
        # process executor targets the monotonic clock is system-wide, so
        # the child's dequeue reading shares its epoch.
        meta = (monotonic_time(), trace) if self._telemetry_enabled else None
        limit = self.queue_capacity
        if batch_size is not None:
            limit = min(limit, batch_size)
        total = len(records)
        for start in range(0, total, limit):
            chunk = records[start : start + limit]
            chunk = chunk if isinstance(chunk, list) else list(chunk)
            ok = self._credits.acquire(
                len(chunk), block=self._backpressure == BackpressurePolicy.BLOCK
            )
            if not ok:
                self.raise_if_failed()
                if self._backpressure == BackpressurePolicy.DROP_NEWEST:
                    # No credits: the offered chunk is rejected whole,
                    # parent-side, before it crosses the pipe.
                    self.metrics.add_dropped(len(chunk))
                    continue
                raise BackpressureError(
                    f"shard {self.shard_id} queue is full "
                    f"({self._credits.in_flight}/{self.queue_capacity} tuples in flight)"
                )
            self._in_queue.put(("tuples", stream, chunk, batch_size, meta))
            self.metrics.add_enqueued(len(chunk))
            self.metrics.record_queue_depth(self._credits.in_flight)

    def control(self, op: str, payload: Any = None, timeout: Optional[float] = None) -> Any:
        self.raise_if_failed()
        handle = _Control(op, payload)
        with self._pending_lock:
            self._token_counter += 1
            token = self._token_counter
            self._pending[token] = handle
        self._in_queue.put(("control", token, op, payload))
        deadline = None if timeout is None else time.monotonic() + timeout
        while not handle.done.wait(timeout=0.5):
            self.raise_if_failed()
            if not self._process.is_alive() and not handle.done.is_set():
                failure = self._record_failure(
                    RemoteShardError(f"shard process {self.shard_id} died unexpectedly")
                )
                self._release_pending(failure)
            if deadline is not None and time.monotonic() > deadline:
                raise RuntimeStateError(
                    f"shard {self.shard_id} control {op!r} timed out"
                )
        if handle.error is not None:
            raise handle.error
        return handle.result

    def drain(self, timeout: Optional[float] = None) -> None:
        """A flush round-trip: acked only after all earlier work finished."""
        self.control("flush", timeout=timeout)

    def collect_telemetry(self, timeout: Optional[float] = None) -> None:
        """Pull the child's histograms and spans across the pipe.

        Histogram states are cumulative, so the parent-side copies are
        replaced; spans are drained child-side, so each is absorbed into
        the parent tracer exactly once.  Quietly does nothing when
        telemetry is off or the shard is not in a collectable state.
        """
        if (
            not self._telemetry_enabled
            or not self._started
            or self._stopped
            or self.failed
        ):
            return
        payload = self.control("telemetry", timeout=timeout)
        if not isinstance(payload, Mapping):
            return
        histograms = payload.get("histograms")
        if isinstance(histograms, Mapping):
            self.metrics.replace_histogram_states(histograms)
        spans = payload.get("spans")
        if spans and self.telemetry is not None:
            self.telemetry.tracer.absorb(spans)
        profile = payload.get("profile")
        if (
            isinstance(profile, Mapping)
            and self.telemetry is not None
            and self.telemetry.profiler is not None
        ):
            # Child counts are drained on collection, so this is a pure
            # increment on the parent profiler.
            self.telemetry.profiler.absorb(profile)

    # -- listener ----------------------------------------------------------------------

    def _listen(self) -> None:
        while True:
            try:
                message = self._out_queue.get(timeout=0.5)
            except Exception:  # noqa: BLE001 — queue.Empty, or a dead child's pipe
                if not self._process.is_alive() and self._out_queue.empty():
                    if not self._stopped and not self.failed:
                        failure = self._record_failure(
                            RemoteShardError(
                                f"shard process {self.shard_id} died unexpectedly"
                            )
                        )
                        self._release_pending(failure)
                        self._credits.break_()
                    break
                continue
            kind = message[0]
            if kind == "det":
                latency = message[2] if len(message) > 2 else None
                if latency is not None:
                    _batch_meta.override = latency
                    try:
                        self._on_detection(self.shard_id, message[1])
                    finally:
                        _batch_meta.override = None
                else:
                    self._on_detection(self.shard_id, message[1])
            elif kind == "done":
                _tag, count, busy = message
                self.metrics.add_processed(count, busy)
                self._credits.release(count)
            elif kind == "ack":
                self._resolve(
                    message[1], None, result=message[2] if len(message) > 2 else None
                )
            elif kind == "nack":
                _tag, token, error_repr, tb = message
                self._resolve(token, RemoteShardError(error_repr, tb))
            elif kind == "failed":
                _tag, error_repr, tb = message
                failure = self._record_failure(RemoteShardError(error_repr, tb), tb)
                self._release_pending(failure)
                self._credits.break_()
            elif kind == "bye":
                break
        self._listener_done.set()

    def _resolve(
        self, token: int, error: Optional[BaseException], result: Any = None
    ) -> None:
        with self._pending_lock:
            handle = self._pending.pop(token, None)
        if handle is not None:
            handle.resolve(result=result, error=error)

    def _release_pending(self, failure: ShardFailure) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for handle in pending:
            handle.resolve(
                error=ShardFailedError(
                    self.shard_id, failure.error, detail=failure.traceback_text
                )
            )
