"""Shard metrics: what the runtime measures about itself.

Every shard maintains one :class:`ShardMetrics` bundle — tuples enqueued /
processed / dropped, queue-depth high-water mark, detections, busy time —
and a :class:`MetricsRegistry` aggregates them for callers (the
``GestureSession`` exposes it as ``session.metrics``).  All counters are
lock-protected: producers increment from the feeding thread, workers from
their shard thread (or the result-listener thread of a process shard), and
readers may snapshot at any time.

Snapshots are plain dictionaries of plain numbers so they serialise
directly into the benchmark-results JSON (``BENCH_*.json``).
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

__all__ = ["ShardMetrics", "DurabilityMetrics", "MetricsRegistry"]


class ShardMetrics:
    """Counters of one worker shard.  All methods are thread-safe."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._tuples_enqueued = 0
        self._tuples_processed = 0
        self._tuples_dropped = 0
        self._batches_processed = 0
        self._detections = 0
        self._queue_depth_hwm = 0
        self._busy_seconds = 0.0
        self._errors = 0

    # -- producer side ---------------------------------------------------------------

    def add_enqueued(self, count: int) -> None:
        with self._lock:
            self._tuples_enqueued += count

    def add_dropped(self, count: int) -> None:
        with self._lock:
            self._tuples_dropped += count

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self._queue_depth_hwm:
                self._queue_depth_hwm = depth

    # -- worker side -----------------------------------------------------------------

    def add_processed(self, count: int, busy_seconds: float = 0.0) -> None:
        with self._lock:
            self._tuples_processed += count
            self._batches_processed += 1
            self._busy_seconds += busy_seconds

    def add_detections(self, count: int = 1) -> None:
        with self._lock:
            self._detections += count

    def add_error(self) -> None:
        with self._lock:
            self._errors += 1

    # -- readers ---------------------------------------------------------------------

    @property
    def tuples_enqueued(self) -> int:
        with self._lock:
            return self._tuples_enqueued

    @property
    def tuples_processed(self) -> int:
        with self._lock:
            return self._tuples_processed

    @property
    def tuples_dropped(self) -> int:
        with self._lock:
            return self._tuples_dropped

    @property
    def detections(self) -> int:
        with self._lock:
            return self._detections

    @property
    def queue_depth_hwm(self) -> int:
        with self._lock:
            return self._queue_depth_hwm

    @property
    def backlog(self) -> int:
        """Tuples enqueued but not yet processed (or dropped)."""
        with self._lock:
            return self._tuples_enqueued - self._tuples_processed - self._tuples_dropped

    @property
    def tuples_per_second(self) -> float:
        """Worker-side throughput over the shard's busy time only."""
        with self._lock:
            if self._busy_seconds <= 0:
                return 0.0
            return self._tuples_processed / self._busy_seconds

    def snapshot(self) -> Dict[str, float]:
        """A JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "shard_id": self.shard_id,
                "tuples_enqueued": self._tuples_enqueued,
                "tuples_processed": self._tuples_processed,
                "tuples_dropped": self._tuples_dropped,
                "batches_processed": self._batches_processed,
                "detections": self._detections,
                "queue_depth_hwm": self._queue_depth_hwm,
                "busy_seconds": round(self._busy_seconds, 6),
                "tuples_per_second": round(
                    self._tuples_processed / self._busy_seconds, 1
                )
                if self._busy_seconds > 0
                else 0.0,
                "errors": self._errors,
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`snapshot` counters rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ShardMetrics(shard={snap['shard_id']}, "
            f"processed={snap['tuples_processed']}, "
            f"dropped={snap['tuples_dropped']}, "
            f"detections={snap['detections']}, "
            f"queue_hwm={snap['queue_depth_hwm']})"
        )


class DurabilityMetrics:
    """Counters of the durability subsystem (event log + snapshots).

    Maintained by :class:`repro.persistence.DurabilityManager` and exposed
    through ``session.metrics`` like the shard counters, so one registry
    snapshot covers the whole stack.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries_appended = 0
        self._bytes_appended = 0
        self._fsyncs = 0
        self._segments_rotated = 0
        self._snapshots_taken = 0
        self._snapshot_seconds = 0.0
        self._entries_replayed = 0
        self._recoveries = 0

    def add_append(self, byte_count: int, entries: int = 1) -> None:
        with self._lock:
            self._entries_appended += entries
            self._bytes_appended += byte_count

    def add_fsync(self, count: int = 1) -> None:
        with self._lock:
            self._fsyncs += count

    def add_rotation(self) -> None:
        with self._lock:
            self._segments_rotated += 1

    def add_snapshot(self, duration_seconds: float) -> None:
        with self._lock:
            self._snapshots_taken += 1
            self._snapshot_seconds += duration_seconds

    def add_replayed(self, entries: int) -> None:
        with self._lock:
            self._entries_replayed += entries

    def add_recovery(self) -> None:
        with self._lock:
            self._recoveries += 1

    @property
    def entries_appended(self) -> int:
        with self._lock:
            return self._entries_appended

    @property
    def bytes_appended(self) -> int:
        with self._lock:
            return self._bytes_appended

    @property
    def fsyncs(self) -> int:
        with self._lock:
            return self._fsyncs

    @property
    def segments_rotated(self) -> int:
        with self._lock:
            return self._segments_rotated

    @property
    def snapshots_taken(self) -> int:
        with self._lock:
            return self._snapshots_taken

    def snapshot(self) -> Dict[str, float]:
        """A JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "entries_appended": self._entries_appended,
                "bytes_appended": self._bytes_appended,
                "fsyncs": self._fsyncs,
                "segments_rotated": self._segments_rotated,
                "snapshots_taken": self._snapshots_taken,
                "snapshot_seconds": round(self._snapshot_seconds, 6),
                "entries_replayed": self._entries_replayed,
                "recoveries": self._recoveries,
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`snapshot` counters rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"DurabilityMetrics(entries={snap['entries_appended']}, "
            f"bytes={snap['bytes_appended']}, fsyncs={snap['fsyncs']}, "
            f"snapshots={snap['snapshots_taken']})"
        )


class MetricsRegistry:
    """Shard id → :class:`ShardMetrics`, plus aggregate views.

    Shard entries are created on first access, so sinks and callers can
    read the registry before the runtime has started.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shards: Dict[int, ShardMetrics] = {}
        #: Event-log / snapshot counters; populated by the durability
        #: subsystem, zeroes when durability is off.
        self.durability = DurabilityMetrics()

    def shard(self, shard_id: int) -> ShardMetrics:
        with self._lock:
            metrics = self._shards.get(shard_id)
            if metrics is None:
                metrics = self._shards[shard_id] = ShardMetrics(shard_id)
            return metrics

    def shard_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._shards)

    def totals(self) -> Dict[str, float]:
        """Counters summed over every shard (hwm is the max, not the sum)."""
        snapshots = [self.shard(shard_id).snapshot() for shard_id in self.shard_ids()]
        totals: Dict[str, float] = {
            "tuples_enqueued": 0,
            "tuples_processed": 0,
            "tuples_dropped": 0,
            "batches_processed": 0,
            "detections": 0,
            "queue_depth_hwm": 0,
            "busy_seconds": 0.0,
            "errors": 0,
        }
        for snap in snapshots:
            for key in totals:
                if key == "queue_depth_hwm":
                    totals[key] = max(totals[key], snap[key])
                else:
                    totals[key] += snap[key]
        totals["busy_seconds"] = round(totals["busy_seconds"], 6)
        return totals

    def snapshot(self) -> Dict[str, object]:
        """Full JSON-serialisable view: per-shard, totals and durability."""
        return {
            "shards": [
                self.shard(shard_id).snapshot() for shard_id in self.shard_ids()
            ],
            "totals": self.totals(),
            "durability": self.durability.snapshot(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The full :meth:`snapshot` rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        totals = self.totals()
        return (
            f"MetricsRegistry(shards={len(self.shard_ids())}, "
            f"processed={totals['tuples_processed']}, "
            f"detections={totals['detections']})"
        )
