"""Shard metrics: what the runtime measures about itself.

Every shard maintains one :class:`ShardMetrics` bundle — tuples enqueued /
processed / dropped, queue-depth high-water mark, detections, busy time —
and a :class:`MetricsRegistry` aggregates them for callers (the
``GestureSession`` exposes it as ``session.metrics``).  All counters are
lock-protected: producers increment from the feeding thread, workers from
their shard thread (or the result-listener thread of a process shard), and
readers may snapshot at any time.

Snapshots are plain dictionaries of plain numbers so they serialise
directly into the benchmark-results JSON (``BENCH_*.json``).
"""

from __future__ import annotations

import json
import logging
import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.observability.clock import perf_clock as _perf_clock
from repro.observability.histogram import LatencyHistogram

__all__ = [
    "ShardMetrics",
    "DurabilityMetrics",
    "MetricsRegistry",
    "build_info_exposition",
    "escape_label_value",
    "histogram_exposition",
    "prometheus_sample",
]

_logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------

def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and line feed are the only characters the
    format escapes — in that order, so a pre-existing ``\\`` never doubles
    an escape introduced here.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: Union[int, float]) -> str:
    """Render a sample value (integers without a trailing ``.0``).

    Non-finite floats use the exposition format's spellings — ``+Inf``,
    ``-Inf``, ``NaN`` — which differ from Python's ``str()`` output
    (``inf`` / ``nan`` would not parse on the scraper side).
    """
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
    return str(value)


def prometheus_sample(
    name: str,
    value: Union[int, float],
    labels: Optional[Mapping[str, object]] = None,
) -> str:
    """One exposition line: ``name{label="value",...} value``.

    Label *names* must already be legal (``[a-zA-Z_][a-zA-Z0-9_]*``);
    label values are escaped here.  Labels render sorted by name so the
    output is stable across runs.
    """
    if labels:
        rendered = ",".join(
            f'{key}="{escape_label_value(labels[key])}"' for key in sorted(labels)
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def build_info_exposition(labels: Optional[Mapping[str, object]] = None) -> List[str]:
    """The ``repro_build_info`` family: a constant ``1`` whose labels
    carry the package version and Python runtime — the standard way to
    join any scraped series with "what build produced this".
    """
    import platform

    from repro import __version__

    return [
        "# HELP repro_build_info Build and runtime identity (constant 1).",
        "# TYPE repro_build_info gauge",
        prometheus_sample(
            "repro_build_info",
            1,
            {
                **(labels or {}),
                "version": __version__,
                "python": platform.python_version(),
            },
        ),
    ]


#: Shard counter families: snapshot key -> (metric suffix, type, help).
_SHARD_FAMILIES: Tuple[Tuple[str, str, str, str], ...] = (
    ("tuples_enqueued", "repro_shard_tuples_enqueued_total", "counter", "Tuples accepted into the shard queue."),
    ("tuples_processed", "repro_shard_tuples_processed_total", "counter", "Tuples fully processed by the shard worker."),
    ("tuples_dropped", "repro_shard_tuples_dropped_total", "counter", "Tuples dropped by the queue's backpressure policy."),
    ("batches_processed", "repro_shard_batches_processed_total", "counter", "Work items the shard worker completed."),
    ("detections", "repro_shard_detections_total", "counter", "Detections emitted by the shard."),
    ("errors", "repro_shard_errors_total", "counter", "Errors recorded against the shard."),
    ("queue_depth_hwm", "repro_shard_queue_depth_hwm", "gauge", "High-water mark of the shard queue depth, in tuples."),
    ("busy_seconds", "repro_shard_busy_seconds_total", "counter", "Seconds the shard worker spent processing."),
)

#: Latency-histogram families: histogram key -> (metric name, help).
#: ``queue_wait`` and ``batch_processing`` are recorded per shard and
#: merged at render time; the rest are registry- or subsystem-level.
_HISTOGRAM_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("queue_wait", "repro_queue_wait_seconds", "Seconds tuples waited in shard queues before a worker dequeued them."),
    ("batch_processing", "repro_batch_processing_seconds", "Seconds a shard worker spent processing one batch."),
    ("ingest_to_detection", "repro_ingest_to_detection_seconds", "End-to-end seconds from runtime ingest to detection emit."),
    ("fsync", "repro_fsync_seconds", "Seconds spent in event-log fsync calls."),
)

#: Per-query matcher counter families: stats key -> (metric name, help).
#: Rendered with a ``query`` label from the registry's query-stats
#: provider (the engine / sharded runtime installs one).
_QUERY_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("tuples_processed", "repro_query_tuples_processed_total", "Tuples examined by the query's matcher."),
    ("predicate_evaluations", "repro_query_predicate_evaluations_total", "Predicate evaluations the matcher performed."),
    ("gate_rejections", "repro_query_gate_rejections_total", "Tuples rejected by first-step gating without touching run state."),
    ("runs_started", "repro_query_runs_started_total", "NFA runs created."),
    ("runs_advanced", "repro_query_runs_advanced_total", "NFA run step advancements."),
    ("runs_completed", "repro_query_runs_completed_total", "NFA runs that reached their final step."),
    ("runs_pruned", "repro_query_runs_pruned_total", "NFA runs discarded by TTL / within-window pruning."),
    ("runs_evicted", "repro_query_runs_evicted_total", "NFA runs reclaimed by idle-partition sweeps."),
    ("runs_suppressed", "repro_query_runs_suppressed_total", "Run creations suppressed by the dedup policy."),
    ("detections", "repro_query_detections_total", "Detections the query emitted."),
)


def histogram_exposition(
    metric: str,
    help_text: str,
    histogram: LatencyHistogram,
    labels: Optional[Mapping[str, object]] = None,
) -> List[str]:
    """One histogram family as exposition lines.

    Renders cumulative ``_bucket`` samples ending at ``le="+Inf"``, then
    ``_sum`` and ``_count`` — the three series a Prometheus histogram
    consists of.
    """
    base = dict(labels or {})
    lines = [
        f"# HELP {metric} {help_text}",
        f"# TYPE {metric} histogram",
    ]
    for le, cumulative in histogram.bucket_pairs():
        lines.append(
            prometheus_sample(f"{metric}_bucket", cumulative, {**base, "le": le})
        )
    lines.append(prometheus_sample(f"{metric}_sum", histogram.sum, base))
    lines.append(prometheus_sample(f"{metric}_count", histogram.count, base))
    return lines


#: Durability counter families: snapshot key -> (metric name, type, help).
_DURABILITY_FAMILIES: Tuple[Tuple[str, str, str, str], ...] = (
    ("entries_appended", "repro_durability_entries_appended_total", "counter", "Entries appended to the event log."),
    ("bytes_appended", "repro_durability_bytes_appended_total", "counter", "Bytes appended to the event log."),
    ("fsyncs", "repro_durability_fsyncs_total", "counter", "fsync calls issued by the event log."),
    ("segments_rotated", "repro_durability_segments_rotated_total", "counter", "Event-log segment rotations."),
    ("snapshots_taken", "repro_durability_snapshots_total", "counter", "State snapshots persisted."),
    ("snapshot_seconds", "repro_durability_snapshot_seconds_total", "counter", "Seconds spent capturing snapshots."),
    ("entries_replayed", "repro_durability_entries_replayed_total", "counter", "Log entries replayed during recovery."),
    ("recoveries", "repro_durability_recoveries_total", "counter", "Completed recoveries."),
)


class ShardMetrics:
    """Counters of one worker shard.  All methods are thread-safe."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._tuples_enqueued = 0
        self._tuples_processed = 0
        self._tuples_dropped = 0
        self._batches_processed = 0
        self._detections = 0
        self._queue_depth_hwm = 0
        self._busy_seconds = 0.0
        self._errors = 0
        # Latency histograms.  Single-writer by construction (the shard's
        # worker thread for a thread shard; the parent replaces whole
        # states collected from a process shard), so not lock-protected.
        self.queue_wait = LatencyHistogram()
        self.batch_processing = LatencyHistogram()

    # -- producer side ---------------------------------------------------------------

    def add_enqueued(self, count: int) -> None:
        with self._lock:
            self._tuples_enqueued += count

    def add_dropped(self, count: int) -> None:
        with self._lock:
            self._tuples_dropped += count

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self._queue_depth_hwm:
                self._queue_depth_hwm = depth

    # -- worker side -----------------------------------------------------------------

    def add_processed(self, count: int, busy_seconds: float = 0.0) -> None:
        with self._lock:
            self._tuples_processed += count
            self._batches_processed += 1
            self._busy_seconds += busy_seconds

    def add_detections(self, count: int = 1) -> None:
        with self._lock:
            self._detections += count

    def add_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_queue_wait(self, seconds: float) -> None:
        """One enqueue→dequeue latency sample (worker thread only)."""
        self.queue_wait.record(seconds)

    def record_batch_seconds(self, seconds: float) -> None:
        """One batch-processing duration sample (worker thread only)."""
        self.batch_processing.record(seconds)

    def histogram_states(self) -> Dict[str, Dict[str, object]]:
        """JSON-/pickle-safe states of this shard's histograms."""
        return {
            "queue_wait": self.queue_wait.to_state(),
            "batch_processing": self.batch_processing.to_state(),
        }

    def replace_histogram_states(self, states: Mapping[str, Mapping[str, object]]) -> None:
        """Adopt cumulative histogram states collected from a process shard.

        Child-side histograms are cumulative over the shard's lifetime, so
        the parent *replaces* its copies instead of merging (merging would
        double-count every earlier collection).
        """
        if "queue_wait" in states:
            self.queue_wait = LatencyHistogram.from_state(states["queue_wait"])
        if "batch_processing" in states:
            self.batch_processing = LatencyHistogram.from_state(states["batch_processing"])

    # -- readers ---------------------------------------------------------------------

    @property
    def tuples_enqueued(self) -> int:
        with self._lock:
            return self._tuples_enqueued

    @property
    def tuples_processed(self) -> int:
        with self._lock:
            return self._tuples_processed

    @property
    def tuples_dropped(self) -> int:
        with self._lock:
            return self._tuples_dropped

    @property
    def detections(self) -> int:
        with self._lock:
            return self._detections

    @property
    def queue_depth_hwm(self) -> int:
        with self._lock:
            return self._queue_depth_hwm

    @property
    def backlog(self) -> int:
        """Tuples enqueued but not yet processed (or dropped)."""
        with self._lock:
            return self._tuples_enqueued - self._tuples_processed - self._tuples_dropped

    @property
    def tuples_per_second(self) -> float:
        """Worker-side throughput over the shard's busy time only."""
        with self._lock:
            if self._busy_seconds <= 0:
                return 0.0
            return self._tuples_processed / self._busy_seconds

    def snapshot(self) -> Dict[str, float]:
        """A JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "shard_id": self.shard_id,
                "tuples_enqueued": self._tuples_enqueued,
                "tuples_processed": self._tuples_processed,
                "tuples_dropped": self._tuples_dropped,
                "batches_processed": self._batches_processed,
                "detections": self._detections,
                "queue_depth_hwm": self._queue_depth_hwm,
                "busy_seconds": round(self._busy_seconds, 6),
                "tuples_per_second": round(
                    self._tuples_processed / self._busy_seconds, 1
                )
                if self._busy_seconds > 0
                else 0.0,
                "errors": self._errors,
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`snapshot` counters rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ShardMetrics(shard={snap['shard_id']}, "
            f"processed={snap['tuples_processed']}, "
            f"dropped={snap['tuples_dropped']}, "
            f"detections={snap['detections']}, "
            f"queue_hwm={snap['queue_depth_hwm']})"
        )


class DurabilityMetrics:
    """Counters of the durability subsystem (event log + snapshots).

    Maintained by :class:`repro.persistence.DurabilityManager` and exposed
    through ``session.metrics`` like the shard counters, so one registry
    snapshot covers the whole stack.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries_appended = 0
        self._bytes_appended = 0
        self._fsyncs = 0
        self._segments_rotated = 0
        self._snapshots_taken = 0
        self._snapshot_seconds = 0.0
        self._entries_replayed = 0
        self._recoveries = 0
        #: fsync duration distribution; the event log is single-writer.
        self.fsync_latency = LatencyHistogram()

    def add_append(self, byte_count: int, entries: int = 1) -> None:
        with self._lock:
            self._entries_appended += entries
            self._bytes_appended += byte_count

    def add_fsync(self, count: int = 1, duration_seconds: Optional[float] = None) -> None:
        with self._lock:
            self._fsyncs += count
        if duration_seconds is not None:
            self.fsync_latency.record(duration_seconds)

    def add_rotation(self) -> None:
        with self._lock:
            self._segments_rotated += 1

    def add_snapshot(self, duration_seconds: float) -> None:
        with self._lock:
            self._snapshots_taken += 1
            self._snapshot_seconds += duration_seconds

    def add_replayed(self, entries: int) -> None:
        with self._lock:
            self._entries_replayed += entries

    def add_recovery(self) -> None:
        with self._lock:
            self._recoveries += 1

    @property
    def entries_appended(self) -> int:
        with self._lock:
            return self._entries_appended

    @property
    def bytes_appended(self) -> int:
        with self._lock:
            return self._bytes_appended

    @property
    def fsyncs(self) -> int:
        with self._lock:
            return self._fsyncs

    @property
    def segments_rotated(self) -> int:
        with self._lock:
            return self._segments_rotated

    @property
    def snapshots_taken(self) -> int:
        with self._lock:
            return self._snapshots_taken

    def snapshot(self) -> Dict[str, float]:
        """A JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "entries_appended": self._entries_appended,
                "bytes_appended": self._bytes_appended,
                "fsyncs": self._fsyncs,
                "segments_rotated": self._segments_rotated,
                "snapshots_taken": self._snapshots_taken,
                "snapshot_seconds": round(self._snapshot_seconds, 6),
                "entries_replayed": self._entries_replayed,
                "recoveries": self._recoveries,
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`snapshot` counters rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"DurabilityMetrics(entries={snap['entries_appended']}, "
            f"bytes={snap['bytes_appended']}, fsyncs={snap['fsyncs']}, "
            f"snapshots={snap['snapshots_taken']})"
        )


class MetricsRegistry:
    """Shard id → :class:`ShardMetrics`, plus aggregate views.

    Shard entries are created on first access, so sinks and callers can
    read the registry before the runtime has started.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shards: Dict[int, ShardMetrics] = {}
        #: Event-log / snapshot counters; populated by the durability
        #: subsystem, zeroes when durability is off.
        self.durability = DurabilityMetrics()
        #: Registry-level latency histograms (``ingest_to_detection``).
        self._histograms: Dict[str, LatencyHistogram] = {}
        #: Called before exposition so lazily-collected sources (process
        #: shards, matcher stats) can push fresh numbers in.
        self._refresh_hooks: List[Callable[[], None]] = []
        #: ``() -> {query_name: {stats_key: int}}`` for per-query series.
        self._query_stats_provider: Optional[
            Callable[[], Mapping[str, Mapping[str, int]]]
        ] = None

    def shard(self, shard_id: int) -> ShardMetrics:
        with self._lock:
            metrics = self._shards.get(shard_id)
            if metrics is None:
                metrics = self._shards[shard_id] = ShardMetrics(shard_id)
            return metrics

    def shard_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._shards)

    def histogram(self, key: str) -> LatencyHistogram:
        """The registry-level histogram for ``key`` (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram()
            return histogram

    def add_refresh_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before every exposition / collection pass."""
        self._refresh_hooks.append(hook)

    def set_query_stats_provider(
        self, provider: Optional[Callable[[], Mapping[str, Mapping[str, int]]]]
    ) -> None:
        """Install the source of per-query matcher counters for ``/metrics``."""
        self._query_stats_provider = provider

    def collect(self) -> None:
        """Pull from every lazily-collected source (process shards etc.).

        A hook that fails — a shard mid-shutdown, a closed queue — is
        logged and skipped rather than failing the scrape: exposition
        must keep working while the pipeline winds down.
        """
        for hook in self._refresh_hooks:
            try:
                hook()
            except Exception:
                _logger.warning("metrics refresh hook %r failed", hook, exc_info=True)

    def totals(self) -> Dict[str, float]:
        """Counters summed over every shard (gauges take the max, not the sum).

        The key set is derived from ``_SHARD_FAMILIES`` so a counter family
        added there can never silently drop out of totals or the
        ``BENCH_*.json`` snapshots.
        """
        snapshots = [self.shard(shard_id).snapshot() for shard_id in self.shard_ids()]
        totals: Dict[str, float] = {
            key: 0.0 if key == "busy_seconds" else 0
            for key, _metric, _kind, _help in _SHARD_FAMILIES
        }
        for snap in snapshots:
            for key, _metric, kind, _help in _SHARD_FAMILIES:
                if kind == "gauge":
                    totals[key] = max(totals[key], snap[key])
                else:
                    totals[key] += snap[key]
        totals["busy_seconds"] = round(totals["busy_seconds"], 6)
        return totals

    def merged_histograms(self) -> Dict[str, LatencyHistogram]:
        """Every histogram family, merged across its per-shard parts."""
        shards = [self.shard(shard_id) for shard_id in self.shard_ids()]
        merged = {
            "queue_wait": LatencyHistogram.merged(s.queue_wait for s in shards),
            "batch_processing": LatencyHistogram.merged(
                s.batch_processing for s in shards
            ),
            "fsync": LatencyHistogram.merged([self.durability.fsync_latency]),
        }
        with self._lock:
            extra = dict(self._histograms)
        for key, histogram in extra.items():
            merged[key] = LatencyHistogram.merged([histogram])
        return merged

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """Plain-number digests of every family, for ``BENCH_*.json``."""
        self.collect()
        return {
            key: histogram.summary()
            for key, histogram in sorted(self.merged_histograms().items())
        }

    def snapshot(self) -> Dict[str, object]:
        """Full JSON-serialisable view: per-shard, totals and durability."""
        return {
            "shards": [
                self.shard(shard_id).snapshot() for shard_id in self.shard_ids()
            ],
            "totals": self.totals(),
            "durability": self.durability.snapshot(),
            "histograms": {
                key: histogram.summary()
                for key, histogram in sorted(self.merged_histograms().items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The full :meth:`snapshot` rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self, labels: Optional[Mapping[str, object]] = None) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        Per-shard counters carry a ``shard`` label; durability counters are
        registry-wide.  ``labels`` (e.g. ``{"tenant": name}``) are merged
        into **every** sample, which is how a multi-tenant exporter renders
        many registries into one scrape body without name collisions.  Ends
        with a newline, so bodies concatenate cleanly.
        """
        scrape_started = _perf_clock()
        self.collect()
        base = dict(labels or {})
        lines: List[str] = list(build_info_exposition(base))
        shard_snapshots = [
            self.shard(shard_id).snapshot() for shard_id in self.shard_ids()
        ]
        for key, metric, kind, help_text in _SHARD_FAMILIES:
            if not shard_snapshots:
                break
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            for snap in shard_snapshots:
                lines.append(
                    prometheus_sample(
                        metric, snap[key], {**base, "shard": snap["shard_id"]}
                    )
                )
        durability = self.durability.snapshot()
        for key, metric, kind, help_text in _DURABILITY_FAMILIES:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(prometheus_sample(metric, durability[key], base))
        merged = self.merged_histograms()
        for key, metric, help_text in _HISTOGRAM_FAMILIES:
            histogram = merged.get(key)
            if histogram is None:
                histogram = LatencyHistogram()
            lines.extend(histogram_exposition(metric, help_text, histogram, base))
        provider = self._query_stats_provider
        if provider is not None:
            per_query = provider()
            for key, metric, help_text in _QUERY_FAMILIES:
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} counter")
                for query_name in sorted(per_query):
                    lines.append(
                        prometheus_sample(
                            metric,
                            per_query[query_name].get(key, 0),
                            {**base, "query": query_name},
                        )
                    )
        # Self-timed: how long this scrape's collect + render took.  The
        # collect() above dominates (it may broadcast to process shards),
        # which is exactly what an operator watching scrape cost cares about.
        lines.append(
            "# HELP repro_scrape_duration_seconds Seconds this registry "
            "spent collecting and rendering the exposition."
        )
        lines.append("# TYPE repro_scrape_duration_seconds gauge")
        lines.append(
            prometheus_sample(
                "repro_scrape_duration_seconds", _perf_clock() - scrape_started, base
            )
        )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        totals = self.totals()
        return (
            f"MetricsRegistry(shards={len(self.shard_ids())}, "
            f"processed={totals['tuples_processed']}, "
            f"detections={totals['detections']})"
        )
