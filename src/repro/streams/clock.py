"""Time sources for the streaming stack.

The paper's engine processes a 30 Hz sensor stream and gesture queries carry
``within N seconds`` constraints, so *time* is a first-class concept.  To keep
tests deterministic and benchmarks fast we never call ``time.time()``
directly; every component takes a :class:`Clock` and reads timestamps from
it.  Two implementations are provided:

* :class:`SimulatedClock` — a manually advanced clock.  The Kinect simulator
  advances it by 1/30 s per emitted frame, which makes replaying an hour of
  sensor data take milliseconds.
* :class:`WallClock` — thin wrapper around ``time.monotonic`` for live use.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Abstract time source measured in seconds as a float."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    def sleep(self, seconds: float) -> None:  # pragma: no cover - overridden
        """Block (or simulate blocking) for ``seconds`` seconds."""
        raise NotImplementedError


class SimulatedClock(Clock):
    """A deterministic, manually advanced clock.

    Parameters
    ----------
    start:
        Initial timestamp in seconds.  Defaults to ``0.0``.

    Examples
    --------
    >>> clock = SimulatedClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1 / 30)
    >>> round(clock.now(), 4)
    0.0333
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock start time must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``.

        Raises
        ------
        ValueError
            If ``seconds`` is negative — simulated time never runs backwards.
        """
        if seconds < 0:
            raise ValueError("cannot advance a clock by a negative duration")
        self._now += seconds

    def set(self, timestamp: float) -> None:
        """Jump to an absolute ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def sleep(self, seconds: float) -> None:
        """Simulated sleep simply advances the clock."""
        self.advance(seconds)

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.4f})"


class WallClock(Clock):
    """Real-time clock based on ``time.monotonic``.

    The origin is shifted so that the first reading after construction is
    close to zero, which keeps timestamps small and comparable with the
    simulated clock.
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return f"WallClock(t={self.now():.4f})"
