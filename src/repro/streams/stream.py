"""Named push-based streams with subscriber fan-out.

A :class:`Stream` is the unit of data exchange between the Kinect source,
the transformation view, and the CEP matcher.  Producers call
:meth:`Stream.push` with dictionaries (or any mapping); every subscriber
callback receives the tuple in registration order.  Streams are
single-threaded by design — the whole engine is an event loop driven by the
source — which keeps the semantics of the NFA matcher simple and
deterministic, exactly like the single-input match operator described in the
paper.

Two delivery modes exist.  :meth:`Stream.push` / :meth:`Stream.push_many`
interleave: each tuple is handed to every subscriber before the next tuple
is taken.  :meth:`Stream.push_batch` drains a whole chunk per subscriber —
subscribers registered with a ``batch_callback`` receive the chunk in a
single call (which is what lets an NFA matcher prune its run table once per
chunk), everyone else still gets the tuples one by one.  Per-subscriber
tuple order is identical in both modes; only the interleaving *across*
subscribers differs.

Delivery errors are *isolated per subscriber*: a callback raising mid-push
(or mid-batch) no longer silently starves the subscribers registered after
it — the failure is recorded in :attr:`Stream.delivery_errors` (bounded,
mirroring ``GestureSession.handler_errors``), delivery continues to the
remaining subscribers, and the **first** exception is re-raised once the
fan-out completes, so producers still observe the failure.  Within one
batch, a subscriber that raised receives none of that chunk's remaining
tuples (its state is suspect), but every other subscriber gets the full
chunk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Sequence

TupleCallback = Callable[[Mapping[str, Any]], None]
BatchCallback = Callable[[Sequence[Mapping[str, Any]]], None]

#: Cap on remembered delivery failures; long-running streams stay bounded.
_MAX_RECORDED_FAILURES = 256


@dataclass(frozen=True)
class DeliveryFailure:
    """One exception raised by a subscriber callback during fan-out."""

    stream: str
    subscriber: str
    error: BaseException


@dataclass
class StreamStats:
    """Counters maintained by a :class:`Stream`.

    Attributes
    ----------
    pushed:
        Number of tuples pushed into the stream.
    delivered:
        Number of tuple deliveries to subscribers (``pushed`` multiplied by
        the number of subscribers active at push time).
    dropped:
        Number of tuples pushed while the stream was paused.
    """

    pushed: int = 0
    delivered: int = 0
    dropped: int = 0

    def reset(self) -> None:
        self.pushed = 0
        self.delivered = 0
        self.dropped = 0

    def snapshot(self) -> Dict[str, int]:
        """A JSON-serialisable copy of the counters (snapshot format)."""
        return {
            "pushed": self.pushed,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }

    def restore(self, state: Mapping[str, int]) -> None:
        """Overwrite the counters from a :meth:`snapshot` copy."""
        self.pushed = int(state.get("pushed", 0))
        self.delivered = int(state.get("delivered", 0))
        self.dropped = int(state.get("dropped", 0))


@dataclass
class Subscription:
    """Handle returned by :meth:`Stream.subscribe`; used to unsubscribe.

    ``batch_callback``, when set, receives whole chunks on the stream's
    batch delivery path (:meth:`Stream.push_batch`); per-tuple pushes keep
    using ``callback``.
    """

    stream: "Stream"
    callback: TupleCallback
    name: str = ""
    active: bool = True
    batch_callback: Optional[BatchCallback] = None

    def cancel(self) -> None:
        """Detach this subscription from its stream."""
        if self.active:
            self.stream.unsubscribe(self)


class Stream:
    """A named, push-based stream of dictionary tuples.

    Parameters
    ----------
    name:
        Stream name used for registration with the engine and referenced by
        queries (e.g. ``"kinect"`` or ``"kinect_t"``).
    fields:
        Optional iterable of field names.  When given, pushed tuples are
        checked to contain at least these fields; extra fields are allowed
        (the Kinect stream carries many joints, queries only reference some).

    Examples
    --------
    >>> s = Stream("kinect", fields=["ts", "rhand_x"])
    >>> seen = []
    >>> sub = s.subscribe(seen.append)
    >>> s.push({"ts": 0.0, "rhand_x": 1.0})
    >>> len(seen)
    1
    """

    def __init__(self, name: str, fields: Optional[Iterable[str]] = None) -> None:
        if not name:
            raise ValueError("stream name must be non-empty")
        self.name = name
        self.fields: Optional[frozenset] = frozenset(fields) if fields else None
        self.stats = StreamStats()
        self.delivery_errors: Deque[DeliveryFailure] = deque(
            maxlen=_MAX_RECORDED_FAILURES
        )
        self._subscribers: List[Subscription] = []
        self._paused = False

    # -- subscription management -------------------------------------------------

    def subscribe(
        self,
        callback: TupleCallback,
        name: str = "",
        batch_callback: Optional[BatchCallback] = None,
    ) -> Subscription:
        """Register ``callback`` to receive every tuple pushed to the stream.

        ``batch_callback``, when given, is used instead of ``callback`` for
        whole chunks delivered through :meth:`push_batch`.
        """
        subscription = Subscription(
            stream=self, callback=callback, name=name, batch_callback=batch_callback
        )
        self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription previously returned by :meth:`subscribe`."""
        subscription.active = False
        self._subscribers = [s for s in self._subscribers if s is not subscription]

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- flow control --------------------------------------------------------------

    def pause(self) -> None:
        """Drop tuples pushed while paused (used during workflow transitions)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    @property
    def paused(self) -> bool:
        return self._paused

    # -- state capture / restore ---------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Snapshot the stream's durable facts (counters, pause flag).

        Subscriptions are *wiring*, not state — recovery rebuilds them by
        redeploying queries and views — so only the counters and the pause
        flag are captured.
        """
        return {
            "kind": "stream",
            "name": self.name,
            "paused": self._paused,
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore counters and pause flag from :meth:`capture_state`."""
        self._paused = bool(state.get("paused", False))
        self.stats.restore(state.get("stats", {}))

    # -- data path ------------------------------------------------------------------

    def push(self, item: Mapping[str, Any]) -> None:
        """Deliver ``item`` to all current subscribers.

        Raises
        ------
        repro.errors.SchemaError
            If the stream declares required fields and ``item`` is missing
            one of them.
        """
        if self.fields is not None:
            self._check_schema(item)
        if self._paused:
            self.stats.dropped += 1
            return
        self.stats.pushed += 1
        first_error: Optional[BaseException] = None
        # Copy the subscriber list so callbacks may (un)subscribe during delivery.
        for subscription in list(self._subscribers):
            if subscription.active:
                try:
                    subscription.callback(item)
                except Exception as error:  # noqa: BLE001 — isolate, deliver to the rest
                    self._record_failure(subscription, error)
                    if first_error is None:
                        first_error = error
                else:
                    self.stats.delivered += 1
        if first_error is not None:
            raise first_error

    def push_many(self, items: Iterable[Mapping[str, Any]]) -> int:
        """Push every item of ``items`` one at a time; return the number pushed."""
        count = 0
        for item in items:
            self.push(item)
            count += 1
        return count

    def push_batch(self, items: Sequence[Mapping[str, Any]]) -> int:
        """Deliver ``items`` as one chunk per subscriber; return the number pushed.

        Subscribers registered with a ``batch_callback`` receive the whole
        chunk in a single call; others receive the items one by one.  Unlike
        :meth:`push_many` the chunk is drained per subscriber, so callbacks
        of different subscribers are not interleaved (see module docstring);
        a subscriber feeding a derived stream therefore emits its whole
        transformed chunk before the next subscriber sees any tuple.
        """
        items = list(items)
        if self.fields is not None:
            for item in items:
                self._check_schema(item)
        if self._paused:
            self.stats.dropped += len(items)
            return 0
        if not items:
            return 0
        self.stats.pushed += len(items)
        first_error: Optional[BaseException] = None
        # Copy the subscriber list so callbacks may (un)subscribe during delivery.
        for subscription in list(self._subscribers):
            if not subscription.active:
                continue
            try:
                if subscription.batch_callback is not None:
                    subscription.batch_callback(items)
                    self.stats.delivered += len(items)
                else:
                    for item in items:
                        if not subscription.active:
                            break
                        subscription.callback(item)
                        self.stats.delivered += 1
            except Exception as error:  # noqa: BLE001 — isolate, deliver to the rest
                self._record_failure(subscription, error)
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return len(items)

    def _record_failure(self, subscription: Subscription, error: BaseException) -> None:
        self.delivery_errors.append(
            DeliveryFailure(
                stream=self.name,
                subscriber=subscription.name or repr(subscription.callback),
                error=error,
            )
        )

    def _check_schema(self, item: Mapping[str, Any]) -> None:
        missing = self.fields.difference(item.keys())
        if missing:
            from repro.errors import SchemaError

            raise SchemaError(
                f"tuple pushed to stream '{self.name}' is missing fields: "
                f"{sorted(missing)}"
            )

    def __repr__(self) -> str:
        return (
            f"Stream(name={self.name!r}, subscribers={self.subscriber_count}, "
            f"pushed={self.stats.pushed})"
        )


class StreamRegistry:
    """A name → :class:`Stream` mapping with helpful errors.

    The CEP engine owns one registry; views and queries resolve their input
    streams through it.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, Stream] = {}

    def register(self, stream: Stream) -> Stream:
        if stream.name in self._streams:
            from repro.errors import QueryRegistrationError

            raise QueryRegistrationError(
                f"a stream named '{stream.name}' is already registered"
            )
        self._streams[stream.name] = stream
        return stream

    def create(self, name: str, fields: Optional[Iterable[str]] = None) -> Stream:
        """Create and register a new stream in one step."""
        return self.register(Stream(name, fields=fields))

    def get(self, name: str) -> Stream:
        try:
            return self._streams[name]
        except KeyError:
            from repro.errors import UnknownStreamError

            raise UnknownStreamError(
                f"unknown stream '{name}'; registered streams: "
                f"{sorted(self._streams)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> List[str]:
        return sorted(self._streams)

    def remove(self, name: str) -> None:
        self._streams.pop(name, None)

    def __len__(self) -> int:
        return len(self._streams)
