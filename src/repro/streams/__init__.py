"""Push-based data stream infrastructure.

This package provides the minimal streaming substrate on which both the
Kinect simulator (``repro.kinect``) and the CEP engine (``repro.cep``) are
built:

* :class:`~repro.streams.clock.SimulatedClock` / ``WallClock`` — time sources
  so the whole stack can run deterministically in tests and faster than
  real-time in benchmarks.
* :class:`~repro.streams.stream.Stream` — a named, typed, push-based stream
  with subscriber fan-out.
* :class:`~repro.streams.source.ReplaySource` and friends — sources that feed
  tuples into a stream from recordings, generators or callables, optionally
  rate-controlled.
"""

from repro.streams.clock import Clock, SimulatedClock, WallClock
from repro.streams.stream import (
    DeliveryFailure,
    Stream,
    StreamRegistry,
    StreamStats,
    Subscription,
)
from repro.streams.source import (
    CallableSource,
    GeneratorSource,
    RateLimiter,
    ReplaySource,
    Source,
)

__all__ = [
    "Clock",
    "DeliveryFailure",
    "SimulatedClock",
    "WallClock",
    "Stream",
    "StreamRegistry",
    "StreamStats",
    "Subscription",
    "Source",
    "ReplaySource",
    "GeneratorSource",
    "CallableSource",
    "RateLimiter",
]
