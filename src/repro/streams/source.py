"""Sources that feed tuples into a :class:`~repro.streams.stream.Stream`.

The Kinect camera delivers measurements at 30 Hz.  In this reproduction the
simulator produces the same tuples, and a :class:`Source` drives them into a
stream either as fast as possible (simulated clock) or rate-limited to the
sensor frequency (wall clock), so the rest of the stack cannot tell the
difference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.streams.clock import Clock, SimulatedClock
from repro.streams.stream import Stream


class Source(ABC):
    """A producer of tuples for a target stream."""

    def __init__(self, stream: Stream, clock: Optional[Clock] = None) -> None:
        self.stream = stream
        self.clock = clock or SimulatedClock()
        self.emitted = 0

    @abstractmethod
    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        """Yield the tuples this source produces, in order."""

    def run(self, limit: Optional[int] = None) -> int:
        """Push tuples into the target stream.

        Parameters
        ----------
        limit:
            Optional maximum number of tuples to push; ``None`` drains the
            source completely.

        Returns
        -------
        int
            The number of tuples pushed during this call.
        """
        pushed = 0
        for item in self:
            if limit is not None and pushed >= limit:
                break
            self.stream.push(item)
            pushed += 1
            self.emitted += 1
        return pushed


class ReplaySource(Source):
    """Replays a pre-recorded sequence of tuples.

    Each tuple may carry a timestamp field; if ``advance_clock`` is set and
    the clock is a :class:`SimulatedClock`, the clock is advanced to the
    tuple timestamp before pushing, so time-based CEP constraints behave as
    they would have live.

    Parameters
    ----------
    stream:
        Target stream.
    records:
        Sequence of tuples to replay (not consumed; can be replayed again).
    timestamp_field:
        Field holding the tuple timestamp in seconds.
    advance_clock:
        Whether to advance a simulated clock to each tuple's timestamp.
    """

    def __init__(
        self,
        stream: Stream,
        records: Sequence[Mapping[str, Any]],
        clock: Optional[Clock] = None,
        timestamp_field: str = "ts",
        advance_clock: bool = True,
    ) -> None:
        super().__init__(stream, clock)
        self.records = list(records)
        self.timestamp_field = timestamp_field
        self.advance_clock = advance_clock

    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        for record in self.records:
            if (
                self.advance_clock
                and isinstance(self.clock, SimulatedClock)
                and self.timestamp_field in record
            ):
                target = float(record[self.timestamp_field])
                if target > self.clock.now():
                    self.clock.set(target)
            yield record

    def __len__(self) -> int:
        return len(self.records)


class GeneratorSource(Source):
    """Wraps any iterable of tuples as a source."""

    def __init__(
        self,
        stream: Stream,
        iterable: Iterable[Mapping[str, Any]],
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(stream, clock)
        self._iterable = iterable

    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        return iter(self._iterable)


class CallableSource(Source):
    """Calls ``producer(clock.now())`` repeatedly until it returns ``None``.

    Useful for closed-loop simulations where what is produced next depends on
    the current simulation time.
    """

    def __init__(
        self,
        stream: Stream,
        producer: Callable[[float], Optional[Mapping[str, Any]]],
        clock: Optional[Clock] = None,
        max_items: int = 1_000_000,
    ) -> None:
        super().__init__(stream, clock)
        self.producer = producer
        self.max_items = max_items

    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        for _ in range(self.max_items):
            item = self.producer(self.clock.now())
            if item is None:
                return
            yield item


class RateLimiter:
    """Paces tuple delivery to a fixed frequency.

    With a :class:`SimulatedClock` the limiter advances the clock by the
    frame period instead of sleeping, which keeps simulated runs fast while
    still producing correct timestamps; with a wall clock it sleeps.

    Parameters
    ----------
    clock:
        The time source to pace against.
    frequency_hz:
        Target delivery rate; the Kinect default is 30 Hz.
    """

    def __init__(self, clock: Clock, frequency_hz: float = 30.0) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.clock = clock
        self.period = 1.0 / frequency_hz
        self._last: Optional[float] = None

    def wait(self) -> float:
        """Advance/sleep until the next frame boundary and return its time."""
        now = self.clock.now()
        if self._last is None:
            self._last = now
            return now
        target = self._last + self.period
        if isinstance(self.clock, SimulatedClock):
            if target > now:
                self.clock.set(target)
        else:  # pragma: no cover - wall-clock path exercised manually
            remaining = target - now
            if remaining > 0:
                self.clock.sleep(remaining)
        self._last = max(target, self.clock.now())
        return self._last

    def reset(self) -> None:
        self._last = None
