"""Span-based tracing with a serialisable context and Chrome-trace export.

A :class:`TraceContext` is three primitives — trace id, span id, sampled
flag — so it pickles across the ``ProcessShard`` boundary and serialises
into protocol frames unchanged.  The :class:`Tracer` makes the *head*
sampling decision once, when a request enters the system (the gateway
frame or ``session.feed``): unsampled requests carry ``None`` instead of
a context, so the per-tuple hot path pays exactly one ``is None`` check.
Sampled spans land in a bounded ring buffer (old spans are evicted, the
pipeline is never blocked by its own telemetry).

Span timestamps come from the *system-wide monotonic clock*
(:func:`repro.observability.clock.monotonic_time`), which on Linux shares
an epoch across processes of the same boot — that is what lets a span
recorded inside a process shard nest correctly under its parent span
recorded in the gateway process.

Export is the Chrome trace-event JSON format (``{"traceEvents": [...]}``
with ``ph: "X"`` complete events), loadable in Perfetto or
``chrome://tracing``; ``python -m repro.observability summarize`` renders
the same file as a terminal table.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.observability.clock import monotonic_time

__all__ = [
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "current_context",
    "use_context",
]


@dataclass(frozen=True)
class TraceContext:
    """The serialisable part of a trace: what travels with the data."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self, span_id: str) -> "TraceContext":
        """The context a sub-span propagates: same trace, new parent."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id, sampled=self.sampled)

    def to_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceContext":
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            raise ValueError("trace context requires string trace_id and span_id")
        return cls(trace_id=trace_id, span_id=span_id, sampled=bool(payload.get("sampled", True)))


def _new_id() -> str:
    return os.urandom(8).hex()


# -- ambient context (thread-local) ----------------------------------------------------
#
# The worker thread sets the context around ``engine.push_many`` so the
# engine's per-query handlers can attach matcher spans without every
# signature in between growing a ``trace`` parameter.

_ambient = threading.local()


def current_context() -> Optional[TraceContext]:
    """The context installed on this thread, or ``None``."""
    return getattr(_ambient, "context", None)


@contextmanager
def use_context(context: Optional[TraceContext]) -> Iterator[None]:
    """Install ``context`` as this thread's ambient trace context."""
    previous = getattr(_ambient, "context", None)
    _ambient.context = context
    try:
        yield
    finally:
        _ambient.context = previous


class SpanHandle:
    """An open span: ``close()`` (or the context manager exit) records it."""

    __slots__ = (
        "tracer", "name", "category", "context", "args", "_parent_id",
        "_start", "_closed",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        context: TraceContext,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self._parent_id = context.span_id
        #: The context *of this span* — pass to children for nesting.
        self.context = context.child(_new_id())
        self.args = args
        self._start = monotonic_time()
        self._closed = False

    def close(self, **extra: Any) -> None:
        if self._closed:
            return
        self._closed = True
        args = dict(self.args or {})
        args.update(extra)
        self.tracer.record(
            name=self.name,
            category=self.category,
            context=self.context,
            start=self._start,
            end=monotonic_time(),
            parent_id=self._parent_id,
            args=args,
        )

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class Tracer:
    """Head-sampled span recorder with a bounded ring buffer.

    ``sample_rate`` is the fraction of entry points that start a trace:
    0.0 (the default) disables tracing entirely, 1.0 traces everything,
    0.01 traces every 100th request.  The decision is deterministic
    (every ``round(1/rate)``-th call to :meth:`sample`), so benchmark runs
    are reproducible.
    """

    def __init__(self, sample_rate: float = 0.0, buffer_size: int = 4096) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        if buffer_size < 1:
            raise ValueError("buffer_size must be positive")
        self.sample_rate = sample_rate
        self.buffer_size = buffer_size
        self._interval = 0 if sample_rate <= 0.0 else max(1, round(1.0 / sample_rate))
        self._calls = 0
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=buffer_size)
        self._pid = os.getpid()

    # -- head sampling -----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether this tracer can ever sample (rate > 0)."""
        return self._interval > 0

    def sample(self, name: str = "request") -> Optional[TraceContext]:
        """The head decision: a fresh root context, or ``None`` (common case)."""
        if self._interval == 0:
            return None
        with self._lock:
            self._calls += 1
            if self._calls % self._interval:
                return None
        return TraceContext(trace_id=f"{name}-{_new_id()}", span_id=_new_id())

    def adopt(self, payload: Optional[Mapping[str, object]]) -> Optional[TraceContext]:
        """Continue a caller-supplied context (e.g. from a protocol frame)."""
        if not self.active or not payload:
            return None
        return TraceContext.from_dict(payload)

    # -- recording ---------------------------------------------------------------------

    def span(
        self,
        name: str,
        category: str,
        context: Optional[TraceContext],
        **args: Any,
    ) -> Optional[SpanHandle]:
        """Open a span under ``context``; ``None`` context means no-op."""
        if context is None:
            return None
        return SpanHandle(self, name, category, context, args or None)

    def record_between(
        self,
        name: str,
        category: str,
        context: TraceContext,
        start: float,
        end: float,
        **args: Any,
    ) -> TraceContext:
        """Record a span from two pre-taken monotonic readings.

        Used where the interval straddles threads or processes (queue
        wait: stamped at enqueue, observed at dequeue).  Returns the
        recorded span's context so follow-up spans can nest under it.
        """
        child = context.child(_new_id())
        self.record(
            name,
            category,
            child,
            start,
            end,
            parent_id=context.span_id,
            args=args or None,
        )
        return child

    def record(
        self,
        name: str,
        category: str,
        context: TraceContext,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Append one completed span (monotonic start/end, seconds)."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": round(start * 1e6, 3),
            "dur": round(max(0.0, end - start) * 1e6, 3),
            "pid": self._pid,
            "tid": threading.get_ident() % 2**31,
            "args": {
                "trace_id": context.trace_id,
                "span_id": context.span_id,
                **({"parent_id": parent_id} if parent_id else {}),
                **(args or {}),
            },
        }
        self._spans.append(event)

    def absorb(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Merge spans exported by another tracer (e.g. a process shard).

        Events are re-ordered by timestamp against the local buffer so an
        export after absorption reads chronologically.
        """
        merged = sorted(
            list(self._spans) + [dict(event) for event in events],
            key=lambda event: event.get("ts", 0.0),
        )
        with self._lock:
            self._spans = deque(merged[-self.buffer_size:], maxlen=self.buffer_size)

    # -- export ------------------------------------------------------------------------

    def spans(self) -> List[Dict[str, Any]]:
        """A copy of the buffered spans (oldest first)."""
        return [dict(event) for event in self._spans]

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return the buffered spans.

        Collection protocol of the process shards: the child drains on
        every ``telemetry`` control, so repeated collections never hand
        the parent the same span twice.
        """
        drained = []
        while True:
            try:
                drained.append(self._spans.popleft())
            except IndexError:
                return drained

    def export(self) -> Dict[str, Any]:
        """The buffer as a Chrome trace-event document."""
        return {"traceEvents": self.spans(), "displayTimeUnit": "ms"}

    def clear(self) -> None:
        self._spans.clear()

    def __repr__(self) -> str:
        return (
            f"Tracer(rate={self.sample_rate}, buffered={len(self._spans)}/"
            f"{self.buffer_size})"
        )
