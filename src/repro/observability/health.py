"""Liveness watchdog: progress heartbeats, stall and saturation detection.

The counters say what the pipeline *has done*; the watchdog answers the
harder operational question — is it *still making progress*?  Three
failure shapes dominate long-running streaming deployments and all three
are invisible to cumulative counters:

* a **stalled worker** — a wedged UDF, a deadlocked matcher — leaves the
  backlog positive while ``tuples_processed`` freezes;
* a **saturated queue** sits at capacity for a sustained window, meaning
  producers are blocking (or dropping) and latency is compounding;
* a **stalled fsync** (a dying disk, an NFS hiccup) lets the durability
  log accept appends whose ``fsyncs`` counter stops advancing.

:class:`HealthWatchdog` polls cheap parent-visible liveness snapshots on
a named background thread, tracks per-shard progress heartbeats, and
condenses what it sees into a :class:`HealthReport` — ``ok`` /
``degraded`` / ``unhealthy`` plus machine-readable :class:`HealthReason`
rows naming the misbehaving shard.  The gateway maps the report straight
onto ``/healthz`` (503 when unhealthy), and the admission controller and
the future autoscaler (ROADMAP item 3) read the same reasons.

**No false positives on idle:** a stall requires *backlog with no
progress*.  A paused replay (``ReplayController.pause()``) stops feeding,
the queues drain to zero backlog, and an idle pipeline reports ``ok`` —
quiet is not stuck.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability.clock import monotonic_time

__all__ = ["WatchdogConfig", "HealthReason", "HealthReport", "HealthWatchdog"]

_logger = logging.getLogger("repro.observability.health")

#: Ranking used to pick the overall status from individual reasons.
_STATUS_RANK = {"ok": 0, "degraded": 1, "unhealthy": 2}


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the watchdog.  Frozen and picklable like the other
    observability configs."""

    #: Seconds between background checks.
    interval_seconds: float = 0.5
    #: A shard with backlog whose processed count has not advanced for
    #: this long is stalled (degraded; 3x this is unhealthy).
    stall_after_seconds: float = 5.0
    #: Queue occupancy (depth / capacity) at or above this fraction…
    saturation_ratio: float = 0.9
    #: …sustained for this long marks the queue saturated.
    saturation_after_seconds: float = 5.0
    #: Appends advancing while fsyncs do not for this long is an fsync stall.
    fsync_stall_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.stall_after_seconds <= 0 or self.fsync_stall_seconds <= 0:
            raise ValueError("stall windows must be positive")
        if not 0.0 < self.saturation_ratio <= 1.0:
            raise ValueError("saturation_ratio must be in (0, 1]")
        if self.saturation_after_seconds <= 0:
            raise ValueError("saturation_after_seconds must be positive")


@dataclass(frozen=True)
class HealthReason:
    """One machine-readable cause for a non-``ok`` report."""

    code: str  # "shard-stalled" | "shard-dead" | "queue-saturated" | "fsync-stalled" | ...
    severity: str  # "degraded" | "unhealthy"
    subject: str  # e.g. "shard-0", "durability"
    detail: str
    data: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class HealthReport:
    """The watchdog's verdict at one instant."""

    status: str  # "ok" | "degraded" | "unhealthy"
    reasons: Tuple[HealthReason, ...]
    checked_at: float
    checks: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "reasons": [reason.to_dict() for reason in self.reasons],
            "checked_at": round(self.checked_at, 6),
            "checks": self.checks,
        }


class HealthWatchdog:
    """Tracks progress heartbeats from liveness snapshots; reports health.

    Sources are callables returning rows of parent-visible state:

    * a *liveness* source yields one mapping per shard with at least
      ``shard_id``, ``alive``, ``backlog``, ``tuples_processed`` and
      (optionally) ``queue_depth`` / ``queue_capacity`` — the shape
      ``ShardedRuntime.shard_liveness()`` produces;
    * a *durability* source yields one mapping with append and ``fsyncs``
      counters — ``DurabilityMetrics.snapshot()`` (``entries_appended``)
      or any hand-rolled ``{"appended": ..., "fsyncs": ...}`` mapping;
    * a *probe* yields ready-made :class:`HealthReason` rows for
      conditions only the caller can see (e.g. a gateway counting slow
      detection consumers).

    :meth:`check` is public and takes an explicit ``now`` so tests drive
    the clock; :meth:`start` runs it on a named daemon thread.
    """

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig()
        self._liveness_sources: List[Callable[[], Iterable[Mapping[str, object]]]] = []
        self._durability_sources: List[Tuple[str, Callable[[], Mapping[str, float]]]] = []
        self._probes: List[Callable[[], Iterable[HealthReason]]] = []
        self._lock = threading.Lock()
        # Heartbeats: subject -> (last value that counted as progress,
        # monotonic time that value was first seen).
        self._progress: Dict[str, Tuple[float, float]] = {}
        self._saturated_since: Dict[str, float] = {}
        self._fsync_marks: Dict[str, Tuple[float, float, float]] = {}  # appended, fsyncs, since
        self._report = HealthReport(status="ok", reasons=(), checked_at=monotonic_time())
        self._checks = 0
        self.source_errors = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- sources -------------------------------------------------------------------------

    def add_liveness_source(
        self, reader: Callable[[], Iterable[Mapping[str, object]]]
    ) -> None:
        with self._lock:
            self._liveness_sources.append(reader)

    def add_durability_source(
        self, reader: Callable[[], Mapping[str, float]], subject: str = "durability"
    ) -> None:
        with self._lock:
            self._durability_sources.append((subject, reader))

    def add_probe(self, probe: Callable[[], Iterable[HealthReason]]) -> None:
        with self._lock:
            self._probes.append(probe)

    # -- the check -----------------------------------------------------------------------

    def check(self, now: Optional[float] = None) -> HealthReport:
        """Run every source once and publish a fresh report."""
        stamp = monotonic_time() if now is None else now
        reasons: List[HealthReason] = []
        with self._lock:
            liveness = list(self._liveness_sources)
            durability = list(self._durability_sources)
            probes = list(self._probes)

        for reader in liveness:
            try:
                rows = list(reader())
            except Exception:  # noqa: BLE001 — a winding-down runtime must not kill the beat
                self.source_errors += 1
                continue
            for row in rows:
                reasons.extend(self._check_shard(row, stamp))

        for subject, reader in durability:
            try:
                counters = dict(reader())
            except Exception:  # noqa: BLE001
                self.source_errors += 1
                continue
            reason = self._check_fsync(subject, counters, stamp)
            if reason is not None:
                reasons.append(reason)

        for probe in probes:
            try:
                reasons.extend(probe())
            except Exception:  # noqa: BLE001
                self.source_errors += 1

        status = "ok"
        for reason in reasons:
            if _STATUS_RANK.get(reason.severity, 1) > _STATUS_RANK[status]:
                status = reason.severity
        with self._lock:
            self._checks += 1
            previous = self._report.status
            self._report = HealthReport(
                status=status,
                reasons=tuple(reasons),
                checked_at=stamp,
                checks=self._checks,
            )
        if status != previous:
            _logger.warning(
                "health transition %s -> %s: %s",
                previous,
                status,
                "; ".join(f"{r.code}({r.subject})" for r in reasons) or "recovered",
                extra={"data": self._report.to_dict()},
            )
        return self._report

    def _check_shard(
        self, row: Mapping[str, object], stamp: float
    ) -> List[HealthReason]:
        config = self.config
        shard_id = row.get("shard_id", "?")
        subject = f"shard-{shard_id}"
        alive = bool(row.get("alive", True))
        backlog = float(row.get("backlog", 0) or 0)
        processed = float(row.get("tuples_processed", 0) or 0)
        reasons: List[HealthReason] = []

        if not alive and backlog > 0:
            reasons.append(
                HealthReason(
                    code="shard-dead",
                    severity="unhealthy",
                    subject=subject,
                    detail=f"{subject} worker is not alive with {backlog:.0f} tuples of backlog",
                    data={"backlog": backlog},
                )
            )
            return reasons  # a dead shard is not additionally "stalled"

        # Progress heartbeat: the mark moves whenever processed advances
        # OR the backlog clears (idle is progress — see module docstring).
        mark = self._progress.get(subject)
        if mark is None or processed > mark[0] or backlog <= 0:
            self._progress[subject] = (processed, stamp)
        else:
            stuck_for = stamp - mark[1]
            if stuck_for >= config.stall_after_seconds:
                severity = (
                    "unhealthy" if stuck_for >= 3 * config.stall_after_seconds else "degraded"
                )
                reasons.append(
                    HealthReason(
                        code="shard-stalled",
                        severity=severity,
                        subject=subject,
                        detail=(
                            f"{subject} has {backlog:.0f} tuples of backlog but no "
                            f"progress for {stuck_for:.1f}s"
                        ),
                        data={"backlog": backlog, "stuck_seconds": round(stuck_for, 3)},
                    )
                )

        depth = row.get("queue_depth")
        capacity = row.get("queue_capacity")
        if depth is not None and capacity:
            occupancy = float(depth) / float(capacity)  # type: ignore[arg-type]
            if occupancy >= config.saturation_ratio:
                since = self._saturated_since.setdefault(subject, stamp)
                saturated_for = stamp - since
                if saturated_for >= config.saturation_after_seconds:
                    reasons.append(
                        HealthReason(
                            code="queue-saturated",
                            severity="degraded",
                            subject=subject,
                            detail=(
                                f"{subject} queue at {occupancy:.0%} of capacity "
                                f"for {saturated_for:.1f}s"
                            ),
                            data={
                                "occupancy": round(occupancy, 4),
                                "saturated_seconds": round(saturated_for, 3),
                            },
                        )
                    )
            else:
                self._saturated_since.pop(subject, None)
        return reasons

    def _check_fsync(
        self, subject: str, counters: Mapping[str, float], stamp: float
    ) -> Optional[HealthReason]:
        # DurabilityMetrics.snapshot() spells it "entries_appended"; plain
        # "appended" is accepted for hand-rolled sources.
        appended = float(
            counters.get("entries_appended", counters.get("appended", 0)) or 0
        )
        fsyncs = float(counters.get("fsyncs", 0) or 0)
        mark = self._fsync_marks.get(subject)
        # The mark moves whenever fsyncs advance or appends stop arriving.
        if mark is None or fsyncs > mark[1] or appended <= mark[0]:
            self._fsync_marks[subject] = (appended, fsyncs, stamp)
            return None
        stuck_for = stamp - mark[2]
        if stuck_for < self.config.fsync_stall_seconds:
            return None
        return HealthReason(
            code="fsync-stalled",
            severity="degraded",
            subject=subject,
            detail=(
                f"{subject} appended {appended - mark[0]:.0f} records with no fsync "
                f"for {stuck_for:.1f}s"
            ),
            data={"stuck_seconds": round(stuck_for, 3), "appends_pending": appended - mark[0]},
        )

    # -- readers -------------------------------------------------------------------------

    def report(self) -> HealthReport:
        """The latest published report (never blocks on sources)."""
        with self._lock:
            return self._report

    @property
    def status(self) -> str:
        return self.report().status

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "HealthWatchdog":
        """Start the background beat (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-health-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_seconds):
            self.check()

    def __repr__(self) -> str:
        report = self.report()
        return (
            f"HealthWatchdog(status={report.status!r}, reasons={len(report.reasons)}, "
            f"checks={report.checks}, running={self.running})"
        )
