"""Declarative SLOs evaluated by multi-window burn-rate rules.

An :class:`SLO` states an objective over the sampled series of a
:class:`~repro.observability.timeseries.MetricsSampler` — e.g. *"99 % of
sampler readings see p99 ingest→detection under 50 ms"* or *"99.9 % of
enqueued tuples are not dropped"*.  The :class:`SLOEvaluator` turns the
objective's error budget into **burn rates** and applies the classic
multi-window rule: an alert fires only when the budget is burning too
fast over *both* a long and a short window, so a single slow sample
cannot page but a sustained regression fires within the short window.

Burn rate = observed error rate ÷ budget (``1 - objective``).  A burn
rate of 1.0 spends exactly the budget; the default rules fire at 14.4×
(page — the budget would be gone in under 2 % of the period) and 6×
(warn), following the shape popularised by the SRE workbook, scaled to
this system's second-scale windows.

Fired alerts are typed :class:`Alert` events and go three ways at once:
a structured record on the ``repro.observability.alerts`` logger (JSON
when :func:`~repro.observability.jsonlog.configure_json_logging` is on),
a bounded in-memory log the session exposes as ``session.alerts``, and —
through that — the gateway's ``/alerts`` endpoint.  While a condition
persists the alert stays *active* and is not re-fired; it re-arms once
the burn drops below threshold.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from datetime import datetime, timezone
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability.clock import monotonic_time, wall_clock

__all__ = ["SLO", "BurnRateRule", "Alert", "SLOEvaluator", "ALERTS_LOGGER", "DEFAULT_RULES"]

#: Logger alerts are reported on (JSON-formatted when configured).
ALERTS_LOGGER = "repro.observability.alerts"

_logger = logging.getLogger(ALERTS_LOGGER)


@dataclass(frozen=True)
class BurnRateRule:
    """One (long window, short window, threshold) burn-rate condition."""

    long_window_seconds: float
    short_window_seconds: float
    burn_threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window_seconds <= 0 or self.long_window_seconds <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_window_seconds > self.long_window_seconds:
            raise ValueError("the short window must not exceed the long window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if self.severity not in ("page", "warn"):
            raise ValueError(f"severity must be 'page' or 'warn', not {self.severity!r}")


#: The default multi-window pair, scaled to second-scale streaming windows.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(60.0, 5.0, 14.4, "page"),
    BurnRateRule(300.0, 30.0, 6.0, "warn"),
)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over sampled series.

    Two kinds:

    * ``kind="threshold"`` — ``series`` holds a gauge (a latency
      percentile, a queue depth); a sampler reading is *bad* when it
      exceeds ``threshold``.  The error rate over a window is the
      fraction of readings that were bad.
    * ``kind="ratio"`` — ``series`` and ``denominator_series`` hold
      counters (dropped / enqueued); the error rate over a window is
      ``delta(series) / delta(denominator_series)``.

    ``objective`` is the good fraction promised (0.99 → 1 % budget).
    Factories :meth:`latency` and :meth:`ratio` spell the common cases.
    """

    name: str
    series: str
    objective: float = 0.99
    kind: str = "threshold"
    threshold: float = 0.0
    denominator_series: Optional[str] = None
    rules: Tuple[BurnRateRule, ...] = DEFAULT_RULES
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SLO needs a name")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective!r}")
        if self.kind not in ("threshold", "ratio"):
            raise ValueError(f"kind must be 'threshold' or 'ratio', not {self.kind!r}")
        if self.kind == "ratio" and not self.denominator_series:
            raise ValueError("a ratio SLO needs a denominator_series")
        if not self.rules:
            raise ValueError("an SLO needs at least one burn-rate rule")

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the objective allows."""
        return 1.0 - self.objective

    @classmethod
    def latency(
        cls,
        name: str,
        series: str,
        threshold_seconds: float,
        objective: float = 0.99,
        rules: Tuple[BurnRateRule, ...] = DEFAULT_RULES,
    ) -> "SLO":
        """A latency objective over a sampled percentile gauge.

        Example: ``SLO.latency("ingest_p99", "hist.ingest_to_detection.p99_seconds",
        0.050)`` — p99 ingest→detection under 50 ms.
        """
        return cls(
            name=name,
            series=series,
            objective=objective,
            kind="threshold",
            threshold=threshold_seconds,
            rules=rules,
            description=f"{series} <= {threshold_seconds}s",
        )

    @classmethod
    def ratio(
        cls,
        name: str,
        bad_series: str,
        total_series: str,
        objective: float = 0.999,
        rules: Tuple[BurnRateRule, ...] = DEFAULT_RULES,
    ) -> "SLO":
        """A bad/total counter-ratio objective (e.g. drop rate).

        Example: ``SLO.ratio("drops", "shard.tuples_dropped",
        "shard.tuples_enqueued")`` — at most 0.1 % of tuples dropped.
        """
        return cls(
            name=name,
            series=bad_series,
            objective=objective,
            kind="ratio",
            denominator_series=total_series,
            rules=rules,
            description=f"{bad_series} / {total_series}",
        )

    # -- evaluation ----------------------------------------------------------------------

    def error_rate(self, sampler, window_seconds: float, now: Optional[float] = None) -> float:
        """The observed bad fraction over the window (0.0 with no data)."""
        if self.kind == "ratio":
            numerator = sampler.get(self.series)
            denominator = sampler.get(self.denominator_series)
            if numerator is None or denominator is None:
                return 0.0
            total = denominator.delta(window_seconds, now=now)
            if total <= 0:
                return 0.0
            bad = numerator.delta(window_seconds, now=now)
            return min(1.0, max(0.0, bad / total))
        series = sampler.get(self.series)
        if series is None:
            return 0.0
        window = series.points(window_seconds, now=now)
        if not window:
            return 0.0
        bad = sum(1 for _, value in window if value > self.threshold)
        return bad / len(window)

    def burn_rate(self, sampler, window_seconds: float, now: Optional[float] = None) -> float:
        """Error rate over the window divided by the error budget."""
        return self.error_rate(sampler, window_seconds, now=now) / self.budget


@dataclass(frozen=True)
class Alert:
    """One fired burn-rate alert (typed, JSON-serialisable via to_dict)."""

    slo: str
    severity: str
    burn_rate: float
    short_burn_rate: float
    long_window_seconds: float
    short_window_seconds: float
    error_rate: float
    budget: float
    fired_at: float
    wall_time: str
    detail: str = ""
    data: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "burn_rate": round(self.burn_rate, 3),
            "short_burn_rate": round(self.short_burn_rate, 3),
            "long_window_seconds": self.long_window_seconds,
            "short_window_seconds": self.short_window_seconds,
            "error_rate": round(self.error_rate, 6),
            "budget": round(self.budget, 6),
            "fired_at": round(self.fired_at, 6),
            "wall_time": self.wall_time,
            "detail": self.detail,
            **({"data": dict(self.data)} if self.data else {}),
        }


class SLOEvaluator:
    """Evaluates a set of SLOs against a sampler; fires typed alerts.

    Designed to ride the sampler's beat (``MetricsSampler(evaluator=...)``
    calls :meth:`evaluate` after every tick) but callable standalone from
    tests with an explicit ``now``.  Alert state machine per (SLO, rule):
    *inactive* → *active* when both windows exceed the threshold (fires
    exactly one :class:`Alert`), back to *inactive* when the short-window
    burn drops below it (so a persistent condition never re-fires, and a
    fixed-then-regressed condition fires again).
    """

    def __init__(self, slos: Tuple[SLO, ...] = (), alert_capacity: int = 256) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.slos: Tuple[SLO, ...] = tuple(slos)
        self._lock = threading.Lock()
        self._alerts: Deque[Alert] = deque(maxlen=alert_capacity)
        self._active: Dict[Tuple[str, str], bool] = {}
        self.evaluations = 0

    # -- evaluation ----------------------------------------------------------------------

    def evaluate(self, sampler, now: Optional[float] = None) -> List[Alert]:
        """One pass over every (SLO, rule); returns newly fired alerts."""
        stamp = monotonic_time() if now is None else now
        fired: List[Alert] = []
        for slo in self.slos:
            for rule in slo.rules:
                key = (slo.name, rule.severity)
                long_burn = slo.burn_rate(sampler, rule.long_window_seconds, now=stamp)
                short_burn = slo.burn_rate(sampler, rule.short_window_seconds, now=stamp)
                breaching = (
                    long_burn >= rule.burn_threshold and short_burn >= rule.burn_threshold
                )
                with self._lock:
                    was_active = self._active.get(key, False)
                    if breaching and not was_active:
                        self._active[key] = True
                    elif not breaching and was_active and short_burn < rule.burn_threshold:
                        self._active[key] = False
                if breaching and not was_active:
                    alert = Alert(
                        slo=slo.name,
                        severity=rule.severity,
                        burn_rate=long_burn,
                        short_burn_rate=short_burn,
                        long_window_seconds=rule.long_window_seconds,
                        short_window_seconds=rule.short_window_seconds,
                        error_rate=slo.error_rate(sampler, rule.long_window_seconds, now=stamp),
                        budget=slo.budget,
                        fired_at=stamp,
                        wall_time=datetime.fromtimestamp(
                            wall_clock(), tz=timezone.utc
                        ).isoformat(timespec="milliseconds"),
                        detail=slo.description,
                    )
                    with self._lock:
                        self._alerts.append(alert)
                    fired.append(alert)
                    _logger.warning(
                        "SLO %r burning %.1fx budget over %gs (%.1fx over %gs): %s",
                        slo.name,
                        long_burn,
                        rule.long_window_seconds,
                        short_burn,
                        rule.short_window_seconds,
                        slo.description or slo.series,
                        extra={"data": alert.to_dict()},
                    )
        self.evaluations += 1
        return fired

    # -- readers -------------------------------------------------------------------------

    def alerts(self) -> List[Alert]:
        """Every fired alert still in the bounded log, oldest first."""
        with self._lock:
            return list(self._alerts)

    def alert_log(self) -> List[Dict[str, object]]:
        """The alert log as plain dictionaries (the ``/alerts`` body)."""
        return [alert.to_dict() for alert in self.alerts()]

    def active(self) -> List[Tuple[str, str]]:
        """The (slo, severity) pairs currently breaching."""
        with self._lock:
            return sorted(key for key, is_active in self._active.items() if is_active)

    def clear(self) -> None:
        with self._lock:
            self._alerts.clear()
            self._active.clear()

    def __repr__(self) -> str:
        return (
            f"SLOEvaluator(slos={[slo.name for slo in self.slos]}, "
            f"alerts={len(self._alerts)}, active={self.active()})"
        )
