"""The repository's clocks, in one place.

Latency measurements must never use ``time.time()``: the wall clock can
jump (NTP slew, manual adjustment, DST on some platforms), which turns a
latency sample into garbage — or a negative number.  ``tools/repo_lint.py``
enforces this (rule RL003) on every latency-bearing package; this module
is the single sanctioned exception, so the choice of clock is made once
and documented once.

* :func:`monotonic_time` — ``CLOCK_MONOTONIC``.  Use for timestamps that
  must be *comparable across processes on the same host* (queue-wait
  stamps and trace-span timestamps travel from the feeding process into
  ``ProcessShard`` children; on Linux the monotonic clock is system-wide
  per boot, so parent and child readings share an epoch).
* :func:`perf_clock` — ``perf_counter``.  Highest-resolution clock for
  durations measured *within* one process (batch timing, fsync timing).
* :func:`wall_clock` — ``time.time()``.  Only for human-facing
  timestamps (log lines, benchmark stamps), never for arithmetic between
  two readings.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_time", "perf_clock", "wall_clock"]

#: Seconds on the system-wide monotonic clock (cross-process comparable).
monotonic_time = time.monotonic

#: Seconds on the highest-resolution in-process clock (durations only).
perf_clock = time.perf_counter


def wall_clock() -> float:
    """Seconds since the epoch — display only, never latency arithmetic."""
    return time.time()
