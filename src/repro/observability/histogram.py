"""Mergeable log-linear latency histograms with fixed bucket boundaries.

Every histogram in the repository shares one immutable boundary ladder: a
1–2–5 log-linear progression from 1 µs to 50 s (24 finite upper edges
plus the overflow bucket).  Fixing the boundaries is the whole design:
two histograms recorded independently — on different threads, or on the
two sides of the ``ProcessShard`` pickle boundary — merge by element-wise
addition of their bucket counts, with no re-bucketing and no loss.  Merge
is therefore associative and commutative, and a merged histogram is
byte-identical to the histogram that a single observer would have
recorded (property-tested in ``tests/test_observability_histogram.py``).

Counts are exact; percentiles are estimated as the upper edge of the
bucket containing the requested rank, clamped to the observed maximum —
so an estimate is always within the edges of the true value's bucket.

Instances are *not* internally locked: each hot-path writer owns its own
histogram (one per shard worker, one per event log, one per gateway
loop), and readers take :meth:`to_state` copies which are atomic enough
under the GIL (the counts list is copied in one C-level operation; a
reader can at worst observe a count that lags ``sum`` by one in-flight
sample, never a torn bucket list).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil, inf
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = ["BUCKET_BOUNDS", "LatencyHistogram"]

#: Finite upper bucket edges, seconds: 1-2-5 per decade, 1 µs .. 50 s.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    round(base * 10.0**exponent, 9)
    for exponent in range(-6, 2)
    for base in (1, 2, 5)
)

_N_BUCKETS = len(BUCKET_BOUNDS) + 1  # + overflow (le="+Inf")

State = Mapping[str, object]


class LatencyHistogram:
    """One latency distribution: exact bucket counts, sum, and max."""

    __slots__ = ("_counts", "_sum", "_max")

    def __init__(self) -> None:
        self._counts: List[int] = [0] * _N_BUCKETS
        self._sum = 0.0
        self._max = 0.0

    # -- recording ---------------------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Record one latency sample (negative samples clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self._counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    # -- readers -----------------------------------------------------------------------

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, quantile: float) -> float:
        """Upper-edge estimate of the given quantile (0 < q <= 1).

        Returns the upper boundary of the bucket holding the sample of
        rank ``ceil(q * count)``, clamped to the observed maximum (which
        is exact).  Zero when the histogram is empty.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile!r}")
        total = sum(self._counts)
        if total == 0:
            return 0.0
        rank = ceil(quantile * total)
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(BUCKET_BOUNDS):
                    return min(BUCKET_BOUNDS[index], self._max)
                return self._max
        return self._max  # unreachable; keeps the checker honest

    def summary(self) -> Dict[str, float]:
        """Plain-number digest for ``BENCH_*.json`` and log lines."""
        total = sum(self._counts)
        return {
            "count": total,
            "sum_seconds": round(self._sum, 9),
            "p50_seconds": round(self.percentile(0.50), 9),
            "p95_seconds": round(self.percentile(0.95), 9),
            "p99_seconds": round(self.percentile(0.99), 9),
            "max_seconds": round(self._max, 9),
        }

    def bucket_pairs(self) -> List[Tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``("+Inf", count)``.

        This is exactly the series a Prometheus ``_bucket`` family wants;
        the caller renders the label and adds ``_sum`` / ``_count``.
        """
        pairs: List[Tuple[str, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(BUCKET_BOUNDS, self._counts):
            cumulative += bucket_count
            pairs.append((_format_bound(bound), cumulative))
        cumulative += self._counts[-1]
        pairs.append(("+Inf", cumulative))
        return pairs

    # -- merge / serialisation ---------------------------------------------------------

    def merge(self, other: Union["LatencyHistogram", State]) -> "LatencyHistogram":
        """Fold another histogram (or its :meth:`to_state`) into this one."""
        if isinstance(other, LatencyHistogram):
            counts: Sequence[int] = other._counts
            other_sum, other_max = other._sum, other._max
        else:
            counts, other_sum, other_max = _validate_state(other)
        for index, bucket_count in enumerate(counts):
            self._counts[index] += bucket_count
        self._sum += other_sum
        if other_max > self._max:
            self._max = other_max
        return self

    @classmethod
    def merged(
        cls, parts: Iterable[Union["LatencyHistogram", State]]
    ) -> "LatencyHistogram":
        """A fresh histogram equal to the lossless union of ``parts``."""
        result = cls()
        for part in parts:
            result.merge(part)
        return result

    def to_state(self) -> Dict[str, object]:
        """A JSON- and pickle-safe snapshot (survives ``json.dumps``)."""
        return {
            "buckets": len(BUCKET_BOUNDS),
            "counts": list(self._counts),
            "sum": self._sum,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: State) -> "LatencyHistogram":
        histogram = cls()
        counts, total_sum, maximum = _validate_state(state)
        histogram._counts = list(counts)
        histogram._sum = total_sum
        histogram._max = maximum
        return histogram

    def reset(self) -> None:
        self._counts = [0] * _N_BUCKETS
        self._sum = 0.0
        self._max = 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self._counts == other._counts
            and self._sum == other._sum
            and self._max == other._max
        )

    def __repr__(self) -> str:
        digest = self.summary()
        return (
            f"LatencyHistogram(count={digest['count']}, "
            f"p50={digest['p50_seconds']}, p99={digest['p99_seconds']}, "
            f"max={digest['max_seconds']})"
        )


def _format_bound(bound: float) -> str:
    """Render a bucket edge the way Prometheus clients expect (``0.001``)."""
    text = f"{bound:.9f}".rstrip("0")
    return text + "0" if text.endswith(".") else text


def _validate_state(state: State) -> Tuple[Sequence[int], float, float]:
    buckets = state.get("buckets")
    counts = state.get("counts")
    if buckets != len(BUCKET_BOUNDS) or not isinstance(counts, (list, tuple)):
        raise ValueError(
            f"histogram state has {buckets!r} bucket edges; this build "
            f"expects {len(BUCKET_BOUNDS)} — states from a different "
            f"boundary ladder cannot merge losslessly"
        )
    if len(counts) != _N_BUCKETS:
        raise ValueError(
            f"histogram state carries {len(counts)} counts, expected {_N_BUCKETS}"
        )
    total_sum = float(state.get("sum", 0.0))
    maximum = float(state.get("max", 0.0))
    if any((not isinstance(c, int)) or c < 0 for c in counts):
        raise ValueError("histogram bucket counts must be non-negative integers")
    if total_sum in (inf, -inf) or total_sum != total_sum:
        raise ValueError("histogram sum must be finite")
    return counts, total_sum, maximum
