"""``python -m repro.observability`` — trace analysis and the live top CLI.

``summarize trace.json`` reads a Chrome trace-event document exported by
:meth:`Tracer.export` (or ``GestureSession.export_trace``) and renders:

* a per-stage latency table — span count, p50 / p95 / max duration and
  total time per category (gateway / queue / shard / matcher / ...);
* a critical-path breakdown — for each complete trace, where its
  end-to-end wall time went, averaged across traces.

``--json`` renders the same summary as one machine-readable document.  A
*valid but empty* trace (``{"traceEvents": []}`` — tracing off, or
nothing sampled) is not an error: the summary says so and the command
exits 0, so an untraced CI run does not fail its reporting step.

``top`` polls a gateway's ``/debug/vars`` endpoint and renders the
continuous profiler's per-query CPU attribution as a terminal dashboard
(``--once`` prints a single frame for scripts and CI).

The commands exit 0 on success, 2 on a missing/invalid file or an
unreachable gateway, so they slot into CI pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from collections import defaultdict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.observability.profiling import render_top

__all__ = ["main", "summarize_trace", "summarize_trace_json"]


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(quantile * (len(sorted_values) - 1))))
    return sorted_values[index]


def _format_us(microseconds: float) -> str:
    if microseconds >= 1e6:
        return f"{microseconds / 1e6:.3f}s"
    if microseconds >= 1e3:
        return f"{microseconds / 1e3:.3f}ms"
    return f"{microseconds:.1f}us"


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    ruler = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), ruler, *[line(row) for row in rows]])


def _complete_events(document: Mapping[str, Any]) -> List[Mapping[str, Any]]:
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(
            "not a Chrome trace-event document: missing 'traceEvents' list"
        )
    return [
        event
        for event in events
        if isinstance(event, Mapping) and event.get("ph") == "X"
    ]


def _analyze(events: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Shared analysis behind the text and JSON renderings."""
    by_stage: Dict[str, List[float]] = defaultdict(list)
    by_trace: Dict[str, List[Mapping[str, Any]]] = defaultdict(list)
    for event in events:
        duration = float(event.get("dur", 0.0))
        by_stage[str(event.get("cat", "?"))].append(duration)
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id:
            by_trace[str(trace_id)].append(event)

    stages: Dict[str, Dict[str, float]] = {}
    for stage, durations in by_stage.items():
        durations = sorted(durations)
        stages[stage] = {
            "spans": len(durations),
            "p50_us": _percentile(durations, 0.50),
            "p95_us": _percentile(durations, 0.95),
            "max_us": durations[-1] if durations else 0.0,
            "total_us": sum(durations),
        }

    critical: Dict[str, Any] = {}
    if by_trace:
        stage_share: Dict[str, float] = defaultdict(float)
        spans_per_trace = []
        e2e_total = 0.0
        for trace_events in by_trace.values():
            start = min(float(event.get("ts", 0.0)) for event in trace_events)
            end = max(
                float(event.get("ts", 0.0)) + float(event.get("dur", 0.0))
                for event in trace_events
            )
            e2e_total += end - start
            spans_per_trace.append(len(trace_events))
            for event in trace_events:
                stage_share[str(event.get("cat", "?"))] += float(event.get("dur", 0.0))
        trace_count = len(by_trace)
        critical = {
            "traces": trace_count,
            "mean_end_to_end_us": e2e_total / trace_count,
            "mean_spans_per_trace": sum(spans_per_trace) / trace_count,
            "stage_share": {
                stage: {
                    "mean_us_per_trace": total / trace_count,
                    "share": total / max(1e-9, sum(stage_share.values())),
                }
                for stage, total in sorted(stage_share.items(), key=lambda kv: -kv[1])
            },
        }
    return {"spans": len(events), "stages": stages, "critical_path": critical}


def summarize_trace_json(document: Mapping[str, Any]) -> Dict[str, Any]:
    """The summary as one JSON-safe document (``spans == 0`` when the
    trace is valid but empty)."""
    return _analyze(_complete_events(document))


def summarize_trace(document: Mapping[str, Any]) -> str:
    """The per-stage table + critical-path breakdown, as one string.

    A valid empty trace renders a one-line notice instead of raising —
    tracing off is a configuration, not an error.
    """
    events = _complete_events(document)
    if not events:
        return (
            "trace contains no complete ('ph': 'X') span events — "
            "tracing was off or nothing was sampled"
        )
    analysis = _analyze(events)

    stage_rows = []
    stages = analysis["stages"]
    for stage in sorted(stages, key=lambda s: -stages[s]["total_us"]):
        digest = stages[stage]
        stage_rows.append(
            [
                stage,
                str(digest["spans"]),
                _format_us(digest["p50_us"]),
                _format_us(digest["p95_us"]),
                _format_us(digest["max_us"]),
                _format_us(digest["total_us"]),
            ]
        )
    sections = [
        "Per-stage latency (span durations by category)",
        _render_table(["stage", "spans", "p50", "p95", "max", "total"], stage_rows),
    ]

    critical = analysis["critical_path"]
    if critical:
        path_rows = [
            [
                stage,
                _format_us(share["mean_us_per_trace"]),
                f"{100.0 * share['share']:.1f}%",
            ]
            for stage, share in critical["stage_share"].items()
        ]
        sections += [
            "",
            f"Critical path across {critical['traces']} trace(s) "
            f"(mean end-to-end {_format_us(critical['mean_end_to_end_us'])}, "
            f"mean spans/trace {critical['mean_spans_per_trace']:.1f})",
            _render_table(["stage", "mean time/trace", "share"], path_rows),
        ]
    return "\n".join(sections)


# -- the top dashboard -------------------------------------------------------------------


def _fetch_debug_vars(url: str, timeout: float) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=timeout) as response:  # noqa: S310 — local gateway
        return json.loads(response.read().decode("utf-8"))


def _render_top_frame(document: Mapping[str, Any]) -> str:
    tenants = document.get("tenants") or {}
    if not tenants:
        return "no tenant sessions attached yet"
    frames = []
    for name in sorted(tenants):
        entry = tenants[name] or {}
        profile = entry.get("profile") or {}
        frames.append(f"tenant: {name}")
        if not profile.get("enabled"):
            frames.append("  profiler off (SessionConfig.profile_hz = 0)")
        else:
            snapshot = {
                "hz": profile.get("hz", 0),
                "running": True,
                "samples": profile.get("samples", 0),
                "query_samples": {
                    query: info.get("samples", 0)
                    for query, info in (profile.get("queries") or {}).items()
                },
                "query_share": {
                    query: info.get("cpu_share", 0.0)
                    for query, info in (profile.get("queries") or {}).items()
                },
                "top_stacks": profile.get("top_stacks") or [],
            }
            frames.append(render_top(snapshot))
        health = entry.get("health")
        if health:
            frames.append(f"  health: {health.get('status', '?')}")
        active = entry.get("active_alerts")
        if active:
            frames.append(f"  active alerts: {active}")
        frames.append("")
    return "\n".join(frames).rstrip()


def _run_top(url: str, interval: float, once: bool, timeout: float) -> int:
    while True:
        try:
            document = _fetch_debug_vars(url, timeout)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {url}: {exc}", file=sys.stderr)
            return 2
        frame = _render_top_frame(document)
        if once:
            print(frame)
            return 0
        # Clear-and-home keeps the dashboard in place on ANSI terminals.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        time.sleep(interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Analyse exported traces; watch live per-query CPU attribution.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize", help="per-stage latency table + critical-path breakdown"
    )
    summarize.add_argument("trace_file", help="Chrome trace-event JSON file")
    summarize.add_argument(
        "--json", action="store_true", help="emit the summary as a JSON document"
    )
    top = commands.add_parser(
        "top", help="live per-query CPU dashboard from a gateway's /debug/vars"
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8876/debug/vars",
        help="gateway /debug/vars endpoint (default: %(default)s)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period, seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="print a single frame and exit (CI)"
    )
    top.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout, seconds"
    )
    options = parser.parse_args(argv)

    if options.command == "top":
        return _run_top(options.url, options.interval, options.once, options.timeout)

    try:
        with open(options.trace_file, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    try:
        if options.json:
            print(json.dumps(summarize_trace_json(document), indent=2, sort_keys=True))
        else:
            print(summarize_trace(document))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: the POSIX-polite exit.
        sys.exit(141)
