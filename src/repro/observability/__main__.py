"""``python -m repro.observability`` — trace-file analysis CLI.

``summarize trace.json`` reads a Chrome trace-event document exported by
:meth:`Tracer.export` (or ``GestureSession.export_trace``) and renders:

* a per-stage latency table — span count, p50 / p95 / max duration and
  total time per category (gateway / queue / shard / matcher / ...);
* a critical-path breakdown — for each complete trace, where its
  end-to-end wall time went, averaged across traces.

The command exits 0 on success, 2 on a missing/empty/invalid file, so it
slots into CI pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["main", "summarize_trace"]


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(quantile * (len(sorted_values) - 1))))
    return sorted_values[index]


def _format_us(microseconds: float) -> str:
    if microseconds >= 1e6:
        return f"{microseconds / 1e6:.3f}s"
    if microseconds >= 1e3:
        return f"{microseconds / 1e3:.3f}ms"
    return f"{microseconds:.1f}us"


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    ruler = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), ruler, *[line(row) for row in rows]])


def summarize_trace(document: Mapping[str, Any]) -> str:
    """The per-stage table + critical-path breakdown, as one string."""
    events = [
        event
        for event in document.get("traceEvents", [])
        if isinstance(event, Mapping) and event.get("ph") == "X"
    ]
    if not events:
        raise ValueError("trace document contains no complete ('ph': 'X') span events")

    by_stage: Dict[str, List[float]] = defaultdict(list)
    by_trace: Dict[str, List[Mapping[str, Any]]] = defaultdict(list)
    for event in events:
        duration = float(event.get("dur", 0.0))
        by_stage[str(event.get("cat", "?"))].append(duration)
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id:
            by_trace[str(trace_id)].append(event)

    stage_rows = []
    for stage in sorted(by_stage, key=lambda s: -sum(by_stage[s])):
        durations = sorted(by_stage[stage])
        stage_rows.append(
            [
                stage,
                str(len(durations)),
                _format_us(_percentile(durations, 0.50)),
                _format_us(_percentile(durations, 0.95)),
                _format_us(durations[-1]),
                _format_us(sum(durations)),
            ]
        )
    sections = [
        "Per-stage latency (span durations by category)",
        _render_table(["stage", "spans", "p50", "p95", "max", "total"], stage_rows),
    ]

    if by_trace:
        # Critical path: per trace, end-to-end = span extent; attribute
        # time to stages by their share of summed span time (overlapping
        # spans double-count within a stage but the ranking holds).
        stage_share: Dict[str, float] = defaultdict(float)
        spans_per_trace = []
        e2e_total = 0.0
        for trace_events in by_trace.values():
            start = min(float(event.get("ts", 0.0)) for event in trace_events)
            end = max(
                float(event.get("ts", 0.0)) + float(event.get("dur", 0.0))
                for event in trace_events
            )
            e2e_total += end - start
            spans_per_trace.append(len(trace_events))
            for event in trace_events:
                stage_share[str(event.get("cat", "?"))] += float(event.get("dur", 0.0))
        trace_count = len(by_trace)
        path_rows = [
            [
                stage,
                _format_us(total / trace_count),
                f"{100.0 * total / max(1e-9, sum(stage_share.values())):.1f}%",
            ]
            for stage, total in sorted(stage_share.items(), key=lambda kv: -kv[1])
        ]
        sections += [
            "",
            f"Critical path across {trace_count} trace(s) "
            f"(mean end-to-end {_format_us(e2e_total / trace_count)}, "
            f"mean spans/trace {sum(spans_per_trace) / trace_count:.1f})",
            _render_table(["stage", "mean time/trace", "share"], path_rows),
        ]
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Analyse Chrome trace-event files exported by the pipeline.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize", help="per-stage latency table + critical-path breakdown"
    )
    summarize.add_argument("trace_file", help="Chrome trace-event JSON file")
    options = parser.parse_args(argv)

    try:
        with open(options.trace_file, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    try:
        print(summarize_trace(document))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
