"""Ring-buffer time series and the background metrics sampler.

The counters and histograms of :class:`~repro.runtime.metrics.MetricsRegistry`
answer *"how much so far"*; the control plane (SLO burn rates, the health
watchdog, a future autoscaler) needs *"how fast right now"*.  This module
adds the windowed layer:

* :class:`TimeSeries` — a fixed-capacity ring buffer of
  ``(monotonic_seconds, value)`` points with windowed ``rate()`` /
  ``delta()`` / ``mean()`` queries.  Like
  :class:`~repro.observability.histogram.LatencyHistogram` it is
  mergeable: ``to_state()`` round-trips through JSON/pickle and
  :meth:`TimeSeries.merge` interleaves two buffers by timestamp, so
  series recorded in a process shard can be folded into the parent's.
* :class:`MetricsSampler` — a named daemon thread polling every
  registered source (a :class:`MetricsRegistry` — shard totals,
  durability counters, merged histogram digests — gateway counters, or
  any callable returning a flat ``{name: number}`` mapping) into one
  series per metric, then handing the fresh window to an optional
  :class:`~repro.observability.slo.SLOEvaluator`.

The sampler reads only parent-visible state (``totals()``,
``merged_histograms()``, plain snapshots); it never broadcasts controls
to process shards, so a tick costs a few lock acquisitions and dict
copies and can never block behind queued work.  Everything here is
off-by-default: nothing starts unless a session (or test) starts it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observability.clock import monotonic_time

__all__ = ["TimeSeries", "MetricsSampler", "flatten_registry"]

#: Default per-series capacity: at the default 0.5 s interval this holds
#: ~4 minutes of history — enough for the widest default burn-rate window.
DEFAULT_CAPACITY = 512

#: Histogram-digest keys the sampler records as gauges per family.
_HISTOGRAM_DIGEST_KEYS = ("count", "sum_seconds", "p50_seconds", "p99_seconds", "max_seconds")


class TimeSeries:
    """A bounded series of ``(timestamp, value)`` points.  Thread-safe.

    ``kind`` documents how to read the values: a ``"counter"`` series
    holds monotonically increasing totals (query with :meth:`rate` /
    :meth:`delta`), a ``"gauge"`` series holds point-in-time levels
    (query with :meth:`mean` / :meth:`latest`).  The kind does not change
    storage behaviour; both are capacity-bounded ring buffers.
    """

    __slots__ = ("name", "kind", "capacity", "_times", "_values", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY, kind: str = "gauge") -> None:
        if capacity < 2:
            raise ValueError("a TimeSeries needs capacity >= 2 to answer windowed queries")
        if kind not in ("counter", "gauge"):
            raise ValueError(f"kind must be 'counter' or 'gauge', not {kind!r}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        # Parallel lists kept sorted by time; cheaper than a deque of
        # tuples for the bisect-based window queries below.
        self._times: List[float] = []
        self._values: List[float] = []
        self._lock = threading.Lock()

    def append(self, value: float, timestamp: Optional[float] = None) -> None:
        """Record one point (``timestamp`` defaults to monotonic now)."""
        stamp = monotonic_time() if timestamp is None else float(timestamp)
        with self._lock:
            if self._times and stamp < self._times[-1]:
                # Out-of-order insert (merged shards): keep the buffer sorted.
                index = bisect_right(self._times, stamp)
                self._times.insert(index, stamp)
                self._values.insert(index, float(value))
            else:
                self._times.append(stamp)
                self._values.append(float(value))
            if len(self._times) > self.capacity:
                del self._times[: len(self._times) - self.capacity]
                del self._values[: len(self._values) - self.capacity]

    def __len__(self) -> int:
        with self._lock:
            return len(self._times)

    def latest(self) -> Optional[float]:
        with self._lock:
            return self._values[-1] if self._values else None

    def points(self, window_seconds: Optional[float] = None, now: Optional[float] = None) -> List[Tuple[float, float]]:
        """The buffered points, optionally restricted to the last window."""
        with self._lock:
            times, values = list(self._times), list(self._values)
        if window_seconds is None or not times:
            return list(zip(times, values))
        cutoff = (monotonic_time() if now is None else now) - window_seconds
        start = bisect_left(times, cutoff)
        return list(zip(times[start:], values[start:]))

    # -- windowed queries ----------------------------------------------------------------

    def delta(self, window_seconds: float, now: Optional[float] = None) -> float:
        """Counter increase over the window (0.0 with <2 points).

        A value drop (a restarted shard resetting its counter) clamps to
        the newest value rather than going negative, mirroring how
        Prometheus ``increase()`` treats counter resets.
        """
        window = self.points(window_seconds, now=now)
        if len(window) < 2:
            return 0.0
        increase = window[-1][1] - window[0][1]
        return window[-1][1] if increase < 0 else increase

    def rate(self, window_seconds: float, now: Optional[float] = None) -> float:
        """Per-second increase over the window (0.0 when undefined)."""
        window = self.points(window_seconds, now=now)
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0:
            return 0.0
        increase = window[-1][1] - window[0][1]
        if increase < 0:
            increase = window[-1][1]
        return increase / elapsed

    def derivative(self, window_seconds: float, now: Optional[float] = None) -> float:
        """Per-second slope over the window; unlike :meth:`rate`, may be
        negative (gauge going down)."""
        window = self.points(window_seconds, now=now)
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0:
            return 0.0
        return (window[-1][1] - window[0][1]) / elapsed

    def mean(self, window_seconds: float, now: Optional[float] = None) -> float:
        window = self.points(window_seconds, now=now)
        if not window:
            return 0.0
        return sum(value for _, value in window) / len(window)

    def max(self, window_seconds: float, now: Optional[float] = None) -> float:
        window = self.points(window_seconds, now=now)
        if not window:
            return 0.0
        return max(value for _, value in window)

    # -- merge / serialisation -----------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """A JSON-/pickle-safe snapshot (same idiom as the histograms)."""
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "capacity": self.capacity,
                "times": list(self._times),
                "values": list(self._values),
            }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "TimeSeries":
        series = cls(
            str(state["name"]),
            capacity=int(state.get("capacity", DEFAULT_CAPACITY)),  # type: ignore[arg-type]
            kind=str(state.get("kind", "gauge")),
        )
        times = state.get("times") or []
        values = state.get("values") or []
        if not isinstance(times, Sequence) or not isinstance(values, Sequence):
            raise ValueError("TimeSeries state requires 'times' and 'values' sequences")
        if len(times) != len(values):
            raise ValueError("TimeSeries state has mismatched times/values lengths")
        series._times = [float(t) for t in times]
        series._values = [float(v) for v in values]
        return series

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Interleave another series' points into this one by timestamp.

        Series from different shards of one run share the monotonic epoch
        (same boot), so the merged buffer reads chronologically; the
        capacity bound keeps the newest points.  Returns ``self``.
        """
        for stamp, value in other.points():
            self.append(value, timestamp=stamp)
        return self

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, kind={self.kind}, points={len(self)}/{self.capacity})"


def flatten_registry(registry) -> Dict[str, float]:
    """One flat ``{series_name: value}`` reading of a metrics registry.

    Covers every shard-counter family (summed totals), every durability
    counter, and a digest (count / sum / p50 / p99 / max) of every merged
    histogram family.  Reads only parent-visible state — no process-shard
    broadcast — so it is safe and cheap from a background thread.
    """
    reading: Dict[str, float] = {}
    for key, value in registry.totals().items():
        reading[f"shard.{key}"] = float(value)
    for key, value in registry.durability.snapshot().items():
        reading[f"durability.{key}"] = float(value)
    for family, histogram in registry.merged_histograms().items():
        digest = histogram.summary()
        for key in _HISTOGRAM_DIGEST_KEYS:
            reading[f"hist.{family}.{key}"] = float(digest[key])
    return reading


#: Series whose flattened name ends with one of these behaves as a counter.
_COUNTER_SUFFIXES = (
    "_total", "enqueued", "processed", "dropped", "detections", "errors",
    "busy_seconds", "appended", "fsyncs", "rotated", "taken", "replayed",
    "recoveries", ".count", "sum_seconds", "snapshot_seconds",
)


def _series_kind(name: str) -> str:
    return "counter" if name.endswith(_COUNTER_SUFFIXES) else "gauge"


class MetricsSampler:
    """Polls registered sources into ring-buffer series on a fixed beat.

    Sources are ``(prefix, callable)`` pairs; each callable returns a flat
    mapping of metric name → number and its readings land in series named
    ``prefix + name``.  :meth:`sample_once` is public so tests (and the
    one-shot health path) can drive the clock deterministically; the
    background thread — constructed with a ``name=`` as repo-lint RL004
    demands — simply calls it every ``interval_seconds``.

    An optional evaluator (duck-typed: ``evaluate(sampler, now)``) runs
    after every tick; the session installs an
    :class:`~repro.observability.slo.SLOEvaluator` there so burn-rate
    alerting shares the sampler's thread instead of adding another.
    """

    def __init__(
        self,
        interval_seconds: float = 0.5,
        capacity: int = DEFAULT_CAPACITY,
        evaluator: Optional[object] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.capacity = capacity
        self.evaluator = evaluator
        self._sources: List[Tuple[str, Callable[[], Mapping[str, float]]]] = []
        self._series: Dict[str, TimeSeries] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.ticks = 0
        self.source_errors = 0

    # -- sources -------------------------------------------------------------------------

    def add_source(self, prefix: str, reader: Callable[[], Mapping[str, float]]) -> None:
        with self._lock:
            self._sources.append((prefix, reader))

    def add_registry(self, registry, prefix: str = "") -> None:
        """Poll every counter and histogram family of a metrics registry."""
        self.add_source(prefix, lambda: flatten_registry(registry))

    def add_gateway_metrics(self, gateway_metrics, prefix: str = "gateway.") -> None:
        """Poll a :class:`~repro.gateway.metrics.GatewayMetrics` snapshot."""
        self.add_source(
            prefix,
            lambda: {
                key: float(value)
                for key, value in gateway_metrics.snapshot().items()
                if isinstance(value, (int, float))
            },
        )

    # -- sampling ------------------------------------------------------------------------

    def sample_once(self, now: Optional[float] = None) -> None:
        """Poll every source once; then run the evaluator (if any).

        A raising source is counted and skipped — sampling must keep
        working while the pipeline it observes winds down.
        """
        stamp = monotonic_time() if now is None else now
        with self._lock:
            sources = list(self._sources)
        for prefix, reader in sources:
            try:
                reading = reader()
            except Exception:  # noqa: BLE001 — a dying source must not kill the beat
                self.source_errors += 1
                continue
            for name, value in reading.items():
                self.series(prefix + name).append(float(value), timestamp=stamp)
        self.ticks += 1
        evaluator = self.evaluator
        if evaluator is not None:
            evaluator.evaluate(self, now=stamp)  # type: ignore[attr-defined]

    def series(self, name: str) -> TimeSeries:
        """The series for ``name`` (created on first use)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(
                    name, capacity=self.capacity, kind=_series_kind(name)
                )
            return series

    def get(self, name: str) -> Optional[TimeSeries]:
        with self._lock:
            return self._series.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self) -> Dict[str, float]:
        """Newest value of every series (series yet without points skip)."""
        with self._lock:
            entries = list(self._series.items())
        reading = {}
        for name, series in entries:
            value = series.latest()
            if value is not None:
                reading[name] = value
        return reading

    def rate(self, name: str, window_seconds: float) -> float:
        series = self.get(name)
        return 0.0 if series is None else series.rate(window_seconds)

    # -- merge / serialisation -----------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        with self._lock:
            return {name: series.to_state() for name, series in self._series.items()}

    def absorb(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Fold series states from another sampler (e.g. a process shard)."""
        for name, series_state in state.items():
            self.series(name).merge(TimeSeries.from_state(series_state))

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsSampler":
        """Start the background beat (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop and join the beat; takes one final sample so short runs
        (shorter than one interval) still leave a window behind."""
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample_once()
        # Final reading on the way out: a feed that finished within one
        # interval is still observed, and stop() callers read fresh state.
        self.sample_once()

    def __repr__(self) -> str:
        return (
            f"MetricsSampler(interval={self.interval_seconds}s, "
            f"series={len(self._series)}, ticks={self.ticks}, running={self.running})"
        )
