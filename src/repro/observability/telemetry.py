"""The telemetry bundle one pipeline instance carries.

:class:`TelemetryConfig` is a frozen, picklable dataclass of primitives —
it rides inside ``ShardEngineSpec`` into process-shard children, so every
process builds an identical :class:`Telemetry` from the same knobs.
:class:`Telemetry` owns the :class:`~repro.observability.tracing.Tracer`
and the slow-batch logger; histograms live with the metric objects that
record them (:class:`~repro.runtime.metrics.ShardMetrics` and friends)
because their lifecycle follows the metrics registry, not the tracer.

The defaults are the ≤5 %-overhead contract: histograms on (a bisect per
*batch*, not per tuple), tracing off (``sample_rate=0.0`` → the hot path
pays one ``is None`` check), slow-batch logging off.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Optional

from repro.observability.tracing import TraceContext, Tracer

__all__ = ["Telemetry", "TelemetryConfig", "SLOW_BATCH_LOGGER"]

#: Logger slow batches are reported on (JSON-formatted when configured).
SLOW_BATCH_LOGGER = "repro.observability.slowlog"


@dataclass(frozen=True)
class TelemetryConfig:
    """Every telemetry knob, picklable across the process-shard boundary.

    Attributes
    ----------
    enabled:
        Master switch.  Off means no histograms are recorded, no tracer
        exists on the hot path, and no slow-batch checks run — the
        telemetry-off leg of the B7 overhead benchmark.
    trace_sample_rate:
        Head-sampling fraction in ``[0, 1]``; 0.0 (default) disables
        tracing entirely.
    trace_buffer_size:
        Ring-buffer capacity of each tracer, in spans.
    slow_batch_seconds:
        Log a structured warning whenever one batch takes longer than
        this many seconds (``None`` disables the check).
    profile_hz:
        Sampling rate of the continuous profiler
        (:class:`~repro.observability.profiling.SamplingProfiler`); 0.0
        (default) means no profiler is constructed at all, and query
        tagging in the engine stays a single integer test.
    """

    enabled: bool = True
    trace_sample_rate: float = 0.0
    trace_buffer_size: int = 4096
    slow_batch_seconds: Optional[float] = None
    profile_hz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate!r}"
            )
        if self.trace_buffer_size < 1:
            raise ValueError("trace_buffer_size must be positive")
        if self.slow_batch_seconds is not None and self.slow_batch_seconds <= 0:
            raise ValueError("slow_batch_seconds must be positive when given")
        if self.profile_hz < 0:
            raise ValueError("profile_hz must be >= 0 (0 disables the profiler)")


class Telemetry:
    """One process's live telemetry: the tracer plus the slow-batch log."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            buffer_size=self.config.trace_buffer_size,
        )
        #: Built only when profiling is requested — at 0 Hz the hot path
        #: never sees a profiler object.
        self.profiler = None
        if self.config.profile_hz > 0:
            from repro.observability.profiling import SamplingProfiler

            self.profiler = SamplingProfiler(hz=self.config.profile_hz)
        self._slow_logger = logging.getLogger(SLOW_BATCH_LOGGER)

    @property
    def tracing_active(self) -> bool:
        return self.tracer.active

    def maybe_log_slow_batch(
        self,
        duration_seconds: float,
        stream: str,
        tuples: int,
        shard_id: Optional[int] = None,
        context: Optional[TraceContext] = None,
        **extra: Any,
    ) -> bool:
        """Emit the slow-batch warning when over threshold; returns whether."""
        threshold = self.config.slow_batch_seconds
        if threshold is None or duration_seconds <= threshold:
            return False
        self._slow_logger.warning(
            "slow batch: %d tuples on %r took %.6fs (threshold %.6fs)",
            tuples,
            stream,
            duration_seconds,
            threshold,
            extra={
                "trace_id": context.trace_id if context is not None else None,
                "data": {
                    "stream": stream,
                    "tuples": tuples,
                    "duration_seconds": round(duration_seconds, 6),
                    "threshold_seconds": threshold,
                    **({"shard_id": shard_id} if shard_id is not None else {}),
                    **extra,
                },
            },
        )
        return True

    def __repr__(self) -> str:
        return f"Telemetry(config={self.config!r}, tracer={self.tracer!r})"
