"""Structured JSON logging on the stdlib ``logging`` machinery.

One JSON object per line: timestamp, level, logger, message, and — the
part that makes logs joinable with traces — a ``trace_id`` field filled
from either an explicit ``extra={"trace_id": ...}`` on the log call or
the thread's ambient :func:`~repro.observability.tracing.current_context`
(the shard worker installs it around each sampled batch, so a slow-batch
warning logged mid-batch correlates with its trace for free).

Arbitrary structured payloads ride in ``extra={"data": {...}}`` and are
merged into the object; values that don't survive ``json.dumps`` are
stringified rather than dropped, because a log line that raises is worse
than a log line with a lossy field.
"""

from __future__ import annotations

import io
import json
import logging
from typing import Any, Dict, Optional

from repro.observability.tracing import current_context

__all__ = ["JsonFormatter", "configure_json_logging"]


class JsonFormatter(logging.Formatter):
    """Format every record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None)
        if trace_id is None:
            ambient = current_context()
            if ambient is not None:
                trace_id = ambient.trace_id
        if trace_id is not None:
            payload["trace_id"] = trace_id
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            for key, value in data.items():
                payload.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


def configure_json_logging(
    logger_name: str = "repro",
    level: int = logging.INFO,
    stream: Optional[io.TextIOBase] = None,
) -> logging.Logger:
    """Attach a JSON stream handler to ``logger_name`` (idempotent-ish).

    Returns the configured logger.  An existing JSON handler installed by
    a previous call is replaced rather than duplicated, so tests and
    long-lived sessions can reconfigure freely.
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_json_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(JsonFormatter())
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return logger
