"""Continuous sampling profiler with per-query CPU attribution.

A wall-clock sampling profiler built on :func:`sys._current_frames`: a
named daemon thread wakes at a configurable Hz, walks every live
thread's stack, and folds each into a *collapsed stack* line
(``thread;outer;...;inner``) with a sample count — the flamegraph input
format, mergeable across processes by summing counts.  There is no
per-call instrumentation and therefore **zero cost on the hot path when
the profiler is off**; at the default 0 Hz nothing is even constructed.

Per-query attribution rides thread tags: the matcher dispatch in
:mod:`repro.cep.engine` marks its thread with the deployed query's name
(:func:`tag_query` / :func:`untag_query`) for exactly the duration of
matcher work.  Tagging is a single dict store gated on a module-level
counter of active profilers, so with no profiler running a tag call is
one integer truth-test.  Samples landing on a tagged thread are charged
to that query; the resulting share joins ``session.query_stats()`` in
``session.profile()`` to answer *"which query is eating the CPU"* — the
input ROADMAP item 1 (kernel tuning) and item 3 (autoscaling) both need.

Process shards run their own :class:`SamplingProfiler` in the child
(configured by ``TelemetryConfig.profile_hz`` riding the shard spec) and
the parent folds child states in over the existing telemetry control,
exactly like histograms and spans.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from typing import Dict, List, Mapping, Optional

from repro.observability.clock import monotonic_time

__all__ = [
    "SamplingProfiler",
    "tag_query",
    "untag_query",
    "render_top",
    "UNTAGGED",
]

#: Attribution bucket for samples on threads doing non-matcher work.
UNTAGGED = "(untagged)"

#: Stack frames deeper than this are truncated (keeps lines bounded).
_MAX_DEPTH = 64

# -- thread tagging (module-level so the engine never holds a profiler ref) -------------

#: thread ident -> deployed query name.  Single-key dict operations are
#: atomic under the GIL; no lock needed on the hot path.
_TAGS: Dict[int, str] = {}

#: Number of running profilers.  ``tag_query`` is a no-op while zero,
#: making the engine's tag calls one integer test when profiling is off.
_ACTIVE_PROFILERS = 0
_active_lock = threading.Lock()


def tag_query(name: str) -> None:
    """Mark the calling thread as doing matcher work for ``name``."""
    if _ACTIVE_PROFILERS:
        _TAGS[threading.get_ident()] = name


def untag_query() -> None:
    """Clear the calling thread's query tag."""
    if _ACTIVE_PROFILERS:
        _TAGS.pop(threading.get_ident(), None)


def _collapse(frame, thread_name: str) -> str:
    """Fold one thread's stack into ``thread;outer;...;inner``."""
    parts: List[str] = []
    depth = 0
    while frame is not None and depth < _MAX_DEPTH:
        code = frame.f_code
        parts.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
        frame = frame.f_back
        depth += 1
    parts.append(thread_name)
    return ";".join(reversed(parts))


class SamplingProfiler:
    """Samples every live thread's stack at ``hz``; attributes by tag.

    State is two counters — collapsed-stack line → samples, and query
    name → samples — plus a total, all mergeable across pids with
    :meth:`absorb`.  The sampler thread is named (repo-lint RL004) and
    skips itself.
    """

    def __init__(self, hz: float = 67.0) -> None:
        if hz <= 0:
            raise ValueError("profiler hz must be positive (omit the profiler to disable)")
        self.hz = hz
        self._lock = threading.Lock()
        self._stacks: Counter = Counter()
        self._query_samples: Counter = Counter()
        self.samples = 0
        self.started_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample of every live thread (public for tests)."""
        me = threading.get_ident()
        names = {thread.ident: thread.name for thread in threading.enumerate()}
        frames = sys._current_frames()
        tags = dict(_TAGS)  # snapshot; worker threads mutate concurrently
        with self._lock:
            for ident, frame in frames.items():
                if ident == me:
                    continue
                thread_name = names.get(ident, f"thread-{ident}")
                self._stacks[_collapse(frame, thread_name)] += 1
                query = tags.get(ident)
                if query is not None:
                    self._query_samples[query] += 1
                else:
                    self._query_samples[UNTAGGED] += 1
                self.samples += 1

    # -- readers -------------------------------------------------------------------------

    def collapsed(self) -> List[str]:
        """Folded-stack lines (``stack count``), hottest first — the
        flamegraph/``flamegraph.pl`` input format."""
        with self._lock:
            entries = self._stacks.most_common()
        return [f"{stack} {count}" for stack, count in entries]

    def query_samples(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._query_samples)

    def query_share(self) -> Dict[str, float]:
        """Fraction of *tagged* (matcher) samples per query."""
        with self._lock:
            tagged = {
                name: count
                for name, count in self._query_samples.items()
                if name != UNTAGGED
            }
        total = sum(tagged.values())
        if not total:
            return {}
        return {name: count / total for name, count in sorted(tagged.items())}

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe summary (the ``/debug/vars`` profiler block)."""
        with self._lock:
            samples = self.samples
            queries = dict(self._query_samples)
            top = self._stacks.most_common(20)
        return {
            "hz": self.hz,
            "running": self.running,
            "samples": samples,
            "query_samples": queries,
            "query_share": self.query_share(),
            "top_stacks": [{"stack": stack, "count": count} for stack, count in top],
        }

    # -- merge / serialisation -----------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hz": self.hz,
                "samples": self.samples,
                "stacks": dict(self._stacks),
                "query_samples": dict(self._query_samples),
            }

    def absorb(self, state: Mapping[str, object]) -> None:
        """Fold another profiler's state in (child pid → parent)."""
        stacks = state.get("stacks") or {}
        query_samples = state.get("query_samples") or {}
        with self._lock:
            self.samples += int(state.get("samples", 0) or 0)
            for stack, count in stacks.items():  # type: ignore[union-attr]
                self._stacks[str(stack)] += int(count)
            for name, count in query_samples.items():  # type: ignore[union-attr]
                self._query_samples[str(name)] += int(count)

    def clear(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._query_samples.clear()
            self.samples = 0

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start sampling (idempotent); activates hot-path tagging."""
        global _ACTIVE_PROFILERS
        if self.running:
            return self
        with _active_lock:
            _ACTIVE_PROFILERS += 1
        self.started_at = monotonic_time()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop and join; deactivates tagging when the last profiler stops."""
        global _ACTIVE_PROFILERS
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None
        with _active_lock:
            _ACTIVE_PROFILERS = max(0, _ACTIVE_PROFILERS - 1)
            if _ACTIVE_PROFILERS == 0:
                _TAGS.clear()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def __repr__(self) -> str:
        return (
            f"SamplingProfiler(hz={self.hz}, samples={self.samples}, "
            f"queries={len(self._query_samples)}, running={self.running})"
        )


def render_top(snapshot: Mapping[str, object], width: int = 72) -> str:
    """Render a profiler snapshot as the ``top``-style terminal table
    used by ``python -m repro.observability top``."""
    lines = [
        f"samples: {snapshot.get('samples', 0)}   "
        f"hz: {snapshot.get('hz', 0)}   running: {snapshot.get('running', False)}",
        "",
        f"{'QUERY':<32} {'SAMPLES':>9} {'CPU%':>7}",
    ]
    query_samples = snapshot.get("query_samples") or {}
    share = snapshot.get("query_share") or {}
    for name, count in sorted(
        query_samples.items(), key=lambda item: item[1], reverse=True  # type: ignore[union-attr]
    ):
        pct = float(share.get(name, 0.0)) * 100.0 if name != UNTAGGED else 0.0
        pct_text = f"{pct:6.1f}%" if name != UNTAGGED else "      -"
        lines.append(f"{str(name)[:32]:<32} {count:>9} {pct_text}")
    top_stacks = snapshot.get("top_stacks") or []
    if top_stacks:
        lines += ["", "HOTTEST STACKS"]
        for entry in top_stacks[:10]:  # type: ignore[index]
            stack = str(entry.get("stack", ""))  # type: ignore[union-attr]
            count = entry.get("count", 0)  # type: ignore[union-attr]
            tail = stack.split(";")[-1]
            lines.append(f"  {count:>7}  {tail[: width - 11]}")
    return "\n".join(lines)
