"""Telemetry for the whole pipeline: histograms, traces, structured logs.

The package is stdlib-only and sits *below* the runtime in the import
graph: :mod:`repro.runtime.metrics`, the shard executors, the gateway and
the persistence layer all import from here, never the other way around.
Three building blocks:

* :class:`LatencyHistogram` — mergeable log-linear latency histograms
  with fixed bucket boundaries, so per-thread and per-process shard
  histograms combine losslessly (see :mod:`repro.observability.histogram`);
* :class:`Tracer` / :class:`TraceContext` — span-based tracing with a
  serialisable context that crosses the ``ProcessShard`` pickle boundary,
  head sampling (default off), a bounded ring buffer, and Chrome
  trace-event export (see :mod:`repro.observability.tracing`);
* :class:`JsonFormatter` — a stdlib ``logging`` formatter emitting one
  JSON object per line with trace-id correlation (see
  :mod:`repro.observability.jsonlog`).

``python -m repro.observability summarize trace.json`` renders a
per-stage latency table and critical-path breakdown for an exported
trace file.  ``docs/observability.md`` documents the semantics.
"""

from repro.observability.clock import monotonic_time, perf_clock, wall_clock
from repro.observability.histogram import LatencyHistogram
from repro.observability.jsonlog import JsonFormatter, configure_json_logging
from repro.observability.telemetry import Telemetry, TelemetryConfig
from repro.observability.tracing import (
    SpanHandle,
    TraceContext,
    Tracer,
    current_context,
    use_context,
)

__all__ = [
    "JsonFormatter",
    "LatencyHistogram",
    "SpanHandle",
    "Telemetry",
    "TelemetryConfig",
    "TraceContext",
    "Tracer",
    "configure_json_logging",
    "current_context",
    "monotonic_time",
    "perf_clock",
    "use_context",
    "wall_clock",
]
