"""Telemetry for the whole pipeline: histograms, traces, structured logs.

The package is stdlib-only and sits *below* the runtime in the import
graph: :mod:`repro.runtime.metrics`, the shard executors, the gateway and
the persistence layer all import from here, never the other way around.
Three building blocks:

* :class:`LatencyHistogram` — mergeable log-linear latency histograms
  with fixed bucket boundaries, so per-thread and per-process shard
  histograms combine losslessly (see :mod:`repro.observability.histogram`);
* :class:`Tracer` / :class:`TraceContext` — span-based tracing with a
  serialisable context that crosses the ``ProcessShard`` pickle boundary,
  head sampling (default off), a bounded ring buffer, and Chrome
  trace-event export (see :mod:`repro.observability.tracing`);
* :class:`JsonFormatter` — a stdlib ``logging`` formatter emitting one
  JSON object per line with trace-id correlation (see
  :mod:`repro.observability.jsonlog`);
* :class:`TimeSeries` / :class:`MetricsSampler` — ring-buffered metric
  history with windowed rate/delta queries, fed by a background sampler
  polling the metric registries (see :mod:`repro.observability.timeseries`);
* :class:`SLO` / :class:`SLOEvaluator` — declarative objectives checked
  by multi-window burn-rate rules, producing typed :class:`Alert` events
  (see :mod:`repro.observability.slo`);
* :class:`HealthWatchdog` — a supervisor thread turning shard liveness
  and durability progress into a machine-readable health report (see
  :mod:`repro.observability.health`);
* :class:`SamplingProfiler` — a stdlib sampling profiler with per-query
  CPU attribution and collapsed-stack output (see
  :mod:`repro.observability.profiling`).

``python -m repro.observability summarize trace.json`` renders a
per-stage latency table and critical-path breakdown for an exported
trace file; ``python -m repro.observability top`` is a live per-query
CPU dashboard over a gateway's ``/debug/vars``.
``docs/observability.md`` documents the semantics.
"""

from repro.observability.clock import monotonic_time, perf_clock, wall_clock
from repro.observability.health import (
    HealthReason,
    HealthReport,
    HealthWatchdog,
    WatchdogConfig,
)
from repro.observability.histogram import LatencyHistogram
from repro.observability.jsonlog import JsonFormatter, configure_json_logging
from repro.observability.profiling import (
    UNTAGGED,
    SamplingProfiler,
    render_top,
    tag_query,
    untag_query,
)
from repro.observability.slo import (
    DEFAULT_RULES,
    Alert,
    BurnRateRule,
    SLO,
    SLOEvaluator,
)
from repro.observability.telemetry import Telemetry, TelemetryConfig
from repro.observability.timeseries import (
    MetricsSampler,
    TimeSeries,
    flatten_registry,
)
from repro.observability.tracing import (
    SpanHandle,
    TraceContext,
    Tracer,
    current_context,
    use_context,
)

__all__ = [
    "Alert",
    "BurnRateRule",
    "DEFAULT_RULES",
    "HealthReason",
    "HealthReport",
    "HealthWatchdog",
    "JsonFormatter",
    "LatencyHistogram",
    "MetricsSampler",
    "SLO",
    "SLOEvaluator",
    "SamplingProfiler",
    "SpanHandle",
    "Telemetry",
    "TelemetryConfig",
    "TimeSeries",
    "TraceContext",
    "Tracer",
    "UNTAGGED",
    "WatchdogConfig",
    "configure_json_logging",
    "current_context",
    "flatten_registry",
    "monotonic_time",
    "perf_clock",
    "render_top",
    "tag_query",
    "untag_query",
    "use_context",
    "wall_clock",
]
