"""repro — Learning Event Patterns for Gesture Detection (EDBT 2014).

A from-scratch reproduction of Beier, Alaqraa, Lai and Sattler,
*Learning Event Patterns for Gesture Detection*, EDBT 2014: gestures are
described declaratively as complex-event-processing (CEP) queries over a
3D-camera skeleton stream, and those queries are *learned* from a handful
of recorded samples via distance-based sampling and window merging.

Quickstart
----------
The public API is :mod:`repro.api`: a fluent query DSL plus the
:class:`~repro.api.GestureSession` façade, which owns the CEP engine, the
``kinect_t`` transformation view, the detector, the learning pipeline and
the gesture database behind one object:

>>> from repro import GestureSession, F, Q
>>> hands_up = (
...     Q.stream("kinect_t")                 # events default to this stream
...     .where(F("rhand_y") > 400)           # pose 1: right hand raised
...     .named("hands_up")                   # -> a deployable Query
... )
>>> with GestureSession() as session:        # doctest: +SKIP
...     session.deploy(hands_up)             # DSL chains, Query objects,
...     session.learn("swipe", samples,      # query text and descriptions
...                   deploy=True)           # all deploy the same way
...     session.on("swipe", print)           # exception-isolated handlers
...     session.feed(frames, batch_size=64)  # batched engine delivery path
...     session.detections(partition=1)      # per-player filtering

Learned queries render to the paper's Fig. 1 text via ``to_query()`` and
round-trip through :func:`repro.cep.parse_query`; ``quick_learn_and_detect``
below runs the whole loop on simulated data.

Scaling out
-----------
The matchers keep all their state per player, so detection over a shared
multi-user stream is embarrassingly parallel — and
``GestureSession(SessionConfig(shards=N))`` exploits it: frames are routed
to N worker shards by a stable hash of their ``player`` id, deployments
fan out to every shard, and bounded per-shard queues apply an explicit
backpressure policy (``block`` / ``drop_oldest`` / ``error``).  Per player
the detections are byte-identical to the inline engine's (benchmark B4
asserts it), ``session.metrics`` reports per-shard throughput / queue
depth / drops, and ``shard_executor="process"`` turns the shards into
worker processes for true multi-core parallelism:

>>> from repro import GestureSession, SessionConfig            # doctest: +SKIP
>>> with GestureSession(SessionConfig(shards=4)) as session:   # doctest: +SKIP
...     session.deploy_vocabulary(manifest)
...     session.feed(frames)                  # routed per player
...     session.detections(partition=2)       # == the inline sequence

``shards=1`` (the default) keeps the inline single-threaded path
untouched.  The execution layer lives in :mod:`repro.runtime` and can be
driven directly (``ShardedRuntime``) when the session façade is too much.

The package is organised by subsystem (see ``DESIGN.md`` for the full map):

``repro.api``
    the public façade: fluent query DSL + ``GestureSession``.
``repro.streams``
    push-based streams, simulated clocks, sources.
``repro.kinect``
    the Kinect skeleton-stream simulator (trajectories, users, noise).
``repro.transform``
    the user-independent ``kinect_t`` coordinate transformation.
``repro.cep``
    the CEP engine: query language, NFA matcher, views, sinks.
``repro.runtime``
    the sharded concurrent runtime: partition-hash routing, worker
    shards with backpressure, merged results, metrics.
``repro.core``
    the learning pipeline: sampling, merging, validation, optimisation,
    query generation (the paper's contribution).
``repro.storage``
    the gesture database.
``repro.detection``
    the gesture detector, recording controller and interactive workflow.
``repro.apps``
    gesture-controlled OLAP and graph navigation demos.
``repro.evaluation``
    metrics, workload generation and experiment harnesses.
"""

from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "__version__",
    "quick_learn_and_detect",
    # Lazily re-exported from repro.api (PEP 562):
    "GestureSession",
    "SessionConfig",
    "DurabilityConfig",
    "RecoveryResult",
    "ReplayController",
    "F",
    "Q",
    "QueryBuilder",
    "Expr",
]

#: Names re-exported lazily from :mod:`repro.api` so that importing
#: ``repro`` stays lightweight (no numpy import at package-import time).
_API_EXPORTS = (
    "GestureSession",
    "SessionConfig",
    "DurabilityConfig",
    "RecoveryResult",
    "ReplayController",
    "F",
    "Q",
    "QueryBuilder",
    "Expr",
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute '{name}'")


def quick_learn_and_detect(samples: int = 4, test_performances: int = 3):
    """Minimal end-to-end demo used by the README quickstart.

    Learns the ``swipe_right`` gesture from a few simulated samples,
    deploys the generated CEP query, performs the gesture a few more times
    and returns the resulting gesture events.  Thin shim over
    :class:`repro.api.GestureSession`.
    """
    from repro.api import GestureSession
    from repro.kinect import KinectSimulator, SwipeTrajectory
    from repro.streams import SimulatedClock

    simulator = KinectSimulator(clock=SimulatedClock())
    trajectory = SwipeTrajectory(direction="right")

    with GestureSession() as session:
        session.learn(
            "swipe_right",
            (
                simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
                for _ in range(samples)
            ),
            deploy=True,
        )
        for _ in range(test_performances):
            session.feed(
                simulator.perform_variation(trajectory, hold_start_s=0.2, hold_end_s=0.2)
            )
        return list(session.events)
