"""repro — Learning Event Patterns for Gesture Detection (EDBT 2014).

A from-scratch reproduction of Beier, Alaqraa, Lai and Sattler,
*Learning Event Patterns for Gesture Detection*, EDBT 2014: gestures are
described declaratively as complex-event-processing (CEP) queries over a
3D-camera skeleton stream, and those queries are *learned* from a handful
of recorded samples via distance-based sampling and window merging.

The package is organised by subsystem (see ``DESIGN.md`` for the full map):

``repro.streams``
    push-based streams, simulated clocks, sources.
``repro.kinect``
    the Kinect skeleton-stream simulator (trajectories, users, noise).
``repro.transform``
    the user-independent ``kinect_t`` coordinate transformation.
``repro.cep``
    the CEP engine: query language, NFA matcher, views, sinks.
``repro.core``
    the learning pipeline: sampling, merging, validation, optimisation,
    query generation (the paper's contribution).
``repro.storage``
    the gesture database.
``repro.detection``
    the gesture detector, recording controller and interactive workflow.
``repro.apps``
    gesture-controlled OLAP and graph navigation demos.
``repro.evaluation``
    metrics, workload generation and experiment harnesses.

Quickstart
----------
>>> from repro import quick_learn_and_detect
>>> events = quick_learn_and_detect()          # doctest: +SKIP
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "quick_learn_and_detect",
]


def quick_learn_and_detect(samples: int = 4, test_performances: int = 3):
    """Minimal end-to-end demo used by the README quickstart.

    Learns the ``swipe_right`` gesture from a few simulated samples,
    deploys the generated CEP query, performs the gesture a few more times
    and returns the resulting gesture events.
    """
    from repro.core import GestureLearner, QueryGenerator
    from repro.detection import GestureDetector
    from repro.kinect import KinectSimulator, SwipeTrajectory
    from repro.streams import SimulatedClock

    simulator = KinectSimulator(clock=SimulatedClock())
    trajectory = SwipeTrajectory(direction="right")

    learner = GestureLearner("swipe_right")
    for _ in range(samples):
        learner.add_sample(
            simulator.perform_variation(trajectory, hold_start_s=0.3, hold_end_s=0.3)
        )
    description = learner.description()

    detector = GestureDetector()
    detector.deploy(description)
    for _ in range(test_performances):
        detector.process_frames(
            simulator.perform_variation(trajectory, hold_start_s=0.2, hold_end_s=0.2)
        )
    return list(detector.events)
