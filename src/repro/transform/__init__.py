"""Data transformation into a user-independent coordinate frame (paper Sec. 3.2).

The raw Kinect stream reports joint positions in camera coordinates.  Before
learning or matching gesture patterns, every frame is transformed into a
coordinate system that is

* **position-invariant** — the torso becomes the origin, so the user may
  stand anywhere in front of the camera,
* **orientation-invariant** — the axes are rotated about the vertical so the
  user's viewing direction is fixed, regardless of how they are turned,
* **scale-invariant** — all coordinates are divided by the right-forearm
  length (hand–elbow distance), so children and adults produce comparable
  paths.

The transformation is exposed both as a plain function
(:func:`transform_frame`) and as the ``kinect_t`` view installed into the
CEP engine (:func:`repro.cep.views.install_kinect_view`), mirroring the
paper's on-the-fly view.
"""

from repro.transform.coordinate import (
    REFERENCE_FOREARM_MM,
    forearm_scale,
    shift_to_torso,
    scale_coordinates,
)
from repro.transform.rotation import (
    estimate_yaw_deg,
    roll_pitch_yaw,
    rotate_about_y,
)
from repro.transform.pipeline import KinectTransformer, TransformConfig, transform_frame
from repro.transform.angles import (
    DEFAULT_SEGMENTS,
    JointAngleTransformer,
    LimbSegment,
    install_angle_view,
)

__all__ = [
    "DEFAULT_SEGMENTS",
    "JointAngleTransformer",
    "LimbSegment",
    "install_angle_view",
    "REFERENCE_FOREARM_MM",
    "forearm_scale",
    "shift_to_torso",
    "scale_coordinates",
    "estimate_yaw_deg",
    "rotate_about_y",
    "roll_pitch_yaw",
    "KinectTransformer",
    "TransformConfig",
    "transform_frame",
]
