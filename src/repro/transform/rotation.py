"""Orientation normalisation and Roll-Pitch-Yaw operators (paper Sec. 3.2).

The paper rotates the coordinate axes so the user's viewing direction
becomes a fixed axis ("East-North-Up ground reference frame as it is used
for land vehicles") and implements Roll-Pitch-Yaw angle operators as
user-defined functions in AnduIN so queries can express rotational
movements (e.g. a wave) directly.

Here the user's heading (yaw) is estimated from the shoulder line — the
vector from the left to the right shoulder is perpendicular to the viewing
direction — and all torso-relative coordinates are rotated about the
vertical axis so that a user turned away from the camera produces the same
numbers as one facing it.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from repro.kinect.skeleton import JOINTS, TRACKED_AXES, joint_field


def estimate_yaw_deg(frame: Mapping[str, float]) -> float:
    """Estimate the user's heading about the vertical axis, in degrees.

    A user squarely facing the camera has their shoulder line parallel to
    the camera X axis, which this function reports as 0°.  Positive angles
    mean the user has turned to their left.

    Falls back to 0° when shoulder joints are missing (e.g. partial frames).
    """
    try:
        dx = frame["rshoulder_x"] - frame["lshoulder_x"]
        dz = frame["rshoulder_z"] - frame["lshoulder_z"]
    except KeyError:
        return 0.0
    if abs(dx) < 1e-9 and abs(dz) < 1e-9:
        return 0.0
    # For yaw=0 the shoulder line is (+1, 0, 0); rotation about Y by angle a
    # maps it to (cos a, 0, -sin a), hence a = atan2(-dz, dx).
    return math.degrees(math.atan2(-dz, dx))


def rotate_about_y(
    frame: Mapping[str, float],
    angle_deg: float,
) -> Dict[str, float]:
    """Rotate all joint coordinates about the vertical (Y) axis.

    Parameters
    ----------
    frame:
        A torso-relative frame.
    angle_deg:
        Rotation angle in degrees; pass ``-estimate_yaw_deg(frame)`` to
        cancel the user's heading.
    """
    angle = math.radians(angle_deg)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    rotated: Dict[str, float] = dict(frame)
    for joint in JOINTS:
        x_key, z_key = joint_field(joint, "x"), joint_field(joint, "z")
        if x_key in frame and z_key in frame:
            x, z = frame[x_key], frame[z_key]
            rotated[x_key] = cos_a * x + sin_a * z
            rotated[z_key] = -sin_a * x + cos_a * z
    return rotated


def roll_pitch_yaw(
    origin: Tuple[float, float, float],
    target: Tuple[float, float, float],
) -> Tuple[float, float, float]:
    """Roll-Pitch-Yaw angles (degrees) of the vector from ``origin`` to ``target``.

    These are the rotational operators the paper registers as user-defined
    functions so queries can express rotational movements (a wave is "the
    forearm's yaw oscillates").  Conventions for the user-relative ENU-style
    frame used throughout this library:

    * **yaw** — heading of the vector in the horizontal (X/Z) plane,
    * **pitch** — elevation above the horizontal plane,
    * **roll** — rotation about the vector itself, which cannot be derived
      from two points alone and is therefore reported as 0; it is kept in
      the signature for interface compatibility with the paper's operator.
    """
    dx = target[0] - origin[0]
    dy = target[1] - origin[1]
    dz = target[2] - origin[2]
    horizontal = math.sqrt(dx * dx + dz * dz)
    yaw = math.degrees(math.atan2(-dz, dx)) if (dx or dz) else 0.0
    pitch = math.degrees(math.atan2(dy, horizontal)) if (dy or horizontal) else 0.0
    roll = 0.0
    return roll, pitch, yaw


def joint_roll_pitch_yaw(
    frame: Mapping[str, float],
    from_joint: str,
    to_joint: str,
) -> Tuple[float, float, float]:
    """RPY angles of the limb segment between two joints in one frame."""
    origin = tuple(frame[joint_field(from_joint, axis)] for axis in TRACKED_AXES)
    target = tuple(frame[joint_field(to_joint, axis)] for axis in TRACKED_AXES)
    return roll_pitch_yaw(origin, target)  # type: ignore[arg-type]
