"""Position and scale normalisation of skeleton frames.

Implements the two per-frame normalisations of paper Sec. 3.2:

* shifting all joints by the torso position (position invariance), and
* dividing by the right-forearm length (scale invariance), optionally
  re-expressed in "reference millimetres" so transformed coordinates remain
  in a familiar range (the paper's Fig. 1 windows such as ``(800, 150, -120)``
  with width 50 are in this range).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.kinect.skeleton import JOINTS, TRACKED_AXES, joint_field

#: Forearm length (hand–elbow distance) of the reference 1.75 m adult in mm.
#: Dividing by the measured forearm length and multiplying by this constant
#: maps every user onto the reference user's proportions.
REFERENCE_FOREARM_MM = 243.0

#: Minimum plausible forearm length; measurements below this are treated as
#: tracking glitches and replaced by the last valid value (or the reference).
_MIN_FOREARM_MM = 40.0


def forearm_scale(
    frame: Mapping[str, float],
    side: str = "right",
    fallback: float = REFERENCE_FOREARM_MM,
) -> float:
    """Return the user's forearm length (mm) measured from one frame.

    The paper uses the Euclidean distance between the right hand and the
    right elbow as the body-size scale factor; it is constant regardless of
    the user's orientation toward the camera.

    Parameters
    ----------
    frame:
        A raw sensor tuple.
    side:
        ``"right"`` (paper default) or ``"left"``.
    fallback:
        Value returned when the required joints are missing or the measured
        distance is implausibly small (lost tracking).
    """
    prefix = "r" if side == "right" else "l"
    try:
        dx = frame[f"{prefix}hand_x"] - frame[f"{prefix}elbow_x"]
        dy = frame[f"{prefix}hand_y"] - frame[f"{prefix}elbow_y"]
        dz = frame[f"{prefix}hand_z"] - frame[f"{prefix}elbow_z"]
    except KeyError:
        return fallback
    length = math.sqrt(dx * dx + dy * dy + dz * dz)
    if length < _MIN_FOREARM_MM:
        return fallback
    return length


def present_joints(frame: Mapping[str, float]) -> Tuple[str, ...]:
    """Return the joints for which the frame carries all three coordinates."""
    joints = []
    for joint in JOINTS:
        if all(joint_field(joint, axis) in frame for axis in TRACKED_AXES):
            joints.append(joint)
    return tuple(joints)


def shift_to_torso(
    frame: Mapping[str, float],
    joints: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """Shift every joint by the torso position (torso becomes the origin).

    Non-joint fields (``ts``, ``player``) are copied through unchanged.

    Raises
    ------
    KeyError
        If the frame has no torso coordinates — without them position
        invariance is impossible.
    """
    tx = frame["torso_x"]
    ty = frame["torso_y"]
    tz = frame["torso_z"]
    selected = tuple(joints) if joints is not None else present_joints(frame)
    shifted: Dict[str, float] = {
        key: value
        for key, value in frame.items()
        if not _is_joint_field(key)
    }
    for joint in selected:
        shifted[joint_field(joint, "x")] = frame[joint_field(joint, "x")] - tx
        shifted[joint_field(joint, "y")] = frame[joint_field(joint, "y")] - ty
        shifted[joint_field(joint, "z")] = frame[joint_field(joint, "z")] - tz
    return shifted


def scale_coordinates(
    frame: Mapping[str, float],
    scale: float,
    reference: float = REFERENCE_FOREARM_MM,
) -> Dict[str, float]:
    """Scale all joint coordinates by ``reference / scale``.

    With ``scale`` equal to the user's forearm length this maps every user
    onto the reference adult's proportions: the same gesture performed by a
    child and a tall adult yields (approximately) the same numbers.

    Parameters
    ----------
    frame:
        A torso-relative frame (output of :func:`shift_to_torso`).
    scale:
        The user's measured forearm length in millimetres.
    reference:
        The target forearm length; pass ``1.0`` to obtain coordinates in
        forearm units (the formulation used verbatim in the paper's Fig. 3).
    """
    if scale <= 0:
        raise ValueError("scale factor must be positive")
    factor = reference / scale
    scaled: Dict[str, float] = {}
    for key, value in frame.items():
        if _is_joint_field(key):
            scaled[key] = value * factor
        else:
            scaled[key] = value
    return scaled


@lru_cache(maxsize=4096)
def _is_joint_field(key: str) -> bool:
    # Cached: streams carry the same few dozen field names on every frame.
    if "_" not in key:
        return False
    joint, _, axis = key.rpartition("_")
    return joint in JOINTS and axis in TRACKED_AXES
