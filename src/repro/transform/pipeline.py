"""The ``kinect_t`` transformation pipeline.

Combines the three normalisations of paper Sec. 3.2 — torso shift,
orientation alignment and forearm scaling — into a single per-frame
transformation.  The paper stresses that "for applying all transformations,
only a single step needs to be performed on the incoming data stream" and
exposes it as a view (``kinect_t``); :class:`KinectTransformer` is that
single step, and :func:`repro.cep.views.install_kinect_view` registers it
with the CEP engine as a derived stream.

The transformer's only state is the exponentially smoothed forearm scale.
In a shared sensor space that state must never be shared between users — a
child and a tall adult in front of the same camera would otherwise blend
their scale factors — so it is kept *per partition*, keyed by the frame's
``player`` field (``TransformConfig.partition_field``).  Smoothing state of
players that left the scene is evicted after
``TransformConfig.partition_idle_seconds`` of inactivity, both to bound
memory and so a player who steps back in starts from a fresh measurement
(the eviction decision only looks at that player's own timestamps, which
keeps multi-user streams frame-for-frame identical to isolated ones).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

from repro.transform.coordinate import (
    REFERENCE_FOREARM_MM,
    forearm_scale,
    scale_coordinates,
    shift_to_torso,
)
from repro.transform.rotation import estimate_yaw_deg, rotate_about_y

#: How many frames pass between sweeps that evict idle partitions' smoothing
#: state.  Output-neutral: a partition idle past the TTL is reset on its next
#: own frame anyway; the sweep only reclaims memory earlier.
_EVICTION_SWEEP_FRAMES = 256


@dataclass(frozen=True)
class TransformConfig:
    """Configuration of the user-independent transformation.

    Attributes
    ----------
    align_orientation:
        Rotate the frame so the user's heading is cancelled.  The paper's
        demos assume the user roughly faces the camera; turning this on
        makes detection robust to the user being rotated.
    scale_side:
        Which forearm provides the scale factor (paper: right).
    scale_reference_mm:
        Transformed coordinates are expressed as if the user had a forearm
        of this length.  ``REFERENCE_FOREARM_MM`` keeps values in familiar
        millimetre ranges; ``1.0`` yields pure forearm units as in Fig. 3.
    smooth_scale:
        Exponential smoothing factor in ``[0, 1)`` applied to the per-frame
        forearm measurement; sensor noise on two joints otherwise makes the
        scale factor itself jitter.  ``0`` disables smoothing.
    partition_field:
        Frame field that keys the smoothing state (default ``"player"``).
        Each tracked player smooths against their own history only.  Frames
        missing the field share one slot; ``None`` keeps a single shared
        smoothing state for the whole stream (the single-user behaviour).
    partition_idle_seconds:
        Evict a player's smoothing state after this many seconds without a
        frame from them; their next frame starts from a fresh measurement.
        ``None`` keeps state forever (single long-lived user).
    timestamp_field:
        Frame field carrying the event time used for idle eviction.
    """

    align_orientation: bool = True
    scale_side: str = "right"
    scale_reference_mm: float = REFERENCE_FOREARM_MM
    smooth_scale: float = 0.8
    partition_field: Optional[str] = "player"
    partition_idle_seconds: Optional[float] = 30.0
    timestamp_field: str = "ts"

    def __post_init__(self) -> None:
        if self.scale_side not in ("right", "left"):
            raise ValueError("scale_side must be 'right' or 'left'")
        if not 0.0 <= self.smooth_scale < 1.0:
            raise ValueError("smooth_scale must be in [0, 1)")
        if self.scale_reference_mm <= 0:
            raise ValueError("scale_reference_mm must be positive")
        if self.partition_idle_seconds is not None and self.partition_idle_seconds <= 0:
            raise ValueError("partition_idle_seconds must be positive when given")


class KinectTransformer:
    """Stateful per-frame transformation into user-independent coordinates.

    The transformer is stateful only for scale smoothing — kept separately
    per tracked player (see :class:`TransformConfig`) — and can be shared
    between the learning pipeline and the deployed detector so both see the
    same coordinates.

    Examples
    --------
    >>> from repro.kinect import KinectSimulator
    >>> from repro.streams import SimulatedClock
    >>> sim = KinectSimulator(clock=SimulatedClock())
    >>> frame = sim.measure_rest()
    >>> transformer = KinectTransformer()
    >>> transformed = transformer.transform(frame)
    >>> abs(transformed["torso_x"]) < 1e-6
    True
    """

    def __init__(self, config: Optional[TransformConfig] = None) -> None:
        self.config = config or TransformConfig()
        self._scales: Dict[Any, float] = {}
        self._last_seen: Dict[Any, float] = {}
        self.frames_transformed = 0

    def reset(self) -> None:
        """Forget all smoothed scales (e.g. when the scene is re-populated)."""
        self._scales.clear()
        self._last_seen.clear()
        self.frames_transformed = 0

    def reset_partition(self, partition: Any) -> None:
        """Forget one player's smoothed scale (when a new user takes the id)."""
        self._scales.pop(partition, None)
        self._last_seen.pop(partition, None)

    @property
    def active_partitions(self) -> int:
        """Number of players currently holding smoothing state."""
        return len(self._scales)

    def smoothed_scale(self, partition: Any = None) -> Optional[float]:
        """Current smoothed forearm scale of one player (``None`` if unseen)."""
        return self._scales.get(partition)

    # -- state capture / restore --------------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Snapshot the smoothing state as a JSON-serialisable dictionary.

        Partition keys are stored as ``[key, value]`` pairs (JSON objects
        only allow string keys, player ids are usually ints); the eviction
        sweep phase rides along in ``frames_transformed`` so a restored
        transformer sweeps on exactly the frames the original would have.
        """
        return {
            "kind": "kinect-transformer",
            "scales": [[key, scale] for key, scale in self._scales.items()],
            "last_seen": [[key, seen] for key, seen in self._last_seen.items()],
            "frames_transformed": self.frames_transformed,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Replace the smoothing state with a :meth:`capture_state` snapshot."""
        if state.get("kind") != "kinect-transformer":
            from repro.errors import SerializationError

            raise SerializationError(
                f"cannot restore a KinectTransformer from a "
                f"{state.get('kind')!r} state blob"
            )
        self._scales = {key: float(scale) for key, scale in state["scales"]}
        self._last_seen = {key: float(seen) for key, seen in state["last_seen"]}
        self.frames_transformed = int(state["frames_transformed"])

    def _current_scale(self, frame: Mapping[str, float]) -> float:
        cfg = self.config
        key = frame.get(cfg.partition_field) if cfg.partition_field is not None else None
        timestamp = frame.get(cfg.timestamp_field)
        if timestamp is not None:
            timestamp = float(timestamp)
            ttl = cfg.partition_idle_seconds
            if ttl is not None:
                last = self._last_seen.get(key)
                if last is not None and timestamp - last > ttl:
                    # The player left and came back: their body may have
                    # changed (a different person took the id) — re-measure.
                    self._scales.pop(key, None)
                if self.frames_transformed % _EVICTION_SWEEP_FRAMES == 0:
                    self._evict_idle(timestamp, ttl)
            self._last_seen[key] = timestamp
        measured = forearm_scale(frame, side=cfg.scale_side)
        alpha = cfg.smooth_scale
        previous = self._scales.get(key)
        if alpha <= 0 or previous is None:
            smoothed = measured
        else:
            smoothed = alpha * previous + (1 - alpha) * measured
        self._scales[key] = smoothed
        return smoothed

    def _evict_idle(self, now: float, ttl: float) -> None:
        """Reclaim smoothing state of players idle longer than ``ttl``."""
        idle = [key for key, last in self._last_seen.items() if now - last > ttl]
        for key in idle:
            self._scales.pop(key, None)
            self._last_seen.pop(key, None)

    def transform(self, frame: Mapping[str, float]) -> Dict[str, float]:
        """Transform one raw sensor frame into the ``kinect_t`` frame."""
        scale = self._current_scale(frame)
        shifted = shift_to_torso(frame)
        if self.config.align_orientation:
            yaw = estimate_yaw_deg(shifted)
            shifted = rotate_about_y(shifted, -yaw)
        transformed = scale_coordinates(
            shifted, scale=scale, reference=self.config.scale_reference_mm
        )
        transformed["scale"] = scale
        self.frames_transformed += 1
        return transformed

    def __call__(self, frame: Mapping[str, float]) -> Dict[str, float]:
        return self.transform(frame)


def transform_frame(
    frame: Mapping[str, float],
    config: Optional[TransformConfig] = None,
) -> Dict[str, float]:
    """One-shot (stateless) transformation of a single frame.

    Convenience wrapper around :class:`KinectTransformer` without scale
    smoothing, mainly for tests and interactive exploration.
    """
    cfg = config or TransformConfig(smooth_scale=0.0)
    if cfg.smooth_scale != 0.0:
        cfg = replace(cfg, smooth_scale=0.0)
    return KinectTransformer(cfg).transform(frame)
