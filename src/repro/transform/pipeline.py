"""The ``kinect_t`` transformation pipeline.

Combines the three normalisations of paper Sec. 3.2 — torso shift,
orientation alignment and forearm scaling — into a single per-frame
transformation.  The paper stresses that "for applying all transformations,
only a single step needs to be performed on the incoming data stream" and
exposes it as a view (``kinect_t``); :class:`KinectTransformer` is that
single step, and :func:`repro.cep.views.install_kinect_view` registers it
with the CEP engine as a derived stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.transform.coordinate import (
    REFERENCE_FOREARM_MM,
    forearm_scale,
    scale_coordinates,
    shift_to_torso,
)
from repro.transform.rotation import estimate_yaw_deg, rotate_about_y


@dataclass(frozen=True)
class TransformConfig:
    """Configuration of the user-independent transformation.

    Attributes
    ----------
    align_orientation:
        Rotate the frame so the user's heading is cancelled.  The paper's
        demos assume the user roughly faces the camera; turning this on
        makes detection robust to the user being rotated.
    scale_side:
        Which forearm provides the scale factor (paper: right).
    scale_reference_mm:
        Transformed coordinates are expressed as if the user had a forearm
        of this length.  ``REFERENCE_FOREARM_MM`` keeps values in familiar
        millimetre ranges; ``1.0`` yields pure forearm units as in Fig. 3.
    smooth_scale:
        Exponential smoothing factor in ``[0, 1)`` applied to the per-frame
        forearm measurement; sensor noise on two joints otherwise makes the
        scale factor itself jitter.  ``0`` disables smoothing.
    """

    align_orientation: bool = True
    scale_side: str = "right"
    scale_reference_mm: float = REFERENCE_FOREARM_MM
    smooth_scale: float = 0.8

    def __post_init__(self) -> None:
        if self.scale_side not in ("right", "left"):
            raise ValueError("scale_side must be 'right' or 'left'")
        if not 0.0 <= self.smooth_scale < 1.0:
            raise ValueError("smooth_scale must be in [0, 1)")
        if self.scale_reference_mm <= 0:
            raise ValueError("scale_reference_mm must be positive")


class KinectTransformer:
    """Stateful per-frame transformation into user-independent coordinates.

    The transformer is stateful only for scale smoothing; it can be shared
    between the learning pipeline and the deployed detector so both see the
    same coordinates.

    Examples
    --------
    >>> from repro.kinect import KinectSimulator
    >>> from repro.streams import SimulatedClock
    >>> sim = KinectSimulator(clock=SimulatedClock())
    >>> frame = sim.measure_rest()
    >>> transformer = KinectTransformer()
    >>> transformed = transformer.transform(frame)
    >>> abs(transformed["torso_x"]) < 1e-6
    True
    """

    def __init__(self, config: Optional[TransformConfig] = None) -> None:
        self.config = config or TransformConfig()
        self._smoothed_scale: Optional[float] = None
        self.frames_transformed = 0

    def reset(self) -> None:
        """Forget the smoothed scale (e.g. when a new user steps in)."""
        self._smoothed_scale = None
        self.frames_transformed = 0

    def _current_scale(self, frame: Mapping[str, float]) -> float:
        measured = forearm_scale(frame, side=self.config.scale_side)
        alpha = self.config.smooth_scale
        if alpha <= 0 or self._smoothed_scale is None:
            self._smoothed_scale = measured
        else:
            self._smoothed_scale = alpha * self._smoothed_scale + (1 - alpha) * measured
        return self._smoothed_scale

    def transform(self, frame: Mapping[str, float]) -> Dict[str, float]:
        """Transform one raw sensor frame into the ``kinect_t`` frame."""
        scale = self._current_scale(frame)
        shifted = shift_to_torso(frame)
        if self.config.align_orientation:
            yaw = estimate_yaw_deg(shifted)
            shifted = rotate_about_y(shifted, -yaw)
        transformed = scale_coordinates(
            shifted, scale=scale, reference=self.config.scale_reference_mm
        )
        transformed["scale"] = scale
        self.frames_transformed += 1
        return transformed

    def __call__(self, frame: Mapping[str, float]) -> Dict[str, float]:
        return self.transform(frame)


def transform_frame(
    frame: Mapping[str, float],
    config: Optional[TransformConfig] = None,
) -> Dict[str, float]:
    """One-shot (stateless) transformation of a single frame.

    Convenience wrapper around :class:`KinectTransformer` without scale
    smoothing, mainly for tests and interactive exploration.
    """
    cfg = config or TransformConfig(smooth_scale=0.0)
    if cfg.smooth_scale != 0.0:
        cfg = TransformConfig(
            align_orientation=cfg.align_orientation,
            scale_side=cfg.scale_side,
            scale_reference_mm=cfg.scale_reference_mm,
            smooth_scale=0.0,
        )
    return KinectTransformer(cfg).transform(frame)
