"""Joint-angle view: expressing limbs by Euler/RPY angles (paper Sec. 3.2 outlook).

The paper registers Roll-Pitch-Yaw operators as UDFs and notes that "other
transformations are possible with this declarative approach, e.g.,
expressing joints with Euler angles".  A wave, for example, is awkward to
describe with positional windows (the hand oscillates around one spot) but
trivial with angles: the forearm's yaw swings back and forth while its pitch
stays high.

This module provides that transformation as a per-frame enrichment step and
as an engine view (``kinect_a``): for each configured limb segment the
pitch and yaw of the vector from its proximal to its distal joint are added
as flat fields (``rforearm_pitch``, ``rforearm_yaw``, …), so both queries and
the learning pipeline can constrain angles exactly like coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.kinect.skeleton import TRACKED_AXES, joint_field
from repro.transform.rotation import roll_pitch_yaw

#: Limb segments enriched by default: (segment name, proximal joint, distal joint).
DEFAULT_SEGMENTS: Tuple[Tuple[str, str, str], ...] = (
    ("rforearm", "relbow", "rhand"),
    ("lforearm", "lelbow", "lhand"),
    ("rupperarm", "rshoulder", "relbow"),
    ("lupperarm", "lshoulder", "lelbow"),
)


@dataclass(frozen=True)
class LimbSegment:
    """One limb segment whose orientation angles are computed per frame."""

    name: str
    proximal: str
    distal: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a limb segment needs a name")
        if self.proximal == self.distal:
            raise ValueError("proximal and distal joints must differ")

    def fields(self) -> Tuple[str, str, str]:
        """Names of the angle fields this segment adds to a frame."""
        return (f"{self.name}_roll", f"{self.name}_pitch", f"{self.name}_yaw")


class JointAngleTransformer:
    """Adds limb-orientation angles (degrees) to skeleton frames.

    The transformer is stateless and composes with the positional
    :class:`~repro.transform.pipeline.KinectTransformer`: apply it to
    *transformed* (torso-relative) frames so the angles are expressed in the
    same user-aligned reference frame as the coordinates.

    Parameters
    ----------
    segments:
        Limb segments to enrich; defaults to both forearms and upper arms.
    keep_missing:
        When a segment's joints are missing from a frame the angle fields
        are simply omitted (``True``, default) instead of raising.
    """

    def __init__(
        self,
        segments: Optional[Sequence[LimbSegment]] = None,
        keep_missing: bool = True,
    ) -> None:
        if segments is None:
            segments = [LimbSegment(*entry) for entry in DEFAULT_SEGMENTS]
        if not segments:
            raise ValueError("at least one limb segment is required")
        self.segments = list(segments)
        self.keep_missing = keep_missing
        self.frames_transformed = 0

    def angle_fields(self) -> List[str]:
        """All angle field names this transformer can add."""
        names: List[str] = []
        for segment in self.segments:
            names.extend(segment.fields())
        return names

    def _segment_angles(
        self, frame: Mapping[str, float], segment: LimbSegment
    ) -> Optional[Tuple[float, float, float]]:
        try:
            origin = tuple(
                float(frame[joint_field(segment.proximal, axis)]) for axis in TRACKED_AXES
            )
            target = tuple(
                float(frame[joint_field(segment.distal, axis)]) for axis in TRACKED_AXES
            )
        except (KeyError, ValueError):
            if self.keep_missing:
                return None
            raise
        return roll_pitch_yaw(origin, target)  # type: ignore[arg-type]

    def transform(self, frame: Mapping[str, float]) -> Dict[str, float]:
        """Return a copy of ``frame`` enriched with the angle fields."""
        enriched = dict(frame)
        for segment in self.segments:
            angles = self._segment_angles(frame, segment)
            if angles is None:
                continue
            roll, pitch, yaw = angles
            roll_field, pitch_field, yaw_field = segment.fields()
            enriched[roll_field] = roll
            enriched[pitch_field] = pitch
            enriched[yaw_field] = yaw
        self.frames_transformed += 1
        return enriched

    def __call__(self, frame: Mapping[str, float]) -> Dict[str, float]:
        return self.transform(frame)


def install_angle_view(
    engine: "CEPEngine",
    source: str = "kinect_t",
    view_name: str = "kinect_a",
    segments: Optional[Sequence[LimbSegment]] = None,
):
    """Install a ``kinect_a`` view that adds limb angles to the transformed stream.

    Queries can then constrain rotational movement directly, e.g. a wave::

        SELECT "wave"
        MATCHING kinect_a(rforearm_yaw > 25 and rforearm_pitch > 40) ->
                 kinect_a(rforearm_yaw < -25 and rforearm_pitch > 40) ->
                 kinect_a(rforearm_yaw > 25 and rforearm_pitch > 40)
        within 2 seconds select first consume all;

    Returns the installed view.
    """
    transformer = JointAngleTransformer(segments=segments)
    return engine.register_view(view_name, source, transformer)


# Imported only for the type reference in the signature above.
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from repro.cep.engine import CEPEngine
