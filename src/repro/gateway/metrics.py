"""Gateway edge counters and the asyncio loop-lag monitor.

:class:`GatewayMetrics` is the edge-side sibling of the runtime's
:class:`~repro.runtime.metrics.ShardMetrics`: connections, frames in and
out, tuples admitted and dropped, detections pushed, typed errors sent,
and how far behind the event loop is running.  Everything snapshots to
plain numbers (the ``/metrics`` JSON document) and renders to the
Prometheus text exposition format via the same helpers the
:class:`~repro.runtime.metrics.MetricsRegistry` uses.

Loop lag — the time between when a timer *should* fire and when the loop
actually ran it — is the single most honest saturation signal an asyncio
server has: blocking the loop (an unexecutored feed, a huge JSON dump)
shows up here before it shows up anywhere else.  :class:`LoopLagMonitor`
samples it on a fixed interval with an EWMA and a high-water mark.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from repro.observability.histogram import LatencyHistogram
from repro.runtime.metrics import histogram_exposition, prometheus_sample

__all__ = ["GatewayMetrics", "LoopLagMonitor"]


class GatewayMetrics:
    """Edge counters of one gateway server.  All methods are thread-safe
    (feeds run on executor threads; everything else on the loop)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._connections_opened = 0
        self._connections_closed = 0
        self._connections_rejected = 0
        self._frames_in = 0
        self._frames_out = 0
        self._tuples_in = 0
        self._tuples_accepted = 0
        self._tuples_dropped = 0
        self._detections_pushed = 0
        self._errors_sent = 0
        self._loop_lag_ewma = 0.0
        self._loop_lag_max = 0.0
        #: Wall time of one ``tuples`` frame from receipt to ack —
        #: admission wait included, so backpressure stalls are visible.
        self.request_latency = LatencyHistogram()

    # -- writers -----------------------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_closed += 1

    def connection_rejected(self) -> None:
        with self._lock:
            self._connections_rejected += 1

    def add_frame_in(self, count: int = 1) -> None:
        with self._lock:
            self._frames_in += count

    def add_frame_out(self, count: int = 1) -> None:
        with self._lock:
            self._frames_out += count

    def add_tuples(self, offered: int, accepted: int, dropped: int) -> None:
        with self._lock:
            self._tuples_in += offered
            self._tuples_accepted += accepted
            self._tuples_dropped += dropped

    def add_detections_pushed(self, count: int = 1) -> None:
        with self._lock:
            self._detections_pushed += count

    def add_error_sent(self) -> None:
        with self._lock:
            self._errors_sent += 1

    def record_request_seconds(self, seconds: float) -> None:
        with self._lock:
            self.request_latency.record(seconds)

    def record_loop_lag(self, lag_seconds: float) -> None:
        with self._lock:
            # EWMA with a ~20-sample horizon; plus the all-time high-water.
            self._loop_lag_ewma += 0.05 * (lag_seconds - self._loop_lag_ewma)
            if lag_seconds > self._loop_lag_max:
                self._loop_lag_max = lag_seconds

    # -- readers -----------------------------------------------------------------------

    @property
    def connections_active(self) -> int:
        with self._lock:
            return self._connections_opened - self._connections_closed

    @property
    def tuples_accepted(self) -> int:
        with self._lock:
            return self._tuples_accepted

    @property
    def tuples_dropped(self) -> int:
        with self._lock:
            return self._tuples_dropped

    def snapshot(self) -> Dict[str, float]:
        """A JSON-serialisable copy of every counter."""
        with self._lock:
            return {
                "connections_opened": self._connections_opened,
                "connections_closed": self._connections_closed,
                "connections_active": self._connections_opened - self._connections_closed,
                "connections_rejected": self._connections_rejected,
                "frames_in": self._frames_in,
                "frames_out": self._frames_out,
                "tuples_in": self._tuples_in,
                "tuples_accepted": self._tuples_accepted,
                "tuples_dropped": self._tuples_dropped,
                "detections_pushed": self._detections_pushed,
                "errors_sent": self._errors_sent,
                "loop_lag_ewma_seconds": round(self._loop_lag_ewma, 6),
                "loop_lag_max_seconds": round(self._loop_lag_max, 6),
                "request_latency": self.request_latency.summary(),
            }

    #: snapshot key -> (metric name, type, help) for the exposition format.
    _FAMILIES = (
        ("connections_opened", "repro_gateway_connections_opened_total", "counter", "Websocket connections accepted."),
        ("connections_closed", "repro_gateway_connections_closed_total", "counter", "Websocket connections ended."),
        ("connections_active", "repro_gateway_connections_active", "gauge", "Currently open websocket connections."),
        ("connections_rejected", "repro_gateway_connections_rejected_total", "counter", "Connections refused by admission control."),
        ("frames_in", "repro_gateway_frames_in_total", "counter", "Protocol frames received."),
        ("frames_out", "repro_gateway_frames_out_total", "counter", "Protocol frames sent."),
        ("tuples_in", "repro_gateway_tuples_in_total", "counter", "Tuples offered by clients."),
        ("tuples_accepted", "repro_gateway_tuples_accepted_total", "counter", "Tuples admitted past edge admission control."),
        ("tuples_dropped", "repro_gateway_tuples_dropped_total", "counter", "Tuples dropped at the edge (admission policies)."),
        ("detections_pushed", "repro_gateway_detections_pushed_total", "counter", "Detection events pushed to subscribers."),
        ("errors_sent", "repro_gateway_errors_sent_total", "counter", "Typed error frames sent."),
        ("loop_lag_ewma_seconds", "repro_gateway_loop_lag_ewma_seconds", "gauge", "Exponentially weighted mean asyncio loop lag."),
        ("loop_lag_max_seconds", "repro_gateway_loop_lag_max_seconds", "gauge", "High-water mark of the asyncio loop lag."),
    )

    def to_prometheus(self) -> str:
        """Every counter in the Prometheus text exposition format."""
        snap = self.snapshot()
        lines = []
        for key, metric, kind, help_text in self._FAMILIES:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(prometheus_sample(metric, snap[key]))
        with self._lock:
            request_latency = LatencyHistogram.merged([self.request_latency])
        lines.extend(
            histogram_exposition(
                "repro_gateway_request_seconds",
                "Wall time of one tuples frame from receipt to ack.",
                request_latency,
            )
        )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"GatewayMetrics(active={snap['connections_active']}, "
            f"tuples={snap['tuples_accepted']}, "
            f"dropped={snap['tuples_dropped']}, "
            f"pushed={snap['detections_pushed']})"
        )


class LoopLagMonitor:
    """Periodically measures how late the event loop runs its timers."""

    def __init__(self, metrics: GatewayMetrics, interval: float = 0.05) -> None:
        self.metrics = metrics
        self.interval = interval
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-gateway-loop-lag"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            lag = loop.time() - before - self.interval
            self.metrics.record_loop_lag(max(0.0, lag))
