"""A minimal RFC 6455 websocket implementation on asyncio streams.

Stdlib-only by design (the repo's optional-dependency rule): the gateway
needs exactly the subset of the protocol a framed JSON message channel
uses — text/binary data frames with the three length encodings, client
masking, ping/pong keepalive, close handshake, and message fragmentation
reassembly.  No extensions (``permessage-deflate`` is not negotiated) and
no subprotocols.

The same :class:`WebSocketConnection` serves both ends: the server wraps
an accepted connection with ``role="server"`` (incoming frames *must* be
masked, outgoing frames are not), the client with ``role="client"`` (the
mirror image).  Violations close the connection with status 1002 and
raise :class:`~repro.errors.WebSocketError` — the gateway maps that to a
dead connection, never to a dead server.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from typing import Optional, Tuple

from repro.errors import (
    ConnectionClosedError,
    MessageTooBigError,
    WebSocketError,
)

__all__ = [
    "CLOSE_GOING_AWAY",
    "CLOSE_INTERNAL_ERROR",
    "CLOSE_MESSAGE_TOO_BIG",
    "CLOSE_NORMAL",
    "CLOSE_POLICY_VIOLATION",
    "CLOSE_PROTOCOL_ERROR",
    "CLOSE_TRY_AGAIN_LATER",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_CONTINUATION",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WebSocketConnection",
    "accept_key",
    "encode_frame",
]

#: RFC 6455 §1.3 — the fixed GUID appended to the client key.
_HANDSHAKE_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_DATA_OPCODES = (OP_TEXT, OP_BINARY)
_CONTROL_OPCODES = (OP_CLOSE, OP_PING, OP_PONG)

CLOSE_NORMAL = 1000
CLOSE_GOING_AWAY = 1001
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_POLICY_VIOLATION = 1008
CLOSE_MESSAGE_TOO_BIG = 1009
CLOSE_INTERNAL_ERROR = 1011
CLOSE_TRY_AGAIN_LATER = 1013


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + _HANDSHAKE_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    """XOR ``payload`` with the repeating 4-byte ``mask`` (involutory)."""
    if not payload:
        return payload
    repeated = (mask * (len(payload) // 4 + 1))[: len(payload)]
    return (
        int.from_bytes(payload, "big") ^ int.from_bytes(repeated, "big")
    ).to_bytes(len(payload), "big")


def encode_frame(
    opcode: int,
    payload: bytes,
    masked: bool = False,
    fin: bool = True,
) -> bytes:
    """Serialise one frame (FIN/opcode, length encoding, optional mask)."""
    header = bytearray()
    header.append((0x80 if fin else 0) | opcode)
    mask_bit = 0x80 if masked else 0
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header.extend(struct.pack(">H", length))
    else:
        header.append(mask_bit | 127)
        header.extend(struct.pack(">Q", length))
    if masked:
        mask = os.urandom(4)
        header.extend(mask)
        payload = _apply_mask(payload, mask)
    return bytes(header) + payload


class WebSocketConnection:
    """One established websocket over an asyncio stream pair.

    ``receive_message()`` returns reassembled data messages as
    ``(opcode, payload)`` and transparently answers pings; a clean or
    abrupt close raises :class:`~repro.errors.ConnectionClosedError`
    (the received close code, if any, is on the exception).  All sends
    are serialised by an internal lock, so the detections push channel
    and request replies can interleave safely.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        role: str = "server",
        max_message_bytes: int = 1 << 20,
    ) -> None:
        if role not in ("server", "client"):
            raise ValueError("role must be 'server' or 'client'")
        self._reader = reader
        self._writer = writer
        self._role = role
        self.max_message_bytes = max_message_bytes
        self.close_code: Optional[int] = None
        self.close_reason: str = ""
        self._closed = False
        self._send_lock = asyncio.Lock()

    # -- sending -----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    async def _send_frame(self, opcode: int, payload: bytes, fin: bool = True) -> None:
        frame = encode_frame(
            opcode, payload, masked=self._role == "client", fin=fin
        )
        async with self._send_lock:
            if self._closed:
                raise ConnectionClosedError("cannot send on a closed websocket")
            self._writer.write(frame)
            try:
                await self._writer.drain()
            except (ConnectionError, OSError) as error:
                self._closed = True
                raise ConnectionClosedError(f"peer dropped: {error}") from error

    async def send_text(self, text: str) -> None:
        await self._send_frame(OP_TEXT, text.encode("utf-8"))

    async def send_binary(self, payload: bytes) -> None:
        await self._send_frame(OP_BINARY, payload)

    async def ping(self, payload: bytes = b"") -> None:
        await self._send_frame(OP_PING, payload)

    async def close(self, code: int = CLOSE_NORMAL, reason: str = "") -> None:
        """Send a close frame (idempotent) and close the transport."""
        if not self._closed:
            payload = struct.pack(">H", code) + reason.encode("utf-8")[:123]
            try:
                await self._send_frame(OP_CLOSE, payload)
            except ConnectionClosedError:
                pass
            self._closed = True
        self._writer.close()

    # -- receiving ---------------------------------------------------------------------

    async def _read_exact(self, count: int) -> bytes:
        try:
            return await self._reader.readexactly(count)
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as error:
            self._closed = True
            raise ConnectionClosedError(f"peer dropped mid-frame: {error}") from error

    async def _read_frame(self) -> Tuple[int, bool, bytes]:
        """Read one raw frame; returns ``(opcode, fin, unmasked payload)``."""
        head = await self._read_exact(2)
        fin = bool(head[0] & 0x80)
        if head[0] & 0x70:
            await self._fail(CLOSE_PROTOCOL_ERROR, "reserved bits set")
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if opcode in _CONTROL_OPCODES and (not fin or length > 125):
            await self._fail(
                CLOSE_PROTOCOL_ERROR, "control frames must be short and unfragmented"
            )
        if length == 126:
            (length,) = struct.unpack(">H", await self._read_exact(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await self._read_exact(8))
        if length > self.max_message_bytes:
            await self._fail(
                CLOSE_MESSAGE_TOO_BIG,
                f"frame of {length} bytes exceeds the {self.max_message_bytes} limit",
                MessageTooBigError,
            )
        if self._role == "server" and not masked:
            # RFC 6455 §5.1: a server MUST fail unmasked client frames.
            await self._fail(CLOSE_PROTOCOL_ERROR, "client frames must be masked")
        if self._role == "client" and masked:
            await self._fail(CLOSE_PROTOCOL_ERROR, "server frames must not be masked")
        mask = await self._read_exact(4) if masked else b""
        payload = await self._read_exact(length)
        if masked:
            payload = _apply_mask(payload, mask)
        return opcode, fin, payload

    async def _fail(
        self,
        code: int,
        reason: str,
        error_type: type = WebSocketError,
    ) -> None:
        """Close with ``code`` and raise: the RFC's 'Fail the Connection'."""
        await self.close(code, reason)
        raise error_type(reason)

    async def receive_message(self) -> Tuple[int, bytes]:
        """The next data message, reassembled: ``(OP_TEXT|OP_BINARY, bytes)``.

        Ping frames are answered inline, pong frames are ignored, and a
        close frame is acknowledged and raised as
        :class:`~repro.errors.ConnectionClosedError`.
        """
        message_opcode: Optional[int] = None
        parts: list = []
        total = 0
        while True:
            opcode, fin, payload = await self._read_frame()
            if opcode == OP_PING:
                await self._send_frame(OP_PONG, payload)
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                if len(payload) >= 2:
                    (self.close_code,) = struct.unpack(">H", payload[:2])
                    self.close_reason = payload[2:].decode("utf-8", "replace")
                if not self._closed:
                    # Acknowledge the peer's close per RFC 6455 §5.5.1.
                    await self.close(self.close_code or CLOSE_NORMAL)
                raise ConnectionClosedError(
                    f"peer closed ({self.close_code})", code=self.close_code
                )
            if opcode in _DATA_OPCODES:
                if message_opcode is not None:
                    await self._fail(
                        CLOSE_PROTOCOL_ERROR, "data frame inside a fragmented message"
                    )
                message_opcode = opcode
            elif opcode == OP_CONTINUATION:
                if message_opcode is None:
                    await self._fail(
                        CLOSE_PROTOCOL_ERROR, "continuation frame without a message"
                    )
            else:
                await self._fail(CLOSE_PROTOCOL_ERROR, f"unknown opcode {opcode:#x}")
            total += len(payload)
            if total > self.max_message_bytes:
                await self._fail(
                    CLOSE_MESSAGE_TOO_BIG,
                    f"message exceeds the {self.max_message_bytes} byte limit",
                    MessageTooBigError,
                )
            parts.append(payload)
            if fin:
                assert message_opcode is not None
                return message_opcode, b"".join(parts)

    async def receive_text(self) -> str:
        """The next data message decoded as UTF-8 (1007 on invalid bytes)."""
        opcode, payload = await self.receive_message()
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError:
            await self._fail(1007, "text message is not valid UTF-8")
            raise  # unreachable; _fail always raises

    def __repr__(self) -> str:
        return (
            f"WebSocketConnection(role={self._role!r}, closed={self._closed}, "
            f"close_code={self.close_code})"
        )
