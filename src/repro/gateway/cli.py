"""``python -m repro.gateway`` — run the ingestion gateway from the shell.

Examples
--------
Serve with dynamic tenants, two shards each, drop-oldest admission::

    python -m repro.gateway --port 8876 --shards 2 --policy drop_oldest

Serve a static tenant map from a JSON config file::

    python -m repro.gateway --config gateway.json

The config file mirrors :class:`~repro.gateway.server.GatewayConfig`::

    {
      "host": "0.0.0.0",
      "port": 8876,
      "allow_dynamic_tenants": false,
      "vocabularies": {"basic": "examples/vocabularies/basic_gestures.json"},
      "default_tenant": {"policy": "block", "pending_capacity": 4096},
      "tenants": {
        "arcade": {
          "token": "s3cret",
          "policy": "drop_newest",
          "pending_capacity": 8192,
          "max_connections": 128,
          "rate_limit_tuples_per_second": 50000,
          "session": {"shards": 4, "backpressure": "block", "analyze": "strict"}
        }
      }
    }
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.api.session import SessionConfig
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.gateway.tenants import TenantConfig

__all__ = ["main", "build_config", "tenant_config_from_dict"]

#: SessionConfig fields settable from a config file (the composed
#: matcher/transform/workflow configs stay at their defaults — the
#: gateway is an ingestion front door, not a learning workbench).
_SESSION_FIELDS = (
    "raw_stream",
    "view_stream",
    "database_path",
    "batch_size",
    "shards",
    "shard_executor",
    "backpressure",
    "queue_capacity",
    "analyze",
)

_TENANT_FIELDS = (
    "token",
    "policy",
    "pending_capacity",
    "max_connections",
    "rate_limit_tuples_per_second",
    "rate_burst",
)


def tenant_config_from_dict(data: Mapping[str, Any]) -> TenantConfig:
    """Build a :class:`TenantConfig` from its JSON representation."""
    unknown = set(data) - set(_TENANT_FIELDS) - {"session"}
    if unknown:
        raise ValueError(f"unknown tenant config keys: {sorted(unknown)}")
    session_data = data.get("session", {})
    unknown = set(session_data) - set(_SESSION_FIELDS)
    if unknown:
        raise ValueError(f"unknown session config keys: {sorted(unknown)}")
    session = SessionConfig(**dict(session_data))
    kwargs = {key: data[key] for key in _TENANT_FIELDS if key in data}
    return TenantConfig(session=session, **kwargs)


def build_config(args: argparse.Namespace) -> GatewayConfig:
    """Merge the config file (when given) with the command-line flags."""
    data: Dict[str, Any] = {}
    if args.config:
        with Path(args.config).open("r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"{args.config}: expected a JSON object")
    tenants = {
        name: tenant_config_from_dict(tenant_data)
        for name, tenant_data in data.get("tenants", {}).items()
    }
    default_data = dict(data.get("default_tenant", {}))
    session_data = dict(default_data.get("session", {}))
    # Flags override the file for the default-tenant template.
    if args.shards is not None:
        session_data["shards"] = args.shards
    if args.analyze is not None:
        session_data["analyze"] = args.analyze
    if session_data:
        default_data["session"] = session_data
    if args.policy is not None:
        default_data["policy"] = args.policy
    if args.pending_capacity is not None:
        default_data["pending_capacity"] = args.pending_capacity
    if args.rate_limit is not None:
        default_data["rate_limit_tuples_per_second"] = args.rate_limit
    default_tenant = tenant_config_from_dict(default_data)
    vocabularies = dict(data.get("vocabularies", {}))
    for item in args.vocabulary or ():
        name, sep, path = item.partition("=")
        if not sep or not name or not path:
            raise ValueError(f"--vocabulary expects NAME=PATH, got {item!r}")
        vocabularies[name] = path
    allow_dynamic = data.get("allow_dynamic_tenants", True)
    if args.no_dynamic_tenants:
        allow_dynamic = False
    return GatewayConfig(
        host=args.host or data.get("host", "127.0.0.1"),
        port=args.port if args.port is not None else data.get("port", 8876),
        tenants=tenants,
        allow_dynamic_tenants=allow_dynamic,
        default_tenant=default_tenant,
        vocabularies=vocabularies,
        max_message_bytes=data.get("max_message_bytes", 1 << 20),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Multi-tenant websocket/HTTP ingestion gateway for the "
        "gesture-detection runtime.",
    )
    parser.add_argument("--config", help="JSON gateway config file")
    parser.add_argument("--host", help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--shards", type=int, help="worker shards per dynamic tenant session"
    )
    parser.add_argument(
        "--policy",
        choices=("block", "drop_oldest", "drop_newest", "error"),
        help="edge admission policy of dynamic tenants",
    )
    parser.add_argument(
        "--pending-capacity", type=int, help="pending-tuple bound per dynamic tenant"
    )
    parser.add_argument(
        "--rate-limit", type=float, help="tuples/second cap per dynamic tenant"
    )
    parser.add_argument(
        "--analyze",
        choices=("off", "warn", "strict"),
        help="static-analyzer deployment gate of dynamic tenants",
    )
    parser.add_argument(
        "--vocabulary",
        action="append",
        metavar="NAME=PATH",
        help="register a deployable vocabulary (JSON manifest or gesture DB); repeatable",
    )
    parser.add_argument(
        "--no-dynamic-tenants",
        action="store_true",
        help="refuse hellos for tenants missing from the config",
    )
    return parser


async def _serve(config: GatewayConfig) -> None:
    server = GatewayServer(config)
    await server.start()
    print(
        f"repro.gateway listening on ws://{config.host}:{server.port} "
        f"(tenants: {', '.join(sorted(config.tenants)) or 'dynamic'})",
        file=sys.stderr,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        config = build_config(args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
