"""The gateway's application protocol: JSON messages over websocket text frames.

Every message is one JSON object with a ``"type"`` field.  Client
requests may carry an ``"id"``; the direct response echoes it, which is
how a client correlates replies on a channel that also carries
server-initiated pushes.

Client → server
---------------
``hello``
    ``{"type": "hello", "tenant": str, "token"?: str, "protocol"?: 1,
    "subscribe"?: bool}`` — must be the first message; attaches the
    connection to a tenant (authenticating when the tenant has a
    configured token).  Answered by ``welcome``.
``deploy``
    ``{"type": "deploy", "query": str, "name"?: str}`` — deploy one query
    (the paper's query dialect) through the tenant's session, gated by
    the static analyzer per tenant configuration.  Answered by
    ``deployed``.
``deploy_vocabulary``
    ``{"type": "deploy_vocabulary", "manifest": {name: query_text}}`` or
    ``{"type": "deploy_vocabulary", "vocabulary": str}`` (a vocabulary
    name registered on the gateway — a JSON manifest or gesture-DB
    file).  Answered by ``deployed``.
``tuples``
    ``{"type": "tuples", "records": [{...}], "stream"?: str,
    "batch"?: int, "seq"?: int, "ack"?: bool}`` — framed tuple
    ingestion; ``records`` is a non-empty list of flat JSON objects.
    Admission control applies *before* the records are queued; the
    ``ack`` answer (suppressed by ``"ack": false``) reports
    ``accepted``/``dropped`` and echoes ``seq``.
``drain``
    ``{"type": "drain"}`` — barrier: answered by ``drained`` only after
    every tuple this tenant queued so far has been fully processed.
``detections``
    ``{"type": "detections", "name"?: str, "partition"?: any}`` —
    request-response read of the tenant's engine detections (drains
    first, like the in-process API).  Answered by ``detections``.
``ping`` / ``bye``
    Application-level liveness and graceful goodbye (answered by
    ``pong`` / ``bye`` + close).

Server → client
---------------
``welcome``, ``deployed``, ``ack``, ``drained``, ``detections``,
``pong``, ``bye`` — direct responses, echoing ``id``.
``event``
    ``{"type": "event", "gesture": str, "timestamp": float, "duration":
    float, "player": any, "pose_timestamps": [...], "measures": {...}}``
    — the server-push detections channel (every subscribed connection of
    the tenant receives every detection, in detection order).
``error``
    ``{"type": "error", "code": str, "message": str, "fatal": bool}`` —
    typed errors (see :class:`ErrorCode`); ``fatal`` errors are followed
    by a websocket close.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.cep.matcher import Detection
from repro.detection.events import GestureEvent
from repro.errors import GatewayProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "ErrorCode",
    "decode_message",
    "decode_server_message",
    "detection_to_wire",
    "encode_message",
    "event_to_wire",
    "make_error",
]

PROTOCOL_VERSION = 1

#: Client message types the server understands.
CLIENT_TYPES = (
    "hello",
    "deploy",
    "deploy_vocabulary",
    "tuples",
    "drain",
    "detections",
    "ping",
    "bye",
)


class ErrorCode:
    """Stable error codes carried by ``error`` frames."""

    #: The message was not valid JSON, not an object, or missing fields.
    BAD_MESSAGE = "bad_message"
    #: ``type`` is not one of the protocol's client message types.
    UNSUPPORTED_TYPE = "unsupported_type"
    #: The negotiated ``protocol`` version is not supported.
    UNSUPPORTED_PROTOCOL = "unsupported_protocol"
    #: A non-``hello`` message arrived before ``hello``.
    HELLO_REQUIRED = "hello_required"
    #: A second ``hello`` arrived on an attached connection.
    ALREADY_ATTACHED = "already_attached"
    #: The tenant requires a token and the offered one did not match.
    AUTH_FAILED = "auth_failed"
    #: The tenant is not configured and dynamic tenants are disabled.
    UNKNOWN_TENANT = "unknown_tenant"
    #: The tenant's connection cap is reached.
    TOO_MANY_CONNECTIONS = "too_many_connections"
    #: The tenant's rate limit rejected the frame (``error`` policy).
    RATE_LIMITED = "rate_limited"
    #: The tenant's pending-tuple bound rejected the frame (``error``
    #: policy).
    BACKPRESSURE = "backpressure"
    #: The static query analyzer rejected the deployment (strict gate);
    #: the frame carries the diagnostic ``codes``.
    ANALYSIS_REJECTED = "analysis_rejected"
    #: The deployment failed for a non-analyzer reason (syntax error,
    #: duplicate name, unknown stream ...).
    DEPLOY_FAILED = "deploy_failed"
    #: ``deploy_vocabulary`` named a vocabulary the gateway doesn't have.
    UNKNOWN_VOCABULARY = "unknown_vocabulary"
    #: The tenant's session is gone (gateway shutting down).
    SESSION_CLOSED = "session_closed"
    #: Unexpected server-side failure; the connection survives.
    INTERNAL_ERROR = "internal_error"


def decode_message(text: str) -> Dict[str, Any]:
    """Parse one client text frame into a message dictionary.

    Raises :class:`~repro.errors.GatewayProtocolError` (non-fatal,
    ``bad_message`` / ``unsupported_type``) on anything malformed — one
    bad frame never costs the connection, let alone the server.
    """
    try:
        message = json.loads(text)
    except json.JSONDecodeError as error:
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, f"frame is not valid JSON: {error}"
        ) from error
    if not isinstance(message, dict):
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "frame must be a JSON object"
        )
    message_type = message.get("type")
    if not isinstance(message_type, str):
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "frame is missing its 'type' field"
        )
    if message_type not in CLIENT_TYPES:
        raise GatewayProtocolError(
            ErrorCode.UNSUPPORTED_TYPE,
            f"unknown message type {message_type!r}; expected one of {CLIENT_TYPES}",
        )
    return message


def decode_server_message(text: str) -> Dict[str, Any]:
    """Parse one server frame (clients accept any typed JSON object)."""
    try:
        message = json.loads(text)
    except json.JSONDecodeError as error:
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, f"server frame is not valid JSON: {error}"
        ) from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "server frame must be a typed JSON object"
        )
    return message


def encode_message(message: Mapping[str, Any]) -> str:
    """Serialise one server message (compact separators, stable keys)."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True, default=str)


def make_error(
    code: str,
    message: str,
    fatal: bool = False,
    request_id: Any = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Build one ``error`` frame payload."""
    frame: Dict[str, Any] = {
        "type": "error",
        "code": code,
        "message": message,
        "fatal": fatal,
    }
    if request_id is not None:
        frame["id"] = request_id
    frame.update(extra)
    return frame


def require_records(message: Mapping[str, Any]) -> List[Mapping[str, Any]]:
    """Validate the ``records`` payload of a ``tuples`` frame."""
    records = message.get("records")
    if not isinstance(records, list) or not records:
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "'tuples' needs a non-empty 'records' list"
        )
    for record in records:
        if not isinstance(record, dict):
            raise GatewayProtocolError(
                ErrorCode.BAD_MESSAGE, "every record must be a JSON object"
            )
    batch = message.get("batch")
    if batch is not None and (not isinstance(batch, int) or batch < 1):
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "'batch' must be a positive integer when given"
        )
    return records


def detection_to_wire(detection: Detection) -> Dict[str, Any]:
    """One engine detection as a JSON-serialisable wire object.

    Uses the snapshot format (:meth:`Detection.to_state`) so gateway
    reads are byte-compatible with snapshots, replay and the in-process
    API — the B6 benchmark asserts exactly this.
    """
    return detection.to_state()


def event_to_wire(event: GestureEvent) -> Dict[str, Any]:
    """One application-level gesture event as an ``event`` push frame."""
    return {
        "type": "event",
        "gesture": event.gesture,
        "timestamp": event.timestamp,
        "duration": event.duration,
        "pose_timestamps": list(event.pose_timestamps),
        "measures": dict(event.measures),
        "player": event.partition,
    }


def validate_hello(message: Mapping[str, Any]) -> str:
    """Validate a ``hello`` and return the tenant id."""
    tenant = message.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise GatewayProtocolError(
            ErrorCode.BAD_MESSAGE, "'hello' needs a non-empty 'tenant' string"
        )
    protocol: Optional[int] = message.get("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise GatewayProtocolError(
            ErrorCode.UNSUPPORTED_PROTOCOL,
            f"protocol {protocol!r} is not supported (server speaks "
            f"{PROTOCOL_VERSION})",
            fatal=True,
        )
    return tenant
