"""repro.gateway — the network front door of the gesture runtime.

A stdlib-only asyncio gateway that exposes the in-process
:class:`~repro.api.session.GestureSession` API over websockets: tenants
attach with ``hello``, deploy vocabularies through the static-analyzer
gate, stream framed tuples under edge admission control (the runtime's
backpressure policies mapped to per-client behaviour), and receive
detections pushed in order.  ``GET /healthz`` and ``GET /metrics``
(Prometheus text exposition) ride on the same port.

See ``docs/gateway.md`` for the wire protocol and the tenancy model,
``repro.gateway.cli`` for the server entry point, and
``benchmarks/bench_gateway_load.py`` (B6) for the load generator.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.metrics import GatewayMetrics, LoopLagMonitor
from repro.gateway.protocol import PROTOCOL_VERSION, ErrorCode
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.gateway.tenants import Tenant, TenantConfig
from repro.gateway.websocket import WebSocketConnection, accept_key

__all__ = [
    "ErrorCode",
    "GatewayClient",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayServer",
    "LoopLagMonitor",
    "PROTOCOL_VERSION",
    "Tenant",
    "TenantConfig",
    "WebSocketConnection",
    "accept_key",
]
