"""An asyncio client for the gateway protocol.

Used by the protocol test-suite, the B6 load benchmark and the example
script — and small enough to crib for a real integration.  One
:class:`GatewayClient` owns one websocket connection and a background
reader task that demultiplexes the channel: direct responses resolve the
pending request future matching their ``id``, ``event`` pushes land in
:attr:`events`, and unsolicited ``error`` frames are collected on
:attr:`errors` (a fatal one also fails all in-flight requests).
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import (
    ConnectionClosedError,
    GatewayProtocolError,
    HandshakeError,
    WebSocketError,
)
from repro.gateway import protocol
from repro.gateway.websocket import WebSocketConnection, accept_key

__all__ = ["GatewayClient"]


class GatewayClient:
    """One gateway connection with request/response correlation."""

    def __init__(self, ws: WebSocketConnection) -> None:
        self.ws = ws
        #: Server-push ``event`` frames, in arrival (= detection) order.
        self.events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        #: Unsolicited ``error`` frames (ones carrying no request ``id``).
        self.errors: List[Dict[str, Any]] = []
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.Task] = None
        self.tenant: Optional[str] = None

    # -- connection --------------------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        path: str = "/ws",
        max_message_bytes: int = 1 << 20,
    ) -> "GatewayClient":
        """Open the TCP connection and complete the websocket handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n"
            f"\r\n"
        )
        writer.write(request.encode("ascii"))
        await writer.drain()
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError) as error:
            writer.close()
            raise HandshakeError(f"server closed during the handshake: {error}") from error
        lines = head.decode("iso-8859-1").split("\r\n")
        if " 101 " not in lines[0] + " ":
            writer.close()
            raise HandshakeError(f"expected 101, got {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if headers.get("sec-websocket-accept") != accept_key(key):
            writer.close()
            raise HandshakeError("Sec-WebSocket-Accept mismatch")
        ws = WebSocketConnection(
            reader, writer, role="client", max_message_bytes=max_message_bytes
        )
        client = cls(ws)
        client._reader = asyncio.get_running_loop().create_task(
            client._read_loop(), name="repro-gateway-client-reader"
        )
        return client

    async def close(self) -> None:
        """Close the websocket and stop the reader task."""
        try:
            await self.ws.close()
        except WebSocketError:
            pass
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except (asyncio.CancelledError, WebSocketError):
                pass

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- channel demultiplexing --------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                text = await self.ws.receive_text()
                self._on_frame(protocol.decode_server_message(text))
        except (ConnectionClosedError, WebSocketError) as error:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionClosedError(f"connection ended: {error}")
                    )
            self._pending.clear()

    def _on_frame(self, message: Dict[str, Any]) -> None:
        request_id = message.get("id")
        if request_id is not None and str(request_id) in self._pending:
            future = self._pending.pop(str(request_id))
            if not future.done():
                future.set_result(message)
            return
        if message.get("type") == "event":
            self.events.put_nowait(message)
            return
        if message.get("type") == "error":
            self.errors.append(message)
            if message.get("fatal"):
                for future in self._pending.values():
                    if not future.done():
                        future.set_exception(
                            GatewayProtocolError(
                                message.get("code", "internal_error"),
                                message.get("message", "fatal gateway error"),
                                fatal=True,
                            )
                        )
                self._pending.clear()

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and await its id-correlated response.

        An ``error`` response raises
        :class:`~repro.errors.GatewayProtocolError` carrying the typed
        code; every other response is returned as a dictionary.
        """
        request_id = str(next(self._ids))
        message = dict(message, id=request_id)
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        await self.ws.send_text(protocol.encode_message(message))
        response = await future
        if response.get("type") == "error":
            raise GatewayProtocolError(
                response.get("code", "internal_error"),
                response.get("message", "gateway error"),
                fatal=bool(response.get("fatal")),
                **{
                    key: value
                    for key, value in response.items()
                    if key not in ("type", "code", "message", "fatal", "id")
                },
            )
        return response

    # -- protocol verbs ----------------------------------------------------------------

    async def hello(
        self,
        tenant: str,
        token: Optional[str] = None,
        subscribe: bool = False,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "type": "hello",
            "tenant": tenant,
            "protocol": protocol.PROTOCOL_VERSION,
            "subscribe": subscribe,
        }
        if token is not None:
            message["token"] = token
        welcome = await self.request(message)
        self.tenant = tenant
        return welcome

    async def deploy(self, query: str, name: Optional[str] = None) -> List[str]:
        message: Dict[str, Any] = {"type": "deploy", "query": query}
        if name is not None:
            message["name"] = name
        response = await self.request(message)
        return list(response.get("gestures", []))

    async def deploy_vocabulary(
        self,
        manifest: Optional[Mapping[str, str]] = None,
        vocabulary: Optional[str] = None,
    ) -> List[str]:
        message: Dict[str, Any] = {"type": "deploy_vocabulary"}
        if manifest is not None:
            message["manifest"] = dict(manifest)
        if vocabulary is not None:
            message["vocabulary"] = vocabulary
        response = await self.request(message)
        return list(response.get("gestures", []))

    async def send_tuples(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: Optional[str] = None,
        batch: Optional[int] = None,
        seq: Optional[int] = None,
        ack: bool = True,
    ) -> Optional[Dict[str, Any]]:
        """Send one tuples frame; returns the ``ack`` (or ``None``)."""
        message: Dict[str, Any] = {"type": "tuples", "records": list(records)}
        if stream is not None:
            message["stream"] = stream
        if batch is not None:
            message["batch"] = batch
        if seq is not None:
            message["seq"] = seq
        if not ack:
            message["ack"] = False
            await self.ws.send_text(protocol.encode_message(message))
            return None
        return await self.request(message)

    async def drain(self) -> Dict[str, Any]:
        return await self.request({"type": "drain"})

    async def detections(
        self, name: Optional[str] = None, partition: Any = None
    ) -> List[Dict[str, Any]]:
        message: Dict[str, Any] = {"type": "detections"}
        if name is not None:
            message["name"] = name
        if partition is not None:
            message["partition"] = partition
        response = await self.request(message)
        return list(response.get("detections", []))

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"type": "ping"})

    async def bye(self) -> None:
        try:
            await self.request({"type": "bye"})
        except (ConnectionClosedError, GatewayProtocolError):
            pass
        await self.close()

    async def next_event(self, timeout: float = 5.0) -> Dict[str, Any]:
        """The next pushed detection ``event`` (raises on timeout)."""
        return await asyncio.wait_for(self.events.get(), timeout)
