"""A small HTTP/1.1 request reader and response writer.

Just enough HTTP for the gateway's three entry points — ``GET /healthz``,
``GET /metrics`` and the websocket upgrade — on stdlib asyncio streams.
No chunked transfer encoding, no pipelining (the gateway answers one
plain-HTTP request per connection and closes), bounded header and body
sizes so a hostile peer cannot balloon memory.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import GatewayError

__all__ = ["HttpRequest", "read_request", "render_response", "REASONS"]

REASONS = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    426: "Upgrade Required",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request line + headers (+ body, when one was sent)."""

    method: str
    target: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, str]:
        """Query parameters, last value winning."""
        return {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.target).query).items()
        }

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def wants_upgrade(self) -> bool:
        """Is this a websocket upgrade request?"""
        connection = {
            token.strip().lower()
            for token in self.header("connection").split(",")
        }
        return (
            "upgrade" in connection
            and self.header("upgrade").lower() == "websocket"
        )


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = 16384,
    max_body_bytes: int = 1 << 20,
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`~repro.errors.GatewayError` on a malformed request or
    one exceeding the size bounds — the caller answers 400/431/413 and
    closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise GatewayError("truncated HTTP request") from error
    except asyncio.LimitOverrunError as error:
        raise GatewayError("HTTP request head too large") from error
    if len(head) > max_header_bytes:
        raise GatewayError("HTTP request head too large")
    try:
        text = head.decode("iso-8859-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError as error:
        raise GatewayError(f"malformed HTTP request line: {error}") from error
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise GatewayError(f"malformed HTTP header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise GatewayError("malformed Content-Length") from error
        if length < 0 or length > max_body_bytes:
            raise GatewayError("request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise GatewayError("truncated HTTP request body") from error
    return HttpRequest(
        method=method.upper(), target=target, version=version,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: Optional[Mapping[str, str]] = None,
    close: bool = True,
) -> bytes:
    """Serialise one HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    headers: Dict[str, str] = {}
    if status != 101:
        headers["Content-Type"] = content_type
        headers["Content-Length"] = str(len(body))
        if close:
            headers["Connection"] = "close"
    if extra_headers:
        headers.update(extra_headers)
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("iso-8859-1")
    return head + body


def upgrade_response_headers(accept: str) -> Tuple[int, Dict[str, str]]:
    """The 101 response headers completing a websocket handshake."""
    return 101, {
        "Upgrade": "websocket",
        "Connection": "Upgrade",
        "Sec-WebSocket-Accept": accept,
    }
