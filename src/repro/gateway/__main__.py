"""Entry point: ``python -m repro.gateway``."""

import sys

from repro.gateway.cli import main

sys.exit(main())
