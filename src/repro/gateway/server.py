"""The asyncio gateway server: HTTP front door, websocket tenancy, dispatch.

One :class:`GatewayServer` listens on a single port and speaks two
dialects over it:

* plain HTTP for ``GET /healthz`` (liveness) and ``GET /metrics``
  (Prometheus text exposition by default, the JSON document with
  ``?format=json``), and
* the websocket application protocol of :mod:`repro.gateway.protocol`
  for everything stateful — tenant attachment, vocabulary deployment,
  framed tuple ingestion, the drain barrier and the server-push
  detections channel.

The threading model in one paragraph: the event loop owns every socket
and every piece of admission state; matching never runs on it.  Each
tenant's worker task hands feeds and control operations to that tenant's
own single-thread executor (a sharded tenant session then fans out
further to its own shard workers), so a tenant with an expensive
vocabulary slows only its own queue.  Admission
control runs *on the loop, before queueing*: a ``block`` tenant's reader
coroutine suspends inside :meth:`Tenant.ingest`, which stops reading
that client's socket and lets TCP flow control push the stall all the
way back to the producer.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.detection.events import GestureEvent
from repro.errors import (
    AdmissionError,
    BackpressureError,
    ConnectionClosedError,
    GatewayError,
    GatewayProtocolError,
    QueryAnalysisError,
    SessionClosedError,
    WebSocketError,
)
from repro.gateway import http, protocol, websocket
from repro.gateway.metrics import GatewayMetrics, LoopLagMonitor
from repro.gateway.protocol import ErrorCode
from repro.gateway.tenants import Tenant, TenantConfig
from repro.observability.clock import perf_clock
from repro.observability.tracing import TraceContext
from repro.runtime.metrics import build_info_exposition, prometheus_sample

__all__ = ["GatewayConfig", "GatewayServer"]


@dataclass(frozen=True)
class GatewayConfig:
    """Listener, tenancy and protocol limits of one gateway.

    Attributes
    ----------
    host / port:
        Bind address; port ``0`` picks an ephemeral port (tests, the
        benchmark) readable from :attr:`GatewayServer.port` after
        :meth:`GatewayServer.start`.
    tenants:
        Statically configured tenants (name → :class:`TenantConfig`).
    allow_dynamic_tenants:
        When true, a ``hello`` for an unconfigured tenant creates it
        from ``default_tenant``; when false it is refused
        (``unknown_tenant``).
    default_tenant:
        Template for dynamically created tenants.
    vocabularies:
        Named vocabularies deployable by ``deploy_vocabulary`` frames:
        name → path of a JSON manifest or a gesture SQLite database.
    max_message_bytes:
        Websocket message bound (1009 beyond it).
    loop_lag_interval:
        Sampling period of the loop-lag monitor, seconds.
    """

    host: str = "127.0.0.1"
    port: int = 8876
    tenants: Mapping[str, TenantConfig] = field(default_factory=dict)
    allow_dynamic_tenants: bool = True
    default_tenant: TenantConfig = field(default_factory=TenantConfig)
    vocabularies: Mapping[str, str] = field(default_factory=dict)
    max_message_bytes: int = 1 << 20
    loop_lag_interval: float = 0.05


class _Connection:
    """Per-websocket state: the tenant attachment and the push channel."""

    def __init__(self, ws: websocket.WebSocketConnection, server: "GatewayServer") -> None:
        self.ws = ws
        self.server = server
        self.tenant: Optional[Tenant] = None
        self.subscribed = False

    async def send(self, message: Mapping[str, Any]) -> None:
        await self.ws.send_text(protocol.encode_message(message))
        self.server.metrics.add_frame_out()

    async def push_events(self, events: List[GestureEvent]) -> None:
        """Deliver detections; a dead subscriber unsubscribes itself."""
        try:
            for event in events:
                await self.send(protocol.event_to_wire(event))
            self.server.metrics.add_detections_pushed(len(events))
        except (ConnectionClosedError, WebSocketError):
            if self.tenant is not None:
                self.tenant.subscribers.discard(self)


class GatewayServer:
    """The multi-tenant ingestion gateway (see the module docstring)."""

    def __init__(self, config: Optional[GatewayConfig] = None) -> None:
        self.config = config or GatewayConfig()
        self.metrics = GatewayMetrics()
        self.tenants: Dict[str, Tenant] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._lag_monitor = LoopLagMonitor(self.metrics, self.config.loop_lag_interval)
        self._connections: Set[_Connection] = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> "GatewayServer":
        """Bind and start accepting; returns ``self`` for chaining."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            # Load spikes of the B6 benchmark (1000 clients connecting at
            # once) overflow the default backlog of 100.
            backlog=1024,
        )
        self._lag_monitor.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (meaningful once started; supports port 0)."""
        if self._server is None or not self._server.sockets:
            raise GatewayError("the gateway is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise GatewayError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, close every connection and tenant session."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            try:
                await connection.ws.close(websocket.CLOSE_GOING_AWAY, "gateway shutdown")
            except (WebSocketError, OSError):
                pass
        await self._lag_monitor.stop()
        for tenant in self.tenants.values():
            await tenant.close()

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- connection handling -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await http.read_request(reader)
            except GatewayError as error:
                writer.write(http.render_response(400, f"{error}\n".encode("utf-8")))
                await writer.drain()
                return
            if request is None:
                return
            if request.wants_upgrade():
                await self._serve_websocket(request, reader, writer)
            else:
                await self._serve_http(request, writer)
        except (ConnectionError, OSError):
            pass  # the peer vanished; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- plain HTTP --------------------------------------------------------------------

    async def _serve_http(self, request: http.HttpRequest, writer: asyncio.StreamWriter) -> None:
        if request.method != "GET":
            response = http.render_response(405, b"only GET is served\n")
        elif request.path == "/healthz":
            document = self._health_document()
            body = json.dumps(document, sort_keys=True).encode("utf-8")
            status = 503 if document["status"] == "unhealthy" else 200
            response = http.render_response(status, body + b"\n", "application/json")
        elif request.path == "/alerts":
            body = json.dumps(self._alerts_document(), sort_keys=True).encode("utf-8")
            response = http.render_response(200, body + b"\n", "application/json")
        elif request.path == "/debug/vars":
            # The profiler join may broadcast a telemetry collection to
            # process shards; keep that off the event loop.
            document = await asyncio.to_thread(self._debug_vars_document)
            body = json.dumps(document, sort_keys=True).encode("utf-8")
            response = http.render_response(200, body + b"\n", "application/json")
        elif request.path == "/metrics":
            accept = request.header("accept")
            as_json = request.query.get("format") == "json" or "application/json" in accept
            if as_json:
                body = json.dumps(self._metrics_document(), sort_keys=True).encode("utf-8")
                response = http.render_response(200, body + b"\n", "application/json")
            else:
                body = self._metrics_exposition().encode("utf-8")
                response = http.render_response(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
        else:
            response = http.render_response(
                404, b"try /healthz, /metrics, /alerts or /debug/vars\n"
            )
        writer.write(response)
        await writer.drain()

    def _health_document(self) -> Dict[str, Any]:
        """The ``/healthz`` body: gateway liveness + per-tenant watchdogs.

        The overall status is the worst across every tenant session that
        runs a health watchdog (sessions without one contribute ``ok``),
        with each contributing reason tagged by tenant — machine-readable
        input for load balancers and the future autoscaler.
        """
        rank = {"ok": 0, "degraded": 1, "unhealthy": 2}
        status = "ok"
        reasons: List[Dict[str, Any]] = []
        for name, tenant in sorted(self.tenants.items()):
            session = tenant.session
            watchdog = getattr(session, "watchdog", None) if session is not None else None
            if watchdog is None:
                continue
            report = watchdog.report()
            if rank.get(report.status, 0) > rank[status]:
                status = report.status
            for reason in report.reasons:
                reasons.append({"tenant": name, **reason.to_dict()})
        return {
            "status": status,
            "reasons": reasons,
            "tenants": len(self.tenants),
            "connections": self.metrics.connections_active,
        }

    def _alerts_document(self) -> Dict[str, Any]:
        """The ``/alerts`` body: every tenant's burn-rate alert log."""
        alerts: List[Dict[str, Any]] = []
        for name, tenant in sorted(self.tenants.items()):
            session = tenant.session
            evaluator = (
                getattr(session, "slo_evaluator", None) if session is not None else None
            )
            if evaluator is None:
                continue
            for alert in evaluator.alert_log():
                alerts.append({"tenant": name, **alert})
        return {"alerts": alerts, "count": len(alerts)}

    def _debug_vars_document(self) -> Dict[str, Any]:
        """The ``/debug/vars`` body: live internals for humans and the
        ``python -m repro.observability top`` dashboard.  Runs off-loop."""
        tenants: Dict[str, Any] = {}
        for name, tenant in sorted(self.tenants.items()):
            session = tenant.session
            if session is None:
                continue
            entry: Dict[str, Any] = {"profile": session.profile()}
            sampler = session.sampler
            if sampler is not None:
                entry["series"] = sampler.latest()
                entry["sampler_ticks"] = sampler.ticks
            watchdog = session.watchdog
            if watchdog is not None:
                entry["health"] = watchdog.report().to_dict()
            evaluator = session.slo_evaluator
            if evaluator is not None:
                entry["active_alerts"] = [list(key) for key in evaluator.active()]
            tenants[name] = entry
        return {"gateway": self.metrics.snapshot(), "tenants": tenants}

    def _metrics_document(self) -> Dict[str, Any]:
        return {
            "gateway": self.metrics.snapshot(),
            "tenants": {name: tenant.snapshot() for name, tenant in self.tenants.items()},
        }

    def _metrics_exposition(self) -> str:
        """Gateway counters + per-tenant admission and session metrics."""
        scrape_started = perf_clock()
        parts = ["\n".join(build_info_exposition()) + "\n", self.metrics.to_prometheus()]
        tenant_lines: List[str] = []
        for name, tenant in sorted(self.tenants.items()):
            labels = {"tenant": name}
            tenant_lines.append(
                prometheus_sample("repro_gateway_tenant_connections", len(tenant.connections), labels)
            )
            tenant_lines.append(
                prometheus_sample("repro_gateway_tenant_pending_tuples", tenant.queue.depth, labels)
            )
            tenant_lines.append(
                prometheus_sample("repro_gateway_tenant_tuples_fed_total", tenant.tuples_fed, labels)
            )
            tenant_lines.append(
                prometheus_sample("repro_gateway_tenant_tuples_dropped_total", tenant.tuples_dropped, labels)
            )
        if tenant_lines:
            parts.append("\n".join(tenant_lines) + "\n")
        for name, tenant in sorted(self.tenants.items()):
            session = tenant.session
            registry = session.metrics if session is not None else None
            if registry is not None:
                parts.append(registry.to_prometheus({"tenant": name}))
        parts.append(
            "# HELP repro_gateway_scrape_duration_seconds Seconds this "
            "scrape spent collecting and rendering every tenant body.\n"
            "# TYPE repro_gateway_scrape_duration_seconds gauge\n"
            + prometheus_sample(
                "repro_gateway_scrape_duration_seconds", perf_clock() - scrape_started
            )
            + "\n"
        )
        return "".join(parts)

    # -- websocket ---------------------------------------------------------------------

    async def _serve_websocket(
        self,
        request: http.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.header("sec-websocket-key")
        version = request.header("sec-websocket-version")
        if request.method != "GET" or not key:
            writer.write(http.render_response(400, b"malformed websocket upgrade\n"))
            await writer.drain()
            return
        if version != "13":
            writer.write(
                http.render_response(
                    426, b"unsupported websocket version\n",
                    extra_headers={"Sec-WebSocket-Version": "13"},
                )
            )
            await writer.drain()
            return
        status, headers = http.upgrade_response_headers(websocket.accept_key(key))
        writer.write(http.render_response(status, extra_headers=headers))
        await writer.drain()

        ws = websocket.WebSocketConnection(
            reader, writer, role="server", max_message_bytes=self.config.max_message_bytes
        )
        connection = _Connection(ws, self)
        self._connections.add(connection)
        self.metrics.connection_opened()
        try:
            await self._run_protocol(connection)
        finally:
            self._connections.discard(connection)
            self.metrics.connection_closed()
            tenant = connection.tenant
            if tenant is not None:
                tenant.connections.discard(connection)
                tenant.subscribers.discard(connection)

    async def _run_protocol(self, connection: _Connection) -> None:
        """The per-connection message loop.  Nothing a client sends may
        escape this loop as an exception other than a closed channel."""
        ws = connection.ws
        while True:
            try:
                text = await ws.receive_text()
            except (ConnectionClosedError, WebSocketError):
                return  # close already handled at the websocket layer
            self.metrics.add_frame_in()
            request_id: Any = None
            try:
                message = protocol.decode_message(text)
                request_id = message.get("id")
                done = await self._dispatch(connection, message, request_id)
                if done:
                    return
            except GatewayProtocolError as error:
                await self._send_error(
                    connection,
                    protocol.make_error(
                        error.code, error.detail, fatal=error.fatal,
                        request_id=request_id, **error.extra,
                    ),
                )
                if error.fatal:
                    await ws.close(websocket.CLOSE_POLICY_VIOLATION, error.code)
                    return
            except (ConnectionClosedError, WebSocketError):
                return
            except Exception as error:  # noqa: BLE001 — never let a client kill the loop
                await self._send_error(
                    connection,
                    protocol.make_error(
                        ErrorCode.INTERNAL_ERROR,
                        f"{type(error).__name__}: {error}",
                        request_id=request_id,
                    ),
                )

    async def _send_error(self, connection: _Connection, frame: Mapping[str, Any]) -> None:
        self.metrics.add_error_sent()
        try:
            await connection.send(frame)
        except (ConnectionClosedError, WebSocketError):
            pass

    async def _dispatch(
        self, connection: _Connection, message: Dict[str, Any], request_id: Any
    ) -> bool:
        """Handle one decoded message; returns True to end the connection."""
        message_type = message["type"]
        if message_type == "ping":
            await connection.send({"type": "pong", "id": request_id})
            return False
        if message_type == "bye":
            await connection.send({"type": "bye", "id": request_id})
            await connection.ws.close(websocket.CLOSE_NORMAL, "bye")
            return True
        if message_type == "hello":
            await self._handle_hello(connection, message, request_id)
            return False
        tenant = connection.tenant
        if tenant is None:
            raise GatewayProtocolError(
                ErrorCode.HELLO_REQUIRED,
                f"'{message_type}' requires a prior 'hello'",
            )
        if message_type == "tuples":
            await self._handle_tuples(connection, tenant, message, request_id)
        elif message_type == "deploy":
            await self._handle_deploy(connection, tenant, message, request_id)
        elif message_type == "deploy_vocabulary":
            await self._handle_deploy_vocabulary(connection, tenant, message, request_id)
        elif message_type == "drain":
            result = await self._tenant_control(tenant, "drain")
            await connection.send({"type": "drained", "id": request_id, **result})
        elif message_type == "detections":
            detections = await self._tenant_control(
                tenant,
                "detections",
                {"name": message.get("name"), "partition": message.get("partition")},
            )
            await connection.send(
                {"type": "detections", "id": request_id, "detections": detections}
            )
        return False

    async def _handle_hello(
        self, connection: _Connection, message: Dict[str, Any], request_id: Any
    ) -> None:
        if connection.tenant is not None:
            raise GatewayProtocolError(
                ErrorCode.ALREADY_ATTACHED,
                f"this connection already belongs to tenant "
                f"'{connection.tenant.name}'",
            )
        name = protocol.validate_hello(message)
        tenant = self.tenants.get(name)
        if tenant is None:
            template = self.config.tenants.get(name)
            if template is None and not self.config.allow_dynamic_tenants:
                self.metrics.connection_rejected()
                raise GatewayProtocolError(
                    ErrorCode.UNKNOWN_TENANT,
                    f"tenant '{name}' is not configured",
                    fatal=True,
                )
            tenant = Tenant(name, template or self.config.default_tenant)
            self.tenants[name] = tenant
        if not tenant.authenticate(message.get("token")):
            self.metrics.connection_rejected()
            raise GatewayProtocolError(
                ErrorCode.AUTH_FAILED,
                f"authentication failed for tenant '{name}'",
                fatal=True,
            )
        try:
            tenant.check_connection_limit()
        except AdmissionError as error:
            self.metrics.connection_rejected()
            raise GatewayProtocolError(
                ErrorCode.TOO_MANY_CONNECTIONS, str(error), fatal=True
            ) from error
        session = await tenant.ensure_started()
        connection.tenant = tenant
        tenant.connections.add(connection)
        connection.subscribed = bool(message.get("subscribe", False))
        if connection.subscribed:
            tenant.subscribers.add(connection)
        await connection.send(
            {
                "type": "welcome",
                "id": request_id,
                "tenant": name,
                "protocol": protocol.PROTOCOL_VERSION,
                "policy": tenant.config.policy,
                "deployed": session.deployed_gestures(),
            }
        )

    async def _handle_tuples(
        self,
        connection: _Connection,
        tenant: Tenant,
        message: Dict[str, Any],
        request_id: Any,
    ) -> None:
        started = perf_clock()
        records = protocol.require_records(message)
        offered = len(records)
        span = self._request_span(tenant, message, offered)
        try:
            try:
                accepted, dropped = await tenant.ingest(
                    records,
                    message.get("stream"),
                    message.get("batch"),
                    trace=span.context if span is not None else None,
                )
            except AdmissionError as error:
                self.metrics.add_tuples(offered, 0, offered)
                raise GatewayProtocolError(
                    ErrorCode.RATE_LIMITED, str(error), fatal=True
                ) from error
            except BackpressureError as error:
                self.metrics.add_tuples(offered, 0, offered)
                raise GatewayProtocolError(
                    ErrorCode.BACKPRESSURE, str(error), fatal=True
                ) from error
            self.metrics.add_tuples(offered, accepted, dropped)
            if message.get("ack", True):
                ack: Dict[str, Any] = {
                    "type": "ack",
                    "id": request_id,
                    "accepted": accepted,
                    "dropped": dropped,
                    "pending": tenant.queue.depth,
                }
                if message.get("seq") is not None:
                    ack["seq"] = message["seq"]
                await connection.send(ack)
        finally:
            # Receipt to ack, admission wait included — a block-policy
            # stall shows up here, exactly where the client feels it.
            self.metrics.record_request_seconds(perf_clock() - started)
            if span is not None:
                span.close()

    def _request_span(
        self, tenant: Tenant, message: Dict[str, Any], offered: int
    ) -> Optional[Any]:
        """Open the ``gateway.request`` root span for one tuples frame.

        Uses the tenant session's tracer (the decision and the buffer
        belong to the tenant).  A client-supplied ``trace`` object on the
        frame is adopted — the caller keeps the head decision — otherwise
        the tracer head-samples.  Returns ``None`` (no cost) whenever
        tracing is off.
        """
        session = tenant.session
        telemetry = session.telemetry if session is not None else None
        if telemetry is None or not telemetry.tracing_active:
            return None
        tracer = telemetry.tracer
        supplied = message.get("trace")
        trace: Optional[TraceContext]
        if isinstance(supplied, Mapping):
            try:
                trace = tracer.adopt(supplied)
            except ValueError:
                trace = tracer.sample("gateway")
        else:
            trace = tracer.sample("gateway")
        return tracer.span(
            "gateway.request", "gateway", trace, tenant=tenant.name, tuples=offered
        )

    async def _handle_deploy(
        self,
        connection: _Connection,
        tenant: Tenant,
        message: Dict[str, Any],
        request_id: Any,
    ) -> None:
        query = message.get("query")
        if not isinstance(query, str) or not query.strip():
            raise GatewayProtocolError(
                ErrorCode.BAD_MESSAGE, "'deploy' needs a non-empty 'query' string"
            )
        names = await self._tenant_control(
            tenant, "deploy", {"query": query, "name": message.get("name")}
        )
        await connection.send({"type": "deployed", "id": request_id, "gestures": names})

    async def _handle_deploy_vocabulary(
        self,
        connection: _Connection,
        tenant: Tenant,
        message: Dict[str, Any],
        request_id: Any,
    ) -> None:
        manifest = message.get("manifest")
        vocabulary = message.get("vocabulary")
        if manifest is not None:
            if not isinstance(manifest, dict) or not manifest:
                raise GatewayProtocolError(
                    ErrorCode.BAD_MESSAGE,
                    "'manifest' must be a non-empty object of name -> query text",
                )
            names = await self._tenant_control(tenant, "deploy_manifest", manifest)
        elif isinstance(vocabulary, str):
            path = self.config.vocabularies.get(vocabulary)
            if path is None:
                raise GatewayProtocolError(
                    ErrorCode.UNKNOWN_VOCABULARY,
                    f"vocabulary {vocabulary!r} is not registered on this "
                    f"gateway (have: {sorted(self.config.vocabularies) or 'none'})",
                )
            if Path(path).suffix in (".db", ".sqlite", ".sqlite3"):
                names = await self._tenant_control(tenant, "deploy_database", path)
            else:
                from repro.analysis.cli import _load_manifest

                names = await self._tenant_control(
                    tenant, "deploy_manifest", dict(_load_manifest(Path(path)))
                )
        else:
            raise GatewayProtocolError(
                ErrorCode.BAD_MESSAGE,
                "'deploy_vocabulary' needs a 'manifest' object or a "
                "'vocabulary' name",
            )
        await connection.send({"type": "deployed", "id": request_id, "gestures": names})

    async def _tenant_control(self, tenant: Tenant, op: str, payload: Any = None) -> Any:
        """Run one control op behind the tenant's queue; map failures to
        typed protocol errors."""
        try:
            return await tenant.control(op, payload)
        except QueryAnalysisError as error:
            raise GatewayProtocolError(
                ErrorCode.ANALYSIS_REJECTED,
                str(error),
                codes=sorted({d.code for d in error.diagnostics}),
            ) from error
        except SessionClosedError as error:
            raise GatewayProtocolError(
                ErrorCode.SESSION_CLOSED, str(error), fatal=True
            ) from error
        except GatewayError:
            raise
        except Exception as error:
            if op in ("deploy", "deploy_manifest", "deploy_database"):
                raise GatewayProtocolError(
                    ErrorCode.DEPLOY_FAILED, f"{type(error).__name__}: {error}"
                ) from error
            raise
