"""Per-tenant state: session ownership, ingest queue, edge admission.

One :class:`Tenant` owns one :class:`~repro.api.session.GestureSession`
(inline or sharded, per its :class:`TenantConfig`), an ordered ingest
queue serviced by a single worker task, and the admission-control state
(token bucket, pending-tuple bound, connection cap).  The worker feeds
the session on an executor thread — the event loop never blocks on
matching — and pushes new detections to every subscribed connection
after each feed, preserving detection order per tenant.

Isolation contract: tenants share nothing but the process.  Every tenant
has its own engine(s), matchers, detector, metrics and database (see
``tests/test_session_isolation.py``), so one tenant's vocabulary,
backlog or failure never shows up in another tenant's detections — the
property the whole gateway tenancy model rests on.

Edge admission maps the runtime's backpressure policies to per-client
behaviour:

``block``
    The ``tuples`` frame is held (the server stops reading that client's
    socket — flow-control stall via TCP backpressure) until the pending
    bound has room and the rate limiter has tokens.
``drop_oldest``
    The oldest *queued* tuples are evicted to make room and counted; the
    offered frame is admitted.  A rate-limit excess drops the offered
    frame instead (old tuples cannot refund arrival tokens).
``drop_newest``
    The offered frame is dropped whole and counted; the backlog keeps
    its service guarantee.
``error``
    A typed ``error`` frame (``backpressure`` / ``rate_limited``) is
    sent and the connection is closed — for clients running their own
    flow control.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.session import GestureSession, SessionConfig
from repro.detection.events import GestureEvent
from repro.errors import AdmissionError, BackpressureError, GatewayError
from repro.observability.tracing import TraceContext
from repro.runtime.queues import BackpressurePolicy

__all__ = ["TenantConfig", "Tenant", "TokenBucket", "AsyncIngestQueue"]


@dataclass(frozen=True)
class TenantConfig:
    """Admission and session configuration of one tenant.

    Attributes
    ----------
    token:
        Shared secret a ``hello`` must present; ``None`` disables
        authentication for the tenant.
    session:
        The tenant's :class:`~repro.api.session.SessionConfig` — shards,
        matcher partitioning, analyzer gate (``session.analyze`` is what
        strict-mode deployment rejection uses), batch size.
    policy:
        Edge admission policy (any
        :class:`~repro.runtime.queues.BackpressurePolicy` name); also the
        default ``backpressure`` of a sharded tenant session.
    pending_capacity:
        Bound on tuples admitted but not yet fed, per tenant.
    max_connections:
        Concurrent websocket connections the tenant may hold.
    rate_limit_tuples_per_second:
        Sustained arrival-rate cap (token bucket); ``None`` = unlimited.
    rate_burst:
        Bucket size; defaults to one second's worth of tokens.
    """

    token: Optional[str] = None
    session: SessionConfig = field(default_factory=SessionConfig)
    policy: str = BackpressurePolicy.BLOCK
    pending_capacity: int = 4096
    max_connections: int = 64
    rate_limit_tuples_per_second: Optional[float] = None
    rate_burst: Optional[float] = None

    def __post_init__(self) -> None:
        BackpressurePolicy.validate(self.policy)
        if self.pending_capacity < 1:
            raise ValueError("pending_capacity must be at least 1")
        if self.max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if (
            self.rate_limit_tuples_per_second is not None
            and self.rate_limit_tuples_per_second <= 0
        ):
            raise ValueError("rate_limit_tuples_per_second must be positive")
        if self.rate_burst is not None and self.rate_burst <= 0:
            raise ValueError("rate_burst must be positive")


class TokenBucket:
    """A token bucket over an injectable monotonic clock (testable)."""

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else max(rate, 1.0)
        self._tokens = self.burst
        self._clock = clock
        self._last: Optional[float] = None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    def consume(self, count: float) -> float:
        """Take ``count`` tokens; returns 0.0 on success, else the wait.

        When the bucket cannot cover ``count`` the tokens are *not*
        consumed and the return value is the seconds until they could be.
        """
        now = self._now()
        if self._last is not None:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if count <= self._tokens:
            self._tokens -= count
            return 0.0
        return (count - self._tokens) / self.rate


@dataclass
class _Item:
    kind: str  # "tuples" | "control"
    weight: int
    stream: Optional[str] = None
    records: Optional[List[Mapping[str, Any]]] = None
    batch_size: Optional[int] = None
    op: Optional[str] = None
    payload: Any = None
    future: Optional[asyncio.Future] = None
    trace: Optional[TraceContext] = None


class AsyncIngestQueue:
    """The asyncio analogue of :class:`~repro.runtime.queues.ShardQueue`.

    Bounded in tuples; control items weigh zero and are never dropped
    (dropping a queued ``deploy`` or ``drain`` would wedge its caller).
    Single consumer (the tenant worker), many producers (the tenant's
    connections, all on the loop thread).
    """

    def __init__(self, capacity: int, policy: str) -> None:
        self.capacity = capacity
        self.policy = BackpressurePolicy.validate(policy)
        self._items: Deque[_Item] = deque()
        self._weight = 0
        self._closed = False
        self._not_empty = asyncio.Event()
        self._not_full = asyncio.Event()
        self._not_full.set()

    @property
    def depth(self) -> int:
        """Queued tuple count."""
        return self._weight

    async def put_tuples(
        self,
        stream: Optional[str],
        records: List[Mapping[str, Any]],
        batch_size: Optional[int],
        trace: Optional[TraceContext] = None,
    ) -> int:
        """Admit a tuples chunk per policy; returns the tuples dropped.

        Under ``drop_oldest`` the dropped tuples are *older* queued ones
        (the chunk is admitted); under ``drop_newest`` they are the
        offered chunk itself.  ``error`` raises
        :class:`~repro.errors.BackpressureError`; ``block`` suspends the
        caller — and, because the caller is the connection's only reader
        task, stops reading that client's socket (TCP flow control).
        """
        weight = len(records)
        dropped = 0
        if self._weight + weight > self.capacity:
            if self.policy == BackpressurePolicy.ERROR:
                raise BackpressureError(
                    f"tenant ingest queue is full ({self._weight}/"
                    f"{self.capacity} tuples pending, {weight} more offered)"
                )
            if self.policy == BackpressurePolicy.DROP_NEWEST:
                if self._weight > 0:
                    return weight
                # Oversized chunk against an empty queue: admit it.
            elif self.policy == BackpressurePolicy.DROP_OLDEST:
                dropped = self._evict_oldest(self._weight + weight - self.capacity)
            else:  # block
                while self._weight > 0 and self._weight + weight > self.capacity:
                    if self._closed:
                        raise GatewayError("the tenant ingest queue is closed")
                    self._not_full.clear()
                    await self._not_full.wait()
        if self._closed:
            raise GatewayError("the tenant ingest queue is closed")
        self._items.append(
            _Item(
                kind="tuples",
                weight=weight,
                stream=stream,
                records=records,
                batch_size=batch_size,
                trace=trace,
            )
        )
        self._weight += weight
        self._not_empty.set()
        return dropped

    def _evict_oldest(self, need: int) -> int:
        dropped = 0
        kept: List[_Item] = []
        while self._items and dropped < need:
            item = self._items.popleft()
            if item.weight == 0:
                kept.append(item)
                continue
            dropped += item.weight
            self._weight -= item.weight
        for item in reversed(kept):
            self._items.appendleft(item)
        return dropped

    def put_control(self, op: str, payload: Any = None) -> "asyncio.Future[Any]":
        """Enqueue a control op (weight 0); resolved by the worker."""
        if self._closed:
            raise GatewayError("the tenant ingest queue is closed")
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._items.append(_Item(kind="control", weight=0, op=op, payload=payload, future=future))
        self._not_empty.set()
        return future

    async def get(self) -> Optional[_Item]:
        """Next item in FIFO order; ``None`` once closed and empty."""
        while not self._items:
            if self._closed:
                return None
            self._not_empty.clear()
            await self._not_empty.wait()
        item = self._items.popleft()
        self._weight -= item.weight
        self._not_full.set()
        return item

    def close(self) -> None:
        """Refuse further puts; queued items stay readable (drain-on-close)."""
        self._closed = True
        self._not_empty.set()
        self._not_full.set()


class Tenant:
    """One tenant: session, ingest worker, admission state, subscribers."""

    def __init__(
        self,
        name: str,
        config: TenantConfig,
        executor: Optional[Executor] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.config = config
        # One thread per tenant, for the session's whole life: SQLite
        # handles (the gesture database) are bound to their creating
        # thread, so start, feeds, deploys and close must all run on the
        # same one.  A sharded session fans out to its own shard workers
        # from there; tenants stay concurrent with each other because
        # each owns its own executor.
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-gateway-{name}"
        )
        self._owns_executor = executor is None
        self.queue = AsyncIngestQueue(config.pending_capacity, config.policy)
        self.bucket = (
            TokenBucket(
                config.rate_limit_tuples_per_second,
                config.rate_burst,
                clock=clock,
            )
            if config.rate_limit_tuples_per_second is not None
            else None
        )
        self.session: Optional[GestureSession] = None
        #: Connections attached via ``hello``; the subset with
        #: ``subscribe`` receives ``event`` pushes.
        self.connections: "set" = set()
        self.subscribers: "set" = set()
        self._worker: Optional[asyncio.Task] = None
        self._session_lock = asyncio.Lock()
        #: Filled by the session's ``on_any`` handler from the feed
        #: thread, flushed to subscribers by the worker after each feed.
        self._event_buffer: Deque[GestureEvent] = deque()
        self._event_lock = threading.Lock()
        self.tuples_dropped = 0
        self.tuples_fed = 0
        self.rate_dropped = 0
        #: Feed errors are fatal for the tenant, never for the gateway.
        self.failure: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------------------

    async def ensure_started(self) -> GestureSession:
        """Create, start and wire the tenant's session (once)."""
        async with self._session_lock:
            if self.session is None:
                loop = asyncio.get_running_loop()
                session = GestureSession(config=self.config.session)
                await loop.run_in_executor(self._executor, session.start)
                session.on_any(self._buffer_event)
                self.session = session
                self._worker = loop.create_task(
                    self._run_worker(), name=f"repro-gateway-tenant-{self.name}"
                )
            return self.session

    async def close(self) -> None:
        """Drain queued work, stop the worker, close the session."""
        if self._worker is not None and not self._worker.done():
            stop = self.queue.put_control("stop")
            self.queue.close()
            try:
                await stop
            finally:
                await self._worker
        else:
            self.queue.close()
        if self.session is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self.session.close)
        if self._owns_executor:
            self._executor.shutdown(wait=False)

    # -- admission + ingestion -----------------------------------------------------------

    def check_connection_limit(self) -> None:
        if len(self.connections) >= self.config.max_connections:
            raise AdmissionError(
                f"tenant '{self.name}' is at its connection cap "
                f"({self.config.max_connections})"
            )

    def authenticate(self, token: Optional[str]) -> bool:
        return self.config.token is None or self.config.token == token

    async def admit_rate(self, count: int) -> int:
        """Apply the rate limiter; returns tuples dropped (0 or ``count``).

        ``block`` waits for tokens, the drop policies drop the offered
        chunk, ``error`` raises :class:`~repro.errors.AdmissionError`.
        """
        if self.bucket is None:
            return 0
        wait = self.bucket.consume(count)
        if wait <= 0:
            return 0
        if self.config.policy == BackpressurePolicy.BLOCK:
            while wait > 0:
                await asyncio.sleep(wait)
                wait = self.bucket.consume(count)
            return 0
        if self.config.policy == BackpressurePolicy.ERROR:
            raise AdmissionError(
                f"tenant '{self.name}' exceeded its rate limit of "
                f"{self.config.rate_limit_tuples_per_second} tuples/s"
            )
        self.rate_dropped += count
        self.tuples_dropped += count
        return count

    async def ingest(
        self,
        records: List[Mapping[str, Any]],
        stream: Optional[str],
        batch_size: Optional[int],
        trace: Optional[TraceContext] = None,
    ) -> Tuple[int, int]:
        """Admit one tuples frame; returns ``(accepted, dropped)``.

        ``dropped`` counts this frame's tuples under ``drop_newest`` /
        rate limiting, or *older* queued tuples under ``drop_oldest``
        (the frame itself is then accepted — accepted means queued, not
        survived).  ``trace`` rides the queued item to the feed, so a
        sampled request's spans connect the gateway frame to the shard
        worker that eventually processes it.
        """
        self.raise_if_failed()
        count = len(records)
        rate_dropped = await self.admit_rate(count)
        if rate_dropped:
            return 0, rate_dropped
        dropped = await self.queue.put_tuples(stream, records, batch_size, trace)
        self.tuples_dropped += dropped
        if self.queue.policy == BackpressurePolicy.DROP_NEWEST and dropped:
            return 0, dropped
        return count, dropped

    def control(self, op: str, payload: Any = None) -> "asyncio.Future[Any]":
        """Queue a control op behind all earlier ingests (FIFO barrier)."""
        self.raise_if_failed()
        return self.queue.put_control(op, payload)

    def raise_if_failed(self) -> None:
        if self.failure is not None:
            raise GatewayError(
                f"tenant '{self.name}' failed: {self.failure!r}"
            ) from self.failure

    # -- worker ------------------------------------------------------------------------

    def _buffer_event(self, event: GestureEvent) -> None:
        """Session ``on_any`` handler; runs on the feed (executor) thread."""
        with self._event_lock:
            self._event_buffer.append(event)

    def _drain_event_buffer(self) -> List[GestureEvent]:
        with self._event_lock:
            events = list(self._event_buffer)
            self._event_buffer.clear()
        return events

    async def _run_worker(self) -> None:
        """Service the ingest queue in order; feeds run on the executor."""
        loop = asyncio.get_running_loop()
        assert self.session is not None
        session = self.session
        while True:
            item = await self.queue.get()
            if item is None:
                break
            try:
                if item.kind == "tuples":
                    assert item.records is not None
                    await loop.run_in_executor(
                        self._executor,
                        self._feed_sync,
                        session,
                        item.stream,
                        item.records,
                        item.batch_size,
                        item.trace,
                    )
                elif item.op == "stop":
                    if item.future is not None and not item.future.cancelled():
                        item.future.set_result(None)
                    break
                else:
                    result = await loop.run_in_executor(
                        self._executor, self._control_sync, session, item.op, item.payload
                    )
                    if item.future is not None and not item.future.cancelled():
                        item.future.set_result(result)
            except Exception as error:  # noqa: BLE001 — isolate the tenant, not the loop
                if item.future is not None and not item.future.cancelled():
                    item.future.set_exception(error)
                elif item.kind == "tuples":
                    # A feed failure poisons the tenant (its matcher state
                    # is now unknown) but never the gateway.
                    self.failure = error
            await self._flush_events()

    def _feed_sync(
        self,
        session: GestureSession,
        stream: Optional[str],
        records: List[Mapping[str, Any]],
        batch_size: Optional[int],
        trace: Optional[TraceContext] = None,
    ) -> None:
        session.feed(records, batch_size=batch_size, stream=stream, trace=trace)
        self.tuples_fed += len(records)

    def _control_sync(self, session: GestureSession, op: Optional[str], payload: Any) -> Any:
        """Run one control op on the executor thread, after earlier feeds."""
        if op == "drain":
            session.drain()
            return {"events": len(session.events)}
        if op == "deploy":
            deployed = session.deploy(payload["query"], name=payload.get("name"))
            return [deployed.name]
        if op == "deploy_manifest":
            return session.deploy_vocabulary(payload)
        if op == "deploy_database":
            from repro.storage.database import GestureDatabase

            database = GestureDatabase(payload)
            try:
                return session.deploy_vocabulary(database)
            finally:
                database.close()
        if op == "detections":
            session.drain()
            kwargs = {}
            if payload.get("partition") is not None:
                kwargs["partition"] = payload["partition"]
            return [
                d.to_state()
                for d in session.detections(payload.get("name"), **kwargs)
            ]
        if op == "call":
            # Escape hatch for tests and the benchmark: run a callable
            # against the session, serialised behind the ingest queue.
            return payload(session)
        raise GatewayError(f"unknown tenant control op {op!r}")

    async def _flush_events(self) -> None:
        """Push buffered detections to every subscribed connection."""
        events = self._drain_event_buffer()
        if not events:
            return
        for connection in list(self.subscribers):
            await connection.push_events(events)

    # -- introspection -----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Admission/session counters for the ``/metrics`` document."""
        session = self.session
        registry = session.metrics if session is not None else None
        return {
            "connections": len(self.connections),
            "subscribers": len(self.subscribers),
            "pending_tuples": self.queue.depth,
            "pending_capacity": self.config.pending_capacity,
            "policy": self.config.policy,
            "tuples_fed": self.tuples_fed,
            "tuples_dropped": self.tuples_dropped,
            "rate_dropped": self.rate_dropped,
            "failed": self.failure is not None,
            "session_metrics": registry.snapshot() if registry is not None else None,
        }

    def __repr__(self) -> str:
        return (
            f"Tenant(name={self.name!r}, connections={len(self.connections)}, "
            f"pending={self.queue.depth}, policy={self.config.policy!r})"
        )
