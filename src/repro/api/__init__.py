"""Public application API: the fluent query DSL and the session façade.

This package is the one import an application needs:

* :mod:`repro.api.dsl` — ``F`` (field expressions), ``Q`` (fluent query
  builder), ``lit`` / ``udf`` helpers.  Builder chains produce the same
  frozen :class:`~repro.cep.query.Query` objects the parser and the
  learning pipeline produce, and round-trip byte-identically through
  ``to_query()`` / :func:`~repro.cep.parser.parse_query`.
* :mod:`repro.api.session` — :class:`GestureSession`, a context-managed
  façade owning the CEP engine, the ``kinect_t`` view, the detector, the
  learning pipeline and the gesture database behind one
  :class:`SessionConfig`.

>>> from repro.api import GestureSession, F, Q
>>> hands_up = Q.stream("kinect_t").where(F("rhand_y") > 400).named("hands_up")
>>> with GestureSession() as session:
...     _ = session.deploy(hands_up)
...     session.feed([{"ts": 0.0, "rhand_y": 500.0}], stream="kinect_t")
...     [event.gesture for event in session.events]
1
['hands_up']
"""

from repro.api.dsl import Expr, F, Q, QueryBuilder, lit, udf
from repro.api.session import (
    GestureSession,
    HandlerFailure,
    SessionConfig,
)
from repro.persistence import DurabilityConfig, RecoveryResult, ReplayController

__all__ = [
    "Expr",
    "F",
    "Q",
    "QueryBuilder",
    "lit",
    "udf",
    "GestureSession",
    "HandlerFailure",
    "SessionConfig",
    "DurabilityConfig",
    "RecoveryResult",
    "ReplayController",
]
