"""Fluent query-builder DSL for gesture queries.

The paper's artifact is a declarative CEP query (Fig. 1); this module lets
applications *write* one in Python instead of assembling
:class:`~repro.cep.query.Query` dataclasses or pasting query text:

>>> from repro.api import F, Q
>>> swipe = (
...     Q.stream("kinect_t")
...     .where(abs(F("rhand_x") + 300) < 150)
...     .then(abs(F("rhand_x") - 300) < 150)
...     .within(2.0)
...     .select("first")
...     .consume("all")
...     .named("swipe_right")
... )
>>> swipe.streams() == {"kinect_t"}
True

Two layers:

* :class:`Expr` — operator-overloaded wrapper around the existing
  :class:`~repro.cep.expressions.Expression` AST.  ``F("rhand_x")`` makes a
  field reference; arithmetic (``+ - * /``), comparisons (``< <= > >= ==
  !=``), ``abs()``, unary ``-``, and the boolean connectives ``&``, ``|``,
  ``~`` all build AST nodes.  ``udf("dist", a, b)`` calls a registered
  function.
* :class:`QueryBuilder` — an immutable fluent chain started by
  ``Q.stream(name)``.  ``where``/``then`` append event patterns, nested
  chains passed to ``then`` become parenthesised sub-sequences,
  ``within``/``select``/``consume`` set the sequence constraints, and
  ``named(output)`` terminates the chain with the existing frozen
  :class:`~repro.cep.query.Query`.

Round-trip guarantee
--------------------
Builders emit exactly the AST the parser produces for the rendered text:
``parse_query(builder.named(n).to_query())`` equals the built query, and
re-rendering is byte-identical.  Because predicates render to the same
canonical ``to_query()`` text either way, the engine's compiled-predicate
cache keys are stable across hand-written text, generated queries and
builder chains.  To preserve this, ``&``/``|`` flatten nested conjunctions
the way the parser does, and ``then`` inlines trivial single-event groups
the way the parser collapses them.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from repro.cep.expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    Expression,
    FieldRef,
    FunctionCall,
    Literal,
    NotOp,
    UnaryMinus,
)
from repro.cep.query import (
    ConsumePolicy,
    EventPattern,
    PatternNode,
    Query,
    SelectPolicy,
    SequencePattern,
)
from repro.errors import QueryBuilderError

#: Anything an :class:`Expr` operator accepts on the other side.
ExprLike = Union["Expr", Expression, bool, int, float, str]


def _to_expression(value: ExprLike) -> Expression:
    """Lower a DSL operand to a raw :class:`Expression` node."""
    if isinstance(value, Expr):
        return value.node
    if isinstance(value, Expression):
        return value
    if isinstance(value, (bool, int, float, str)):
        return Literal(value)
    raise QueryBuilderError(
        f"cannot use a {type(value).__name__} in a query expression; "
        f"expected an Expr, an Expression, or a literal"
    )


def _bool_join(operator: str, left: Expression, right: Expression) -> Expression:
    """Combine two boolean operands, flattening same-operator chains.

    The parser produces n-ary ``BooleanOp`` nodes for ``a and b and c``;
    flattening here keeps ``(x & y) & z`` structurally identical to the
    reparse of its own text.
    """
    operands = []
    for node in (left, right):
        if isinstance(node, BooleanOp) and node.operator == operator:
            operands.extend(node.operands)
        else:
            operands.append(node)
    return BooleanOp(operator, operands)


class Expr:
    """Operator-overloaded handle on an :class:`Expression` AST node.

    Instances are cheap immutable wrappers; every operator returns a new
    :class:`Expr`.  ``==``/``!=`` build :class:`Comparison` nodes (so
    instances are deliberately unhashable), and ``&``/``|``/``~`` build the
    boolean connectives — Python's ``and``/``or``/``not`` cannot be
    overloaded.
    """

    __slots__ = ("node",)

    def __init__(self, node: Expression) -> None:
        self.node = node

    # -- rendering ---------------------------------------------------------------

    def build(self) -> Expression:
        """The wrapped raw AST node."""
        return self.node

    def to_query(self) -> str:
        """Canonical query-text rendering of the expression."""
        return self.node.to_query()

    def __repr__(self) -> str:
        return f"Expr({self.to_query()!r})"

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("+", self.node, _to_expression(other)))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("+", _to_expression(other), self.node))

    def __sub__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("-", self.node, _to_expression(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("-", _to_expression(other), self.node))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("*", self.node, _to_expression(other)))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("*", _to_expression(other), self.node))

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("/", self.node, _to_expression(other)))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Expr(BinaryOp("/", _to_expression(other), self.node))

    def __neg__(self) -> "Expr":
        return Expr(UnaryMinus(self.node))

    def __pos__(self) -> "Expr":
        return self

    def __abs__(self) -> "Expr":
        return Expr(FunctionCall("abs", [self.node]))

    # -- comparisons -------------------------------------------------------------

    def __lt__(self, other: ExprLike) -> "Expr":
        return Expr(Comparison("<", self.node, _to_expression(other)))

    def __le__(self, other: ExprLike) -> "Expr":
        return Expr(Comparison("<=", self.node, _to_expression(other)))

    def __gt__(self, other: ExprLike) -> "Expr":
        return Expr(Comparison(">", self.node, _to_expression(other)))

    def __ge__(self, other: ExprLike) -> "Expr":
        return Expr(Comparison(">=", self.node, _to_expression(other)))

    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return Expr(Comparison("==", self.node, _to_expression(other)))

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return Expr(Comparison("!=", self.node, _to_expression(other)))

    # ``==`` builds a Comparison instead of testing equality, so instances
    # must not silently fall back to identity hashing inside sets/dicts.
    __hash__ = None  # type: ignore[assignment]

    # -- boolean connectives -----------------------------------------------------

    def __and__(self, other: ExprLike) -> "Expr":
        return Expr(_bool_join("and", self.node, _to_expression(other)))

    def __rand__(self, other: ExprLike) -> "Expr":
        return Expr(_bool_join("and", _to_expression(other), self.node))

    def __or__(self, other: ExprLike) -> "Expr":
        return Expr(_bool_join("or", self.node, _to_expression(other)))

    def __ror__(self, other: ExprLike) -> "Expr":
        return Expr(_bool_join("or", _to_expression(other), self.node))

    def __invert__(self) -> "Expr":
        return Expr(NotOp(self.node))

    def __bool__(self) -> bool:
        raise QueryBuilderError(
            "a query expression has no truth value; use '&' / '|' / '~' "
            "instead of 'and' / 'or' / 'not'"
        )


class _FieldFactory:
    """``F("rhand_x")`` (or ``F.rhand_x``) — a field-reference expression."""

    def __call__(self, name: str) -> Expr:
        return Expr(FieldRef(name))

    def __getattr__(self, name: str) -> Expr:
        if name.startswith("__"):
            raise AttributeError(name)
        return Expr(FieldRef(name))

    def __repr__(self) -> str:
        return "F"


F = _FieldFactory()


def lit(value: Any) -> Expr:
    """Wrap a Python constant as a query literal."""
    return Expr(Literal(value))


def udf(name: str, *arguments: ExprLike) -> Expr:
    """Call a registered (or built-in) function, e.g. ``udf("dist", a, b)``."""
    return Expr(FunctionCall(name, [_to_expression(arg) for arg in arguments]))


# ---------------------------------------------------------------------------
# Query builder
# ---------------------------------------------------------------------------

#: Things ``then()`` accepts as a step.
StepLike = Union[Expr, Expression, bool, EventPattern, SequencePattern, "QueryBuilder"]


def _unwrap_trivial(node: PatternNode) -> PatternNode:
    """Collapse constraint-free single-element sequence wrappers.

    The parser collapses a parenthesised group holding exactly one term and
    carrying no constraints into that term; builders must emit the AST
    their own text reparses to, so the same collapse is applied when a
    chain is nested or built.
    """
    while (
        isinstance(node, SequencePattern)
        and len(node.elements) == 1
        and node.within_seconds is None
        and node.select is SelectPolicy.FIRST
        and node.consume is ConsumePolicy.ALL
    ):
        node = node.elements[0]
    return node


def _coerce_policy(value: Union[str, SelectPolicy, ConsumePolicy], enum_type: type) -> Any:
    if isinstance(value, enum_type):
        return value
    try:
        return enum_type(str(value).lower())
    except ValueError:
        options = [member.value for member in enum_type]
        raise QueryBuilderError(
            f"unknown {enum_type.__name__.replace('Policy', '').lower()} policy "
            f"{value!r}; expected one of {options}"
        ) from None


class QueryBuilder:
    """An immutable fluent chain producing a :class:`Query`.

    Every method returns a *new* builder, so partial chains can be shared
    and extended divergently — handy for building gesture-family variants::

        base = Q.stream("kinect_t").where(abs(F("rhand_y") - 450) < 100)
        fast = base.within(1.0).named("flick")
        slow = base.within(4.0).named("reach")

    ``named(output)`` terminates the chain and returns the frozen
    :class:`Query`; alternatively pass the builder itself anywhere a query
    is accepted (``CEPEngine.register_query``, ``GestureDetector.deploy``,
    ``GestureSession.deploy``) after calling :meth:`output`.
    """

    __slots__ = ("_stream", "_steps", "_within", "_select", "_consume", "_output", "_name")

    def __init__(
        self,
        stream: str,
        steps: Tuple[PatternNode, ...] = (),
        within: Optional[float] = None,
        select: SelectPolicy = SelectPolicy.FIRST,
        consume: ConsumePolicy = ConsumePolicy.ALL,
        output: Optional[str] = None,
        name: str = "",
    ) -> None:
        if not stream:
            raise QueryBuilderError("the builder needs a default stream name")
        self._stream = stream
        self._steps = steps
        self._within = within
        self._select = select
        self._consume = consume
        self._output = output
        self._name = name

    def _copy(self, **overrides: Any) -> "QueryBuilder":
        state = {
            "stream": self._stream,
            "steps": self._steps,
            "within": self._within,
            "select": self._select,
            "consume": self._consume,
            "output": self._output,
            "name": self._name,
        }
        state.update(overrides)
        return QueryBuilder(**state)

    # -- steps -------------------------------------------------------------------

    def where(self, predicate: StepLike, stream: Optional[str] = None,
              label: str = "") -> "QueryBuilder":
        """Append an event pattern (alias of :meth:`then`, reads better first)."""
        return self.then(predicate, stream=stream, label=label)

    def then(self, step: StepLike, stream: Optional[str] = None,
             label: str = "") -> "QueryBuilder":
        """Append the next step of the sequence (the ``->`` operator).

        ``step`` may be a predicate expression (an event on the builder's
        default stream — override per step with ``stream=``), a pre-built
        :class:`EventPattern` / :class:`SequencePattern`, or another
        :class:`QueryBuilder` chain, which becomes a parenthesised nested
        sequence exactly like the paper's left-nested generated queries.
        """
        node: PatternNode
        if isinstance(step, (QueryBuilder, EventPattern, SequencePattern)) and (
            stream is not None or label
        ):
            raise QueryBuilderError(
                "stream= and label= apply only to predicate steps; a "
                "pre-built event, sequence or chain already carries its own"
            )
        if isinstance(step, QueryBuilder):
            node = _unwrap_trivial(step.pattern())
        elif isinstance(step, (EventPattern, SequencePattern)):
            node = step
        else:
            node = EventPattern(
                stream=stream or self._stream,
                predicate=_to_expression(step),
                label=label,
            )
        return self._copy(steps=self._steps + (node,))

    # -- constraints -------------------------------------------------------------

    def within(self, seconds: float) -> "QueryBuilder":
        """Bound the time between the sequence's first and last event."""
        if seconds <= 0:
            raise QueryBuilderError("'within' must be positive")
        return self._copy(within=float(seconds))

    def select(self, policy: Union[str, SelectPolicy]) -> "QueryBuilder":
        """Reporting policy when several matches complete together."""
        return self._copy(select=_coerce_policy(policy, SelectPolicy))

    def consume(self, policy: Union[str, ConsumePolicy]) -> "QueryBuilder":
        """What happens to partial matches once a detection fires."""
        return self._copy(consume=_coerce_policy(policy, ConsumePolicy))

    # -- termination -------------------------------------------------------------

    @property
    def output_value(self) -> Optional[str]:
        """The output set via :meth:`output`, or ``None`` while unset."""
        return self._output

    def output(self, output: str, name: str = "") -> "QueryBuilder":
        """Set the detection output value (and optional registration name)
        without terminating the chain — makes the builder deployable as-is."""
        if not output:
            raise QueryBuilderError("the output value must be non-empty")
        return self._copy(output=output, name=name)

    def named(self, output: str, name: str = "") -> Query:
        """Terminate the chain: set the output value and build the query."""
        return self.output(output, name=name).build()

    def pattern(self) -> SequencePattern:
        """The chain's pattern as a :class:`SequencePattern`."""
        if not self._steps:
            raise QueryBuilderError(
                f"builder on stream '{self._stream}' has no event patterns; "
                f"add at least one with .where(...)"
            )
        return SequencePattern(
            elements=self._steps,
            within_seconds=self._within,
            select=self._select,
            consume=self._consume,
        )

    def build(self, output: Optional[str] = None) -> Query:
        """Build the frozen :class:`Query` (engine deployment accepts this
        implicitly for builders whose output was set via :meth:`output`)."""
        value = output or self._output
        if not value:
            raise QueryBuilderError(
                "the builder has no output value; terminate the chain with "
                ".named('gesture') or set it with .output('gesture')"
            )
        pattern = _unwrap_trivial(self.pattern())
        if isinstance(pattern, EventPattern):
            pattern = SequencePattern(elements=(pattern,))
        return Query(output=value, pattern=pattern, name=self._name)

    def to_query(self) -> str:
        """Render the built query as deployable text (Fig. 1 format)."""
        return self.build().to_query()

    def streams(self) -> set:
        """Stream names referenced by the chain so far."""
        return self.pattern().streams()

    def __repr__(self) -> str:
        return (
            f"QueryBuilder(stream={self._stream!r}, steps={len(self._steps)}, "
            f"within={self._within}, output={self._output!r})"
        )


class Q:
    """Entry point of the fluent query DSL: ``Q.stream("kinect_t")``."""

    def __init__(self) -> None:
        raise TypeError("Q is a namespace; start a chain with Q.stream(name)")

    @staticmethod
    def stream(name: str) -> QueryBuilder:
        """Start a builder chain whose events default to stream ``name``."""
        return QueryBuilder(stream=name)

    @staticmethod
    def event(stream: str, predicate: StepLike, label: str = "") -> EventPattern:
        """A standalone event pattern, for mixing streams inside one chain."""
        return EventPattern(stream=stream, predicate=_to_expression(predicate), label=label)

    @staticmethod
    def sequence(
        *steps: StepLike,
        stream: str,
        within: Optional[float] = None,
        select: Union[str, SelectPolicy] = SelectPolicy.FIRST,
        consume: Union[str, ConsumePolicy] = ConsumePolicy.ALL,
    ) -> QueryBuilder:
        """One-shot constructor: ``Q.sequence(p0, p1, stream="kinect_t", within=2)``."""
        builder = QueryBuilder(stream=stream)
        for step in steps:
            builder = builder.then(step)
        if within is not None:
            builder = builder.within(within)
        return builder.select(select).consume(consume)
