"""The unified ``GestureSession`` façade.

Before this module, every application hand-wired the same stack: a
:class:`~repro.cep.engine.CEPEngine`, the ``kinect_t`` view
(:func:`~repro.cep.views.install_kinect_view`), a
:class:`~repro.detection.detector.GestureDetector`, one
:class:`~repro.core.learner.GestureLearner` per gesture, and a
:class:`~repro.storage.database.GestureDatabase`.  A
:class:`GestureSession` owns all of it behind one object with a
context-manager lifecycle::

    with GestureSession() as session:
        session.learn("swipe_right", samples, deploy=True)
        session.on("swipe_right", handler)
        session.feed(frames, batch_size=64)
        events = session.events

Everything composes the engine's fast paths transparently: deployed
predicates go through the engine-wide compiled-predicate cache,
``feed(batch_size=…)`` uses the batched delivery path, and detections stay
partitioned per player (``session.detections(partition=…)``).

Lifecycle
---------
A session starts lazily on first use (or explicitly via :meth:`start` /
``with``).  Calling :meth:`start` twice raises
:class:`~repro.errors.SessionStateError`; feeding a closed session raises
:class:`~repro.errors.SessionClosedError`.  Handlers registered through
:meth:`on` / :meth:`on_any` are exception-isolated: a raising handler never
breaks delivery to other handlers, the failure is recorded in
:attr:`GestureSession.handler_errors` (and forwarded to :meth:`on_error`
observers).

Scaling out
-----------
``SessionConfig(shards=N)`` with ``N > 1`` runs the whole session on a
:class:`~repro.runtime.ShardedRuntime`: frames are routed to N worker
shards by a stable hash of their ``player`` id, every ``deploy`` fans out
to all shards, and ``detections`` / ``events`` / ``on`` behave exactly as
inline — reads drain the shard queues first, so a ``feed`` is always fully
observed, and restricted to one player the detection sequence is
byte-identical to the inline engine's (the B4 benchmark asserts it).
``shards=1`` (the default) keeps today's inline engine path untouched.
``backpressure`` / ``queue_capacity`` bound the per-shard queues, and
``shard_executor`` picks worker threads (default) or worker processes
(true multi-core parallelism).  :attr:`GestureSession.metrics` exposes the
per-shard counters.  The interactive learning workflow and direct
``session.engine`` / ``session.view`` access require an inline session; a
failed shard surfaces its original exception on the next feed or read as
a :class:`~repro.errors.ShardFailedError`.

Durability
----------
``GestureSession(durability=DurabilityConfig("./run1"))`` puts the session
on a write-ahead event log: every fed tuple and every state-changing
operation (deploy / undeploy / clear) is appended *before* it takes
effect, and :meth:`GestureSession.snapshot` (or the automatic
``snapshot_every_tuples`` policy) persists the whole stack's state —
matcher run tables, detections, transformer smoothing state, stream
counters, the simulated clock — anchored to a log offset.  After a crash,
:meth:`GestureSession.recover` rebuilds the session from the newest
snapshot plus the log tail, with per-partition detections identical to an
uninterrupted run; :meth:`GestureSession.replay` re-drives the recorded
log into fresh sessions with VCR controls (faster-than-realtime, pause,
seek-to-offset).  Works on inline and sharded sessions alike — a sharded
snapshot captures every shard's engine keyed by the router topology, and
recovery refuses a directory recorded under a different topology::

    with GestureSession(durability=DurabilityConfig("./run1")) as session:
        session.deploy(hands_up)
        session.feed(frames)
        session.snapshot()
        session.feed(more_frames)          # appended to the log
    # ... crash, new process ...
    session = GestureSession.recover(DurabilityConfig("./run1"))
    session.events                         # identical to the live run's
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.dsl import Expr, QueryBuilder
from repro.cep.engine import CEPEngine, DeployedQuery
from repro.cep.matcher import Detection, MatcherConfig
from repro.cep.query import Query
from repro.cep.sinks import Sink
from repro.cep.views import (
    RAW_STREAM_NAME,
    TRANSFORMED_STREAM_NAME,
    View,
    install_kinect_view,
)
from repro.core.description import GestureDescription
from repro.core.learner import GestureLearner
from repro.detection.detector import GestureDetector, GestureHandler
from repro.detection.events import DetectionFeedback, GestureEvent
from repro.detection.workflow import LearningWorkflow, WorkflowConfig
from repro.errors import (
    QueryBuilderError,
    RecoveryError,
    SessionClosedError,
    SessionStateError,
)
from repro.observability.clock import perf_clock
from repro.observability.health import HealthReport, HealthWatchdog, WatchdogConfig
from repro.observability.profiling import UNTAGGED
from repro.observability.slo import SLO, Alert, SLOEvaluator
from repro.observability.telemetry import Telemetry, TelemetryConfig
from repro.observability.timeseries import MetricsSampler
from repro.observability.tracing import TraceContext, use_context
from repro.persistence import (
    DurabilityConfig,
    DurabilityManager,
    LogEntry,
    RecoveryResult,
    ReplayController,
)
from repro.runtime.metrics import MetricsRegistry
from repro.storage.database import GestureDatabase
from repro.streams.clock import Clock, SimulatedClock
from repro.transform.pipeline import KinectTransformer, TransformConfig

#: Sentinel distinguishing "parameter not given" from an explicit ``None``.
_UNSET: Any = object()


@dataclass(frozen=True)
class SessionConfig:
    """Configuration of a :class:`GestureSession`.

    Composes the per-subsystem configurations instead of duplicating their
    knobs: ``matcher`` tunes the NFA runtime (partitioning, run caps,
    compiled predicates), ``transform`` the ``kinect_t`` view, and
    ``workflow`` the learning pipeline (learner, query generation,
    recording controller, validation).

    Attributes
    ----------
    matcher:
        Engine-wide NFA runtime configuration.
    transform:
        Configuration of the installed Kinect transformation view.
    workflow:
        Learning-pipeline configuration (its ``learner`` and ``querygen``
        entries are also what :meth:`GestureSession.learn` and
        :meth:`GestureSession.deploy` use for descriptions).
    raw_stream / view_stream:
        Names of the raw sensor stream and the transformed view.
    database_path:
        Gesture-database location (``":memory:"`` by default).
    batch_size:
        Default chunk size of :meth:`GestureSession.feed`; ``None`` keeps
        the per-tuple delivery path.
    deploy_control_gestures:
        Deploy the wave/finalise control queries when the interactive
        workflow is first used.
    shards:
        Number of worker shards.  ``1`` (default) runs the inline engine
        exactly as before; ``N > 1`` runs a
        :class:`~repro.runtime.ShardedRuntime` of N engines with frames
        routed per player (see "Scaling out" in the module docstring).
    shard_executor:
        ``"thread"`` (default) or ``"process"`` worker shards; only
        meaningful with ``shards > 1``.
    backpressure:
        Per-shard queue policy when feeding outruns the workers:
        ``"block"`` (default), ``"drop_oldest"``, ``"drop_newest"`` or
        ``"error"``.
    queue_capacity:
        Per-shard queue bound, in tuples.
    analyze:
        Default static-analysis gate of :meth:`GestureSession.deploy` and
        :meth:`GestureSession.deploy_vocabulary`: ``"off"`` (default),
        ``"warn"`` or ``"strict"``.  See ``docs/analysis.md``.
    telemetry:
        ``True`` (default) maintains latency histograms and per-query
        matcher counters (queue wait, batch processing, ingest→detection;
        exposed on :attr:`GestureSession.metrics` and ``/metrics``).
        ``False`` disables the whole observability layer, restoring the
        exact pre-telemetry hot path.  See ``docs/observability.md``.
    trace_sample_rate:
        Fraction of feeds that start a trace (0.0, the default, records no
        spans and costs nothing on the hot path; 1.0 traces every feed).
        Sampled spans are exported by :meth:`GestureSession.export_trace`.
    trace_buffer_size:
        Span ring-buffer bound; oldest spans are evicted beyond it.
    slow_batch_seconds:
        When set, a batch taking longer than this logs a structured
        warning on the ``repro.observability.slowlog`` logger.
    sample_interval_seconds:
        When set, a background
        :class:`~repro.observability.timeseries.MetricsSampler` polls the
        session's counters and histogram digests into windowed ring-buffer
        series at this interval (``session.sampler``).  ``None`` (default)
        starts no sampler thread.
    slos:
        Declarative :class:`~repro.observability.slo.SLO` objectives,
        evaluated by burn-rate rules on the sampler's beat (implies a
        sampler at the default interval when ``sample_interval_seconds``
        is unset).  Fired alerts land on ``session.alerts``, the
        structured alert log and the gateway's ``/alerts``.
    watchdog:
        A :class:`~repro.observability.health.WatchdogConfig` starts the
        health watchdog thread: per-shard progress heartbeats, stall /
        queue-saturation / fsync-stall detection, read via
        ``session.health()`` and the gateway's ``/healthz``.  ``None``
        (default) starts no watchdog.
    profile_hz:
        Sampling rate of the continuous per-query profiler; 0.0 (default)
        constructs no profiler at all.  Results via ``session.profile()``.
    """

    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    transform: TransformConfig = field(default_factory=TransformConfig)
    workflow: WorkflowConfig = field(default_factory=WorkflowConfig)
    raw_stream: str = RAW_STREAM_NAME
    view_stream: str = TRANSFORMED_STREAM_NAME
    database_path: Union[str, Path] = ":memory:"
    batch_size: Optional[int] = None
    deploy_control_gestures: bool = False
    shards: int = 1
    shard_executor: str = "thread"
    backpressure: str = "block"
    queue_capacity: int = 2048
    analyze: str = "off"
    telemetry: bool = True
    trace_sample_rate: float = 0.0
    trace_buffer_size: int = 4096
    slow_batch_seconds: Optional[float] = None
    sample_interval_seconds: Optional[float] = None
    slos: Tuple[SLO, ...] = ()
    watchdog: Optional[WatchdogConfig] = None
    profile_hz: float = 0.0

    def telemetry_config(self) -> Optional[TelemetryConfig]:
        """The flat telemetry knobs as one config (``None`` when off)."""
        if not self.telemetry:
            return None
        return TelemetryConfig(
            enabled=True,
            trace_sample_rate=self.trace_sample_rate,
            trace_buffer_size=self.trace_buffer_size,
            slow_batch_seconds=self.slow_batch_seconds,
            profile_hz=self.profile_hz,
        )

    def __post_init__(self) -> None:
        if not self.raw_stream or not self.view_stream:
            raise ValueError("stream names must be non-empty")
        if self.analyze not in ("off", "warn", "strict"):
            raise ValueError(
                f"analyze must be 'off', 'warn' or 'strict', not {self.analyze!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be at least 1 when given")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_executor not in ("thread", "process"):
            raise ValueError("shard_executor must be 'thread' or 'process'")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        # Validate the policy eagerly (and centrally) rather than at start().
        from repro.runtime.queues import BackpressurePolicy

        BackpressurePolicy.validate(self.backpressure)
        object.__setattr__(self, "slos", tuple(self.slos))  # accept any iterable
        if self.sample_interval_seconds is not None and self.sample_interval_seconds <= 0:
            raise ValueError("sample_interval_seconds must be positive when given")
        if not self.telemetry and (
            self.sample_interval_seconds is not None
            or self.slos
            or self.watchdog is not None
            or self.profile_hz
        ):
            raise ValueError(
                "sample_interval_seconds / slos / watchdog / profile_hz need "
                "telemetry=True: the control plane observes the telemetry layer"
            )
        # TelemetryConfig validates rates/bounds/threshold in its own
        # __post_init__; building it here surfaces bad knobs eagerly too.
        self.telemetry_config()


@dataclass(frozen=True)
class HandlerFailure:
    """One exception raised by a gesture handler (delivery was not broken)."""

    gesture: str
    event: GestureEvent
    error: BaseException


#: Vocabulary sources ``deploy_vocabulary`` accepts.
VocabularySource = Union[GestureDatabase, Mapping[str, Any]]


class GestureSession:
    """One façade over the whole learn-deploy-detect stack.

    Parameters
    ----------
    config:
        Session configuration; defaults compose the subsystem defaults.
    durability:
        A :class:`~repro.persistence.DurabilityConfig` puts the session on
        a write-ahead event log with snapshot/recover/replay support (see
        "Durability" in the module docstring).  ``None`` (default) keeps
        the session fully in-memory.
    clock:
        Time source of a newly created engine (a fresh
        :class:`~repro.streams.clock.SimulatedClock` by default).
    engine:
        An existing engine to run on.  The session installs its transform
        view only if the configured view stream is missing; the engine
        keeps its own matcher config and clock (combining an external
        engine with a non-default ``config.matcher`` or a ``clock`` is
        rejected rather than silently ignored).
    database:
        An existing gesture database; the session will not close it.

    Examples
    --------
    >>> from repro.api import GestureSession, F, Q
    >>> with GestureSession() as session:
    ...     _ = session.deploy(
    ...         Q.stream("kinect_t").where(F("rhand_y") > 400).named("hands_up")
    ...     )
    ...     session.feed([{"ts": 0.0, "rhand_y": 500.0}], stream="kinect_t")
    ...     [event.gesture for event in session.events]
    1
    ['hands_up']
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        clock: Optional[Clock] = None,
        engine: Optional[CEPEngine] = None,
        database: Optional[GestureDatabase] = None,
        durability: Optional[DurabilityConfig] = None,
    ) -> None:
        self.config = config or SessionConfig()
        self._clock = clock
        self._engine = engine
        self._runtime = None  # type: Optional[Any]  # ShardedRuntime when shards > 1
        self._database = database
        self._owns_database = database is None
        self._view: Optional[View] = None
        self._detector: Optional[GestureDetector] = None
        self._workflow: Optional[LearningWorkflow] = None
        self._durability_config = durability
        self._durability: Optional[DurabilityManager] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._telemetry: Optional[Telemetry] = None
        self._sampler: Optional[MetricsSampler] = None
        self._slo_evaluator: Optional[SLOEvaluator] = None
        self._watchdog: Optional[HealthWatchdog] = None
        #: What the last :meth:`recover` replayed (``None`` on live sessions).
        self.last_recovery: Optional[RecoveryResult] = None
        self._started = False
        self._closed = False
        self.handler_errors: List[HandlerFailure] = []
        self._error_handlers: List[Callable[[HandlerFailure], None]] = []

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "GestureSession":
        """Build and wire the stack.  Raises on double-start or after close."""
        if self._closed:
            raise SessionClosedError("this session has been closed")
        if self._started:
            raise SessionStateError(
                "the session is already started; create a new GestureSession "
                "for a fresh stack"
            )
        if self.config.shards > 1:
            self._start_sharded()
            return self
        if self._engine is not None:
            # An injected engine was built with its own matcher config and
            # clock; silently dropping the session's would mislead callers.
            if self.config.matcher != MatcherConfig():
                raise SessionStateError(
                    "cannot apply a non-default SessionConfig.matcher to an "
                    "externally created engine; configure the engine's "
                    "matcher_config instead"
                )
            if self._clock is not None and self._clock is not self._engine.clock:
                raise SessionStateError(
                    "cannot apply a clock to an externally created engine; "
                    "the engine already owns one"
                )
        if self._engine is None:
            self._engine = CEPEngine(
                clock=self._clock or SimulatedClock(),
                matcher_config=self.config.matcher,
            )
        if self.config.view_stream in self._engine.views:
            if self.config.transform != TransformConfig():
                raise SessionStateError(
                    "cannot apply a non-default SessionConfig.transform: the "
                    "engine already has the view installed; configure the "
                    "view's transformer instead"
                )
            self._view = self._engine.get_view(self.config.view_stream)
        else:
            self._view = install_kinect_view(
                self._engine,
                transform_config=self.config.transform,
                raw_name=self.config.raw_stream,
                view_name=self.config.view_stream,
            )
        if self._database is None:
            self._database = GestureDatabase(self.config.database_path)
        self._detector = GestureDetector(
            engine=self._engine, querygen_config=self.config.workflow.querygen
        )
        self._init_durability(self._engine)
        telemetry_config = self.config.telemetry_config()
        if telemetry_config is not None:
            # Inline sessions get a registry of their own (shard 0 holds
            # the feed histograms), so ``session.metrics`` — and a gateway
            # ``/metrics`` scrape — works with or without sharding.
            self._telemetry = Telemetry(telemetry_config)
            self._engine.telemetry = self._telemetry
            if self._metrics is None:
                self._metrics = MetricsRegistry()
            self._metrics.set_query_stats_provider(self._engine.query_stats)
        self._start_control_plane()
        self._started = True
        return self

    def _start_sharded(self) -> None:
        """Build the session on a :class:`~repro.runtime.ShardedRuntime`."""
        from repro.runtime import ShardedRuntime
        from repro.runtime.shard import ShardEngineSpec

        if self._engine is not None:
            raise SessionStateError(
                "cannot shard an externally created engine; a sharded session "
                "builds one engine per shard from SessionConfig"
            )
        if self._clock is not None:
            # Each shard engine owns a private clock that only stamps
            # tuples missing the timestamp field; silently substituting N
            # diverging copies for an injected clock would corrupt 'within'
            # windows.  Sharded feeding expects timestamped tuples.
            raise SessionStateError(
                "cannot apply a clock to a sharded session: each shard owns "
                "its own engine clock, and routed frames must carry their "
                "own timestamps; use an inline (shards=1) session for "
                "clock-stamped feeding"
            )
        telemetry_config = self.config.telemetry_config()
        spec = ShardEngineSpec(
            matcher=self.config.matcher,
            transform=self.config.transform,
            raw_stream=self.config.raw_stream,
            view_stream=self.config.view_stream,
            telemetry=telemetry_config,
        )
        if telemetry_config is not None:
            self._telemetry = Telemetry(telemetry_config)
        runtime = ShardedRuntime(
            shard_count=self.config.shards,
            spec=spec,
            executor=self.config.shard_executor,
            backpressure=self.config.backpressure,
            queue_capacity=self.config.queue_capacity,
            telemetry=self._telemetry,
        )
        runtime.start()
        self._runtime = runtime
        # The runtime duck-types the engine surface the detector (and the
        # session's own data path) uses, so everything below runs sharded
        # without special cases.
        self._engine = runtime
        if self._database is None:
            self._database = GestureDatabase(self.config.database_path)
        self._detector = GestureDetector(
            engine=runtime, querygen_config=self.config.workflow.querygen
        )
        self._init_durability(runtime)
        self._start_control_plane()
        self._started = True

    def _start_control_plane(self) -> None:
        """Start the opted-in observability threads: sampler, SLO
        evaluation, watchdog and the parent-side profiler.

        Everything here is off-by-default — with none of the knobs set
        this method does nothing, and the hot path is untouched either
        way (the control plane only *reads* parent-visible state on its
        own named threads).
        """
        if self._telemetry is None:
            return
        config = self.config
        if config.slos or config.sample_interval_seconds is not None:
            if config.slos:
                self._slo_evaluator = SLOEvaluator(config.slos)
            self._sampler = MetricsSampler(
                interval_seconds=config.sample_interval_seconds or 0.5,
                evaluator=self._slo_evaluator,
            )
            registry = self._runtime.metrics if self._runtime is not None else self._metrics
            if registry is not None:
                self._sampler.add_registry(registry)
            self._sampler.start()
        if config.watchdog is not None:
            self._watchdog = HealthWatchdog(config.watchdog)
            if self._runtime is not None:
                self._watchdog.add_liveness_source(self._runtime.shard_liveness)
            registry = self._runtime.metrics if self._runtime is not None else self._metrics
            if registry is not None:
                self._watchdog.add_durability_source(registry.durability.snapshot)
            self._watchdog.start()
        if self._telemetry.profiler is not None:
            # Parent-side sampling: covers the inline engine and thread
            # shards directly; process shards run their own child-side
            # profiler whose counts are folded in on telemetry collection.
            self._telemetry.profiler.start()

    def _init_durability(self, target: Any) -> None:
        """Open the event log and install the write-ahead ingest tap."""
        if self._durability_config is None:
            return
        # Sharded sessions record durability counters in the runtime's
        # registry; inline sessions create one, so ``session.metrics``
        # covers durability either way.
        if self._runtime is not None:
            registry = self._runtime.metrics
        else:
            self._metrics = registry = MetricsRegistry()
        self._durability = DurabilityManager(
            target,
            self._durability_config,
            capture=self._capture_session_state,
            metrics=registry.durability,
        )
        self._durability.attach()

    def close(self) -> None:
        """End the session.  Idempotent; further feeding raises.

        With durability enabled, the event log is flushed, fsynced and
        sealed here — a cleanly closed directory recovers with zero replay
        beyond the last snapshot's tail.
        """
        if self._closed:
            return
        self._closed = True
        self._started = False
        # Control-plane threads first: their final reads observe the live
        # runtime, and nothing may outlive the session.
        if self._sampler is not None:
            self._sampler.stop()
        if self._watchdog is not None:
            self._watchdog.stop()
        if self._runtime is not None:
            # Finish queued work, stop the workers, keep results readable.
            # (This final collection also folds child profiler counts in.)
            self._runtime.stop(drain=True)
            self._runtime.join()
        if self._telemetry is not None and self._telemetry.profiler is not None:
            self._telemetry.profiler.stop()
        if self._durability is not None:
            self._durability.close()
        if self._database is not None and self._owns_database:
            self._database.close()

    def __enter__(self) -> "GestureSession":
        self._ensure_started()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_started(self) -> None:
        if self._closed:
            raise SessionClosedError("this session has been closed")
        if not self._started:
            self.start()

    # -- owned components --------------------------------------------------------------

    @property
    def engine(self) -> CEPEngine:
        self._ensure_started()
        assert self._engine is not None
        if self._runtime is not None:
            raise SessionStateError(
                "a sharded session has one engine per shard, not a single "
                "CEPEngine; use session.runtime (or an inline shards=1 "
                "session) instead"
            )
        return self._engine

    @property
    def runtime(self):
        """The :class:`~repro.runtime.ShardedRuntime`, or ``None`` inline.

        Stays readable after :meth:`close` (like :attr:`events`), so
        metrics can be reported once a workload finished.
        """
        if self._runtime is None and self.config.shards > 1 and not self._closed:
            self._ensure_started()
        return self._runtime

    @property
    def metrics(self):
        """The session's :class:`~repro.runtime.MetricsRegistry`.

        Sharded sessions expose the runtime's registry (per-shard counters,
        latency histograms, durability); an inline session has one whenever
        telemetry (the default) or durability is enabled — its shard 0
        carries the feed-path histograms.  ``None`` only with both off.
        """
        runtime = self.runtime
        if runtime is not None:
            return runtime.metrics
        return self._metrics

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The live telemetry bundle (tracer + slow-batch log), or ``None``."""
        return self._telemetry

    @property
    def detector(self) -> GestureDetector:
        self._ensure_started()
        assert self._detector is not None
        return self._detector

    @property
    def database(self) -> GestureDatabase:
        self._ensure_started()
        assert self._database is not None
        return self._database

    @property
    def view(self) -> View:
        self._ensure_started()
        if self._runtime is not None:
            raise SessionStateError(
                "a sharded session has one transformation view per shard; "
                "shard-local transformer state is managed through "
                "session.clear() (which resets every shard's transformer)"
            )
        assert self._view is not None
        return self._view

    @property
    def transformer(self) -> Optional[KinectTransformer]:
        """The view's stateful Kinect transformer, when one is installed.

        ``None`` on a sharded session (each shard owns its own transformer).
        """
        if self._runtime is not None:
            return None
        function = self.view.function
        return function if isinstance(function, KinectTransformer) else None

    @property
    def workflow(self) -> LearningWorkflow:
        """The interactive learning workflow, created on first use.

        Shares the session's engine, database and detector, so gestures
        finalised by the workflow dispatch to :meth:`on` handlers and land
        in :attr:`events` like everything else.
        """
        self._ensure_started()
        if self._runtime is not None:
            raise SessionStateError(
                "the interactive learning workflow records through a single "
                "inline engine; use a shards=1 session to learn, then deploy "
                "the result on a sharded session"
            )
        if self._workflow is None:
            self._workflow = LearningWorkflow(
                engine=self._engine,
                database=self._database,
                config=self.config.workflow,
                detector=self._detector,
                deploy_control_gestures=self.config.deploy_control_gestures,
            )
        return self._workflow

    # -- learning ----------------------------------------------------------------------

    def learn(
        self,
        name: str,
        samples: Iterable[Sequence[Mapping[str, float]]],
        joints: Optional[Sequence[str]] = None,
        save: bool = True,
        deploy: bool = False,
    ) -> GestureDescription:
        """Learn one gesture from raw recorded ``samples``.

        Runs the paper's pipeline (transform → distance-based sampling →
        window merging) under the session's learner configuration, stores
        the result (and its generated query text) in the gesture database,
        and optionally deploys it immediately.
        """
        self._ensure_started()
        learner_config = self.config.workflow.learner
        if joints is not None:
            learner_config = replace(learner_config, joints=tuple(joints))
        learner = GestureLearner(name, config=learner_config)
        for sample in samples:
            learner.add_sample(sample)
        description = learner.description()
        query = self.detector.generator.generate(description)
        if save:
            self.database.save_gesture(description, query_text=query.to_query())
        if deploy:
            self.deploy(query, name=description.name)
        return description

    # -- interactive workflow delegation ------------------------------------------------

    def begin_gesture(self, name: str) -> None:
        """Start the interactive collect-samples phase for ``name``."""
        self.workflow.begin_gesture(name)

    def record_sample(self, frames: Sequence[Mapping[str, float]], raw: bool = True):
        """Add one sample to the gesture under interactive learning."""
        return self.workflow.record_sample(frames, raw=raw)

    def finalize(self) -> GestureDescription:
        """Finish interactive learning: generate, validate, store, deploy."""
        return self.workflow.finalize()

    def accept(self) -> None:
        """Accept the gesture under test and return the workflow to idle."""
        self.workflow.accept()

    def discard(self) -> None:
        """Throw away the gesture being learned or tested."""
        self.workflow.discard()

    @property
    def messages(self) -> List[str]:
        """Log messages of the interactive workflow (empty if unused)."""
        if self._workflow is None:
            return []
        return list(self._workflow.messages)

    # -- deployment --------------------------------------------------------------------

    def deploy(
        self,
        gesture: Union[GestureDescription, Query, str, Any],
        name: Optional[str] = None,
        sink: Optional[Sink] = None,
        analyze: Optional[str] = None,
    ) -> DeployedQuery:
        """Deploy a gesture description, query, query text, or builder chain.

        All deployments go through the session's detector, so detections are
        dispatched to :meth:`on` handlers and collected in :attr:`events`.
        ``sink`` additionally attaches a :class:`~repro.cep.sinks.Sink` to
        the deployed query.

        ``analyze`` gates the deployment through the static query analyzer:
        ``"warn"`` surfaces findings as Python warnings, ``"strict"``
        rejects error-severity findings with
        :class:`~repro.errors.QueryAnalysisError`.  ``None`` (default)
        falls back to :attr:`SessionConfig.analyze`.
        """
        self._ensure_started()
        mode = self.config.analyze if analyze is None else analyze
        deployed = self.detector.deploy(gesture, name=name, analyze=mode)
        if self._durability is not None:
            self._durability.log_control(
                "deploy", {"name": deployed.name, "text": deployed.query.to_query()}
            )
        if sink is not None:
            deployed.sink.add(sink)
        return deployed

    def deploy_vocabulary(
        self,
        source: Optional[VocabularySource] = None,
        enabled_only: bool = True,
        analyze: Optional[str] = None,
    ) -> List[str]:
        """Deploy a whole gesture vocabulary; returns the deployed names.

        ``source`` may be

        * ``None`` — the session's own gesture database,
        * a :class:`GestureDatabase`,
        * a manifest mapping gesture name → description, query, query text,
          builder chain, or a list of raw samples (which are learned first
          via :meth:`learn`).

        The manifest key becomes the *registration* name and, for builder
        chains without an explicit output, the detection output as well.  A
        pre-built :class:`Query` (or query text) keeps its own output value
        — events and :meth:`on` handlers are keyed by that output, so give
        such entries a manifest key equal to their output unless you
        deliberately want a registration alias.

        ``analyze`` (default: :attr:`SessionConfig.analyze`) gates the
        *whole vocabulary* as one unit — including the cross-query
        duplicate, subsumption and shared-predicate rules that per-query
        deployment cannot see.  Entries that are raw sample lists are
        learned on the fly and skip the pre-deployment analysis.
        """
        self._ensure_started()
        mode = self.config.analyze if analyze is None else analyze
        if source is None:
            source = self.database
        if isinstance(source, GestureDatabase):
            return self.detector.deploy_from_database(
                source, enabled_only=enabled_only, analyze=mode
            )

        prepared: List[Tuple[str, Any]] = []
        for name, entry in source.items():
            if isinstance(entry, Expr):
                raise QueryBuilderError(
                    f"manifest entry '{name}' is a bare predicate; wrap it in "
                    f"a chain: Q.stream(...).where(<predicate>)"
                )
            if isinstance(entry, QueryBuilder):
                # The manifest key supplies the output value unless the
                # chain set one explicitly.
                entry = entry.build(entry.output_value or name)
            prepared.append((name, entry))

        if mode != "off":
            from repro.analysis import (
                AnalysisContext,
                analyze_vocabulary,
                gate_diagnostics,
                validate_analyze_mode,
            )

            validate_analyze_mode(mode)
            analyzable = {
                name: entry
                for name, entry in prepared
                if isinstance(entry, (GestureDescription, Query, str))
            }
            report = analyze_vocabulary(
                analyzable, context=AnalysisContext.for_engine(self._engine)
            )
            gate_diagnostics(report.diagnostics, mode, subject="vocabulary")

        deployed: List[str] = []
        for name, entry in prepared:
            if isinstance(entry, (GestureDescription, Query, str)):
                # Already analysed (and gated) above as part of the
                # vocabulary; skip per-query re-analysis.
                self.deploy(entry, name=name, analyze="off")
            else:
                self.learn(name, entry, deploy=True)
            deployed.append(name)
        return deployed

    def undeploy(self, name: str) -> None:
        """Remove one deployed gesture."""
        self.detector.undeploy(name)
        if self._durability is not None:
            self._durability.log_control("undeploy", {"name": name})

    def deployed_gestures(self) -> List[str]:
        """Names of the deployed gestures (readable even after close)."""
        if self._detector is None:
            return []
        return self._detector.deployed_gestures()

    def attach_sink(self, sink: Sink, query: Optional[str] = None) -> None:
        """Attach ``sink`` to one deployed query, or to all of them."""
        self._ensure_started()
        if query is not None:
            self._engine.get_query(query).sink.add(sink)
            return
        for deployed in self._engine.queries.values():
            deployed.sink.add(sink)

    # -- data path ---------------------------------------------------------------------

    def feed(
        self,
        frames: Iterable[Mapping[str, float]],
        batch_size: Any = _UNSET,
        stream: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> int:
        """Push sensor frames through the stack; returns the number fed.

        ``batch_size`` selects the engine's batched delivery path (chunks
        amortise fan-out and run-table pruning); it defaults to the
        session configuration's ``batch_size``.  ``stream`` overrides the
        target stream (the raw sensor stream by default).  ``trace``
        continues a caller-originated trace context (the gateway passes
        its request span here); when omitted and sampling is on, the
        session makes its own head decision.
        """
        self._ensure_started()
        if batch_size is _UNSET:
            batch_size = self.config.batch_size
        stream_name = stream or self.config.raw_stream
        if self._runtime is None and self._telemetry is not None:
            count = self._feed_inline_measured(stream_name, frames, batch_size, trace)
        elif self._runtime is not None:
            # The sharded runtime instruments its own ingest path (trace
            # origination, queue-wait and batch histograms per shard).
            count = self._runtime.push_many(
                stream_name, frames, batch_size=batch_size, trace=trace
            )
        else:
            count = self._engine.push_many(stream_name, frames, batch_size=batch_size)
        if self._durability is not None:
            self._durability.maybe_snapshot()
        return count

    def _feed_inline_measured(
        self,
        stream_name: str,
        frames: Iterable[Mapping[str, float]],
        batch_size: Optional[int],
        trace: Optional[TraceContext] = None,
    ) -> int:
        """Inline feed with telemetry: one histogram sample per feed call.

        Feeding is synchronous here, so the feed duration *is* both the
        batch-processing time and the ingest→detection ceiling; there is no
        queue to wait in.  With sampling on, the feed span carries the
        matcher spans the engine nests under the ambient context.
        """
        telemetry = self._telemetry
        if trace is None and telemetry.tracing_active:
            trace = telemetry.tracer.sample("ingest")
        span = telemetry.tracer.span("session.feed", "ingest", trace, stream=stream_name)
        started = perf_clock()
        if span is not None:
            with use_context(span.context):
                count = self._engine.push_many(stream_name, frames, batch_size=batch_size)
        else:
            count = self._engine.push_many(stream_name, frames, batch_size=batch_size)
        busy = perf_clock() - started
        if span is not None:
            span.close(tuples=count)
        if self._metrics is not None:
            shard_metrics = self._metrics.shard(0)
            shard_metrics.record_batch_seconds(busy)
            shard_metrics.add_processed(count, busy)
            shard_metrics.add_enqueued(count)
            self._metrics.histogram("ingest_to_detection").record(busy)
        telemetry.maybe_log_slow_batch(busy, stream_name, count, context=trace)
        return count

    def feed_frame(self, frame: Mapping[str, float], stream: Optional[str] = None) -> None:
        """Push a single sensor frame (interactive / live sources)."""
        self._ensure_started()
        self._engine.push(stream or self.config.raw_stream, frame)
        if self._durability is not None:
            self._durability.maybe_snapshot()

    def push_many(
        self,
        stream_name: str,
        records: Iterable[Mapping[str, Any]],
        batch_size: Optional[int] = None,
    ) -> int:
        """Engine-protocol ingest: explicit stream, explicit batch size.

        Unlike :meth:`feed`, the session's default ``batch_size`` is *not*
        applied — recovery and replay use this to reproduce recorded
        deliveries exactly.
        """
        return self.feed(records, batch_size=batch_size, stream=stream_name)

    # -- events and handlers --------------------------------------------------------------

    def on(self, gesture: str, handler: GestureHandler) -> None:
        """Call ``handler`` for every detection of ``gesture``.

        Handlers are exception-isolated: a raising handler is recorded in
        :attr:`handler_errors` without breaking delivery to other handlers
        or to the engine's sinks.
        """
        self.detector.on_gesture(gesture, self._guard(gesture, handler))

    def on_any(self, handler: GestureHandler) -> None:
        """Call ``handler`` for every detection of any gesture."""
        self.detector.on_any_gesture(self._guard("*", handler))

    # Alias so the session satisfies the detector protocol that
    # :class:`repro.apps.binding.GestureBindings` expects.
    on_gesture = on
    on_any_gesture = on_any

    def on_error(self, callback: Callable[[HandlerFailure], None]) -> None:
        """Observe handler failures (each also lands in ``handler_errors``)."""
        self._error_handlers.append(callback)

    def _guard(self, gesture: str, handler: GestureHandler) -> GestureHandler:
        def wrapped(event: GestureEvent) -> None:
            try:
                handler(event)
            except Exception as error:  # noqa: BLE001 — isolation is the point
                failure = HandlerFailure(gesture=gesture, event=event, error=error)
                self.handler_errors.append(failure)
                for observer in self._error_handlers:
                    observer(failure)

        return wrapped

    @property
    def events(self) -> List[GestureEvent]:
        """All gesture events observed so far, in detection order.

        Collected results stay readable after :meth:`close` — only feeding
        and deploying are lifecycle-guarded.  On a sharded session the read
        waits for queued frames to finish processing first, so events are
        consistent with everything already fed.
        """
        if self._detector is None:
            return []
        if self._runtime is not None:
            self._runtime._drain_for_read()
        return list(self._detector.events)

    def detections(
        self, name: Optional[str] = None, partition: Any = _UNSET
    ) -> List[Detection]:
        """Raw engine detections of one query or all queries.

        ``partition`` restricts the result to one player (compare
        :attr:`~repro.cep.matcher.Detection.partition`).  Like
        :attr:`events`, collected detections stay readable after close.
        """
        if self._engine is None:
            self._ensure_started()
        if partition is _UNSET:
            return self._engine.detections(name)
        return self._engine.detections(name, partition=partition)

    def feedback(self) -> DetectionFeedback:
        """Partial-match progress of every deployed gesture (Fig. 5 style)."""
        return self.detector.feedback()

    def progress(self) -> Dict[str, float]:
        """Gesture name → fraction of its pattern already matched."""
        return self.feedback().progress

    def drain(self) -> None:
        """Block until every fed frame has been fully processed.

        A no-op on an inline session (feeding is synchronous there); on a
        sharded session this is the explicit barrier — reads like
        :attr:`events` and :meth:`detections` take it implicitly.  Raises
        :class:`~repro.errors.ShardFailedError` if a worker shard died.
        """
        self._ensure_started()
        if self._runtime is not None:
            self._runtime.drain()

    # -- telemetry ---------------------------------------------------------------------

    def query_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-query matcher counters (runs started / advanced / pruned /
        completed / evicted, predicate evaluations, gate rejections, …).

        On a sharded session the counters are summed across shards; they
        stay readable after :meth:`close` (last collected values).
        """
        if self._runtime is not None:
            return self._runtime.query_stats()
        if self._engine is None:
            return {}
        return self._engine.query_stats()

    def export_trace(self, path: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
        """The sampled spans as a Chrome trace-event document.

        Loadable in Perfetto / ``chrome://tracing``, or summarised with
        ``python -m repro.observability summarize <file>``.  ``path``
        additionally writes the JSON document there.  Empty (but valid)
        unless ``SessionConfig.trace_sample_rate`` > 0.
        """
        if self._telemetry is None:
            document: Dict[str, Any] = {"traceEvents": [], "displayTimeUnit": "ms"}
        elif self._runtime is not None:
            document = self._runtime.export_trace()
        else:
            document = self._telemetry.tracer.export()
        if path is not None:
            Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")
        return document

    @property
    def sampler(self) -> Optional[MetricsSampler]:
        """The background metrics sampler, or ``None`` when not configured."""
        return self._sampler

    @property
    def slo_evaluator(self) -> Optional[SLOEvaluator]:
        """The burn-rate evaluator, or ``None`` without configured SLOs."""
        return self._slo_evaluator

    @property
    def alerts(self) -> List[Alert]:
        """Fired burn-rate alerts, oldest first (empty without SLOs).

        Stays readable after :meth:`close` — the bounded alert log is the
        post-mortem record of what breached during the run.
        """
        if self._slo_evaluator is None:
            return []
        return self._slo_evaluator.alerts()

    @property
    def watchdog(self) -> Optional[HealthWatchdog]:
        """The health watchdog, or ``None`` when not configured."""
        return self._watchdog

    def health(self) -> Optional[HealthReport]:
        """The watchdog's latest report (``None`` without a watchdog).

        Runs one synchronous check when the background thread has not
        published yet, so the first read after :meth:`start` is real.
        """
        if self._watchdog is None:
            return None
        report = self._watchdog.report()
        if report.checks == 0:
            report = self._watchdog.check()
        return report

    def profile(self) -> Dict[str, Any]:
        """The continuous profiler's per-query CPU attribution.

        Joins the sampling profiler's tagged stack samples with
        :meth:`query_stats`, so each deployed query reports its share of
        sampled matcher CPU next to its matcher counters.  With
        ``profile_hz=0`` (the default) returns ``{"enabled": False}``.
        On a sharded session, child-shard samples are collected first so
        the attribution spans every pid.
        """
        profiler = self._telemetry.profiler if self._telemetry is not None else None
        if profiler is None:
            return {"enabled": False, "samples": 0, "queries": {}}
        if self._runtime is not None:
            self._runtime.collect_telemetry()
        snapshot = profiler.snapshot()
        stats = self.query_stats()
        share: Mapping[str, float] = snapshot["query_share"]  # type: ignore[assignment]
        samples: Mapping[str, int] = snapshot["query_samples"]  # type: ignore[assignment]
        queries: Dict[str, Dict[str, Any]] = {}
        for name in sorted(set(share) | set(stats)):
            queries[name] = {
                "cpu_share": round(float(share.get(name, 0.0)), 4),
                "samples": int(samples.get(name, 0)),
                "stats": dict(stats.get(name, {})),
            }
        return {
            "enabled": True,
            "hz": profiler.hz,
            "samples": snapshot["samples"],
            "untagged_samples": int(samples.get(UNTAGGED, 0)),
            "queries": queries,
            "top_stacks": snapshot["top_stacks"],
        }

    def collapsed_profile(self) -> List[str]:
        """Folded-stack lines (``stack count``) for flamegraph tooling."""
        profiler = self._telemetry.profiler if self._telemetry is not None else None
        if profiler is None:
            return []
        if self._runtime is not None:
            self._runtime.collect_telemetry()
        return profiler.collapsed()

    def clear(self) -> None:
        """Reset for a fresh scene: events, detections, runs, transform state."""
        self._ensure_started()
        self.detector.clear()
        if self._runtime is not None:
            # Shard-local transformers are not reachable through the
            # detector's view list; reset them through the runtime.
            self._runtime.reset_transformers()
        self.handler_errors.clear()
        if self._durability is not None:
            self._durability.log_control("clear", {})

    # -- durability: snapshot, recover, replay -------------------------------------------

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The durability manager (``None`` when durability is off)."""
        return self._durability

    def snapshot(self) -> int:
        """Persist the whole session state now; returns the log anchor offset.

        The snapshot spans every layer: deployed query texts, matcher run
        tables (partial matches), collected detections, transformer
        smoothing state, stream counters and the simulated clock.  On a
        sharded session the runtime drains its queues first and captures
        each shard's engine keyed by the router topology.
        """
        self._ensure_started()
        manager = self._require_durability()
        return manager.snapshot()

    def _require_durability(self) -> DurabilityManager:
        if self._durability is None:
            raise SessionStateError(
                "durability is off; construct the session with "
                "GestureSession(durability=DurabilityConfig(...))"
            )
        return self._durability

    def _capture_session_state(self) -> Dict[str, Any]:
        """The snapshot payload: the engine (or sharded runtime) state."""
        assert self._engine is not None
        return {"kind": "session", "engine": self._engine.capture_state()}

    def _restore_session_state(self, state: Mapping[str, Any]) -> None:
        """Load a snapshot into this (freshly started) session.

        Captured queries are deployed through the detector *first*, so
        their detections dispatch into :attr:`events` and :meth:`on`
        handlers; ``restore_state`` then overwrites each matcher's runs,
        detections and counters in place.
        """
        self._ensure_started()
        engine_state = state["engine"] if state.get("kind") == "session" else state
        deployed = set(self.deployed_gestures())
        for entry in engine_state.get("queries", []):
            if entry["name"] not in deployed:
                self.deploy(entry["text"], name=entry["name"])
        assert self._engine is not None
        self._engine.restore_state(engine_state)

    def _rebuild_events(self) -> None:
        """Recompute :attr:`events` from the restored detection history.

        Snapshot-restored detections never went through live dispatch, and
        replayed-tail detections were appended to whatever the list held —
        rebuilding from the merged engine history yields the same sequence
        the uninterrupted run dispatched.
        """
        assert self._detector is not None and self._engine is not None
        history = self._engine.detections()
        self._detector.events[:] = [
            GestureEvent.from_detection(detection) for detection in history
        ]

    def _apply_log_entry(self, entry: LogEntry) -> None:
        """Replay one recorded log entry (recovery path; logging suspended)."""
        if entry.op == "tuples":
            self.push_many(entry.stream, entry.records or [], batch_size=entry.batch_size)
        elif entry.op == "control":
            self._apply_logged_control(entry.control, entry.payload)
        else:
            raise RecoveryError(f"unknown logged operation {entry.op!r}")

    def _apply_logged_control(self, control: Optional[str], payload: Any) -> None:
        payload = payload or {}
        if control == "deploy":
            if payload["name"] not in set(self.deployed_gestures()):
                self.deploy(payload["text"], name=payload["name"])
        elif control == "undeploy":
            self.undeploy(payload["name"])
        elif control == "clear":
            self.clear()
        else:
            raise RecoveryError(f"unknown logged control operation {control!r}")

    @classmethod
    def recover(
        cls,
        durability: DurabilityConfig,
        config: Optional[SessionConfig] = None,
        clock: Optional[Clock] = None,
        database: Optional[GestureDatabase] = None,
    ) -> "GestureSession":
        """Rebuild a session from its durability directory after a crash.

        Loads the newest snapshot (if any), replays the event-log tail
        beyond its anchor, and returns a *started* session whose
        detections, events and partial matches per partition are exactly
        those of an uninterrupted run.  ``config`` must match the recorded
        run (a sharded directory refuses a different shard topology).  The
        recovered session keeps appending to the same directory, so
        repeated crash/recover cycles compose; what was replayed is
        reported in :attr:`last_recovery`.
        """
        session = cls(
            config=config, clock=clock, database=database, durability=durability
        )
        session.start()
        manager = session._require_durability()
        result = manager.recover_into(
            restore=session._restore_session_state,
            apply_entry=session._apply_log_entry,
        )
        session._rebuild_events()
        session.last_recovery = result
        return session

    def replay(
        self,
        speed: Optional[float] = None,
        config: Optional[SessionConfig] = None,
    ) -> ReplayController:
        """A :class:`~repro.persistence.ReplayController` over this
        session's recorded log.

        Replay targets are fresh, durability-off sessions built from
        ``config`` (this session's configuration by default) — the live
        session is never touched.  ``speed=None`` replays as fast as
        possible; ``speed=1.0`` paces tuples at the recorded event-time
        rate; :meth:`~repro.persistence.ReplayController.seek` jumps to any
        log offset (backward seeks rebuild from the best snapshot).
        """
        directory = self._durability_config
        if directory is None:
            raise SessionStateError(
                "durability is off; construct the session with "
                "GestureSession(durability=DurabilityConfig(...))"
            )
        if self._durability is not None and not self._durability.closed:
            # Make everything appended so far visible to the reader.
            self._durability.log.flush(sync=False)
        target_config = config or self.config

        def factory() -> "GestureSession":
            target = GestureSession(config=target_config)
            target.start()
            return target

        def restore(target: "GestureSession", state: Dict[str, Any]) -> None:
            target._restore_session_state(state)
            target._rebuild_events()

        def apply_control(target: "GestureSession", control: str, payload: Any) -> None:
            target._apply_logged_control(control, payload)

        return ReplayController(
            directory.directory,
            factory,
            restore=restore,
            apply_control=apply_control,
            speed=speed,
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("started" if self._started else "new")
        deployed = self.deployed_gestures() if self._started else []
        return f"GestureSession(state={state}, deployed={deployed})"
