"""Synthetic Microsoft-Kinect skeleton stream (simulator substrate).

The paper's system consumes the 30 Hz skeleton-joint stream produced by a
Kinect 3D camera through OpenNI / the Kinect SDK.  That hardware is not
available here, so this package simulates it:

* :mod:`repro.kinect.skeleton` — the joint model and rest pose,
* :mod:`repro.kinect.users` — parameterised body profiles (child … tall
  adult) so scale-invariance experiments have "users" of different heights,
* :mod:`repro.kinect.trajectories` — parametric gesture trajectories
  (swipes, circle, wave, push, …) defined in a user-relative coordinate
  frame, plus idle/noise motion,
* :mod:`repro.kinect.noise` — sensor noise and jitter models,
* :mod:`repro.kinect.simulator` — :class:`KinectSimulator`, which renders a
  trajectory performed by a body profile standing somewhere in front of the
  camera into the same flat tuples the Kinect middleware would deliver,
* :mod:`repro.kinect.recordings` — CSV recordings in the format shown in
  Fig. 1 of the paper and labelled data-set generation for the benchmarks.
"""

from repro.kinect.skeleton import (
    JOINTS,
    TRACKED_AXES,
    Joint,
    Skeleton,
    joint_field,
    rest_pose,
)
from repro.kinect.users import BodyProfile, STANDARD_USERS, user_by_name
from repro.kinect.noise import GaussianNoise, NoNoise, NoiseModel, OcclusionNoise
from repro.kinect.trajectories import (
    CircleTrajectory,
    CompositeTrajectory,
    IdleTrajectory,
    PushTrajectory,
    RaiseHandTrajectory,
    SwipeTrajectory,
    Trajectory,
    TwoHandSwipeTrajectory,
    WaveTrajectory,
    WaypointTrajectory,
    standard_gesture_catalog,
)
from repro.kinect.simulator import KinectSimulator, KINECT_FREQUENCY_HZ
from repro.kinect.recordings import (
    MultiUserRecording,
    Recording,
    generate_dataset,
    generate_multiuser_recording,
    load_recording_csv,
    save_recording_csv,
)

__all__ = [
    "JOINTS",
    "TRACKED_AXES",
    "Joint",
    "Skeleton",
    "joint_field",
    "rest_pose",
    "BodyProfile",
    "STANDARD_USERS",
    "user_by_name",
    "NoiseModel",
    "GaussianNoise",
    "NoNoise",
    "OcclusionNoise",
    "Trajectory",
    "SwipeTrajectory",
    "CircleTrajectory",
    "WaveTrajectory",
    "PushTrajectory",
    "RaiseHandTrajectory",
    "TwoHandSwipeTrajectory",
    "IdleTrajectory",
    "WaypointTrajectory",
    "CompositeTrajectory",
    "standard_gesture_catalog",
    "KinectSimulator",
    "KINECT_FREQUENCY_HZ",
    "MultiUserRecording",
    "Recording",
    "generate_dataset",
    "generate_multiuser_recording",
    "load_recording_csv",
    "save_recording_csv",
]
