"""Body profiles for simulated users.

The paper reports that scaling all coordinates by the right-forearm length
makes gesture definitions work "when testing the same gestures with children
and adults" (Sec. 3.2).  To reproduce that experiment we need simulated users
of different body sizes; a :class:`BodyProfile` captures the linear scale
factor and a few behavioural parameters (how precisely the user repeats a
movement, how fast they perform it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Height of the reference adult the rest pose was authored for (mm).
REFERENCE_HEIGHT_MM = 1750.0


@dataclass(frozen=True)
class BodyProfile:
    """A simulated user.

    Parameters
    ----------
    name:
        Human-readable identifier ("adult", "child", …).
    height_mm:
        Standing height in millimetres; all skeleton offsets scale linearly
        with ``height_mm / 1750``.
    performance_speed:
        Multiplier on gesture duration: 1.0 performs a gesture at the
        trajectory's nominal speed, values below 1.0 are faster.
    repeat_variability_mm:
        Standard deviation (mm, at reference scale) of the random waypoint
        displacement applied each time the user repeats a gesture.  Models
        the sample-to-sample variation the window-merging step must absorb.
    handedness:
        Preferred hand, ``"right"`` or ``"left"``.
    """

    name: str
    height_mm: float = REFERENCE_HEIGHT_MM
    performance_speed: float = 1.0
    repeat_variability_mm: float = 25.0
    handedness: str = "right"

    def __post_init__(self) -> None:
        if self.height_mm <= 0:
            raise ValueError("height must be positive")
        if self.performance_speed <= 0:
            raise ValueError("performance speed must be positive")
        if self.repeat_variability_mm < 0:
            raise ValueError("repeat variability must be non-negative")
        if self.handedness not in ("right", "left"):
            raise ValueError("handedness must be 'right' or 'left'")

    @property
    def scale(self) -> float:
        """Linear body-size factor relative to the reference adult."""
        return self.height_mm / REFERENCE_HEIGHT_MM

    def scaled(self, millimetres: float) -> float:
        """Scale a reference-user length to this user's body size."""
        return millimetres * self.scale

    def describe(self) -> Dict[str, float]:
        """Return the profile as a plain dictionary (for storage/reporting)."""
        return {
            "height_mm": self.height_mm,
            "scale": self.scale,
            "performance_speed": self.performance_speed,
            "repeat_variability_mm": self.repeat_variability_mm,
        }


#: Catalogue of users used throughout tests and benchmarks.  The spread of
#: heights (child of 1.20 m up to a 2.00 m adult) covers the child/adult
#: comparison mentioned in the paper.
STANDARD_USERS: Tuple[BodyProfile, ...] = (
    BodyProfile(name="child", height_mm=1200.0, performance_speed=0.9,
                repeat_variability_mm=35.0),
    BodyProfile(name="teen", height_mm=1550.0, performance_speed=0.95,
                repeat_variability_mm=30.0),
    BodyProfile(name="adult", height_mm=1750.0, performance_speed=1.0,
                repeat_variability_mm=25.0),
    BodyProfile(name="tall_adult", height_mm=2000.0, performance_speed=1.05,
                repeat_variability_mm=25.0),
    BodyProfile(name="careful_adult", height_mm=1750.0, performance_speed=1.3,
                repeat_variability_mm=10.0),
    BodyProfile(name="hasty_adult", height_mm=1800.0, performance_speed=0.7,
                repeat_variability_mm=45.0),
)

_USERS_BY_NAME: Dict[str, BodyProfile] = {user.name: user for user in STANDARD_USERS}


def user_by_name(name: str) -> BodyProfile:
    """Look up a standard user by name.

    Raises
    ------
    KeyError
        If no standard user with that name exists.
    """
    try:
        return _USERS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown user '{name}'; available: {sorted(_USERS_BY_NAME)}"
        ) from None
