"""Skeleton joint model used by the Kinect simulator.

The Kinect middleware (OpenNI / Kinect SDK) tracks a fixed set of skeleton
joints and reports their positions in a camera-centred coordinate system in
millimetres:

* ``X`` — horizontal, positive to the right from the camera's point of view,
* ``Y`` — vertical, positive up,
* ``Z`` — depth, positive away from the camera.

This module defines the tracked joints, the flat tuple field naming used on
the sensor stream (``<joint>_<axis>``, e.g. ``rhand_x``), and a rest pose in
a *user-relative* frame (origin at the torso, same axis orientation as the
camera frame when the user directly faces the camera).  The rest pose is
scaled by a :class:`~repro.kinect.users.BodyProfile` to obtain skeletons of
different heights.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

#: Joints tracked by the simulator (OpenNI upper+lower body joint set).
JOINTS: Tuple[str, ...] = (
    "head",
    "neck",
    "torso",
    "lshoulder",
    "rshoulder",
    "lelbow",
    "relbow",
    "lhand",
    "rhand",
    "lhip",
    "rhip",
    "lknee",
    "rknee",
    "lfoot",
    "rfoot",
)

#: Coordinate axes reported per joint.
TRACKED_AXES: Tuple[str, ...] = ("x", "y", "z")

#: Rest-pose joint offsets relative to the torso for a reference user of
#: height 1.75 m, in millimetres, user-relative frame (x lateral, y up,
#: z depth; negative z is in front of the body, toward the camera).
_REFERENCE_HEIGHT_MM = 1750.0
_REST_POSE_OFFSETS: Dict[str, Tuple[float, float, float]] = {
    "torso": (0.0, 0.0, 0.0),
    "neck": (0.0, 420.0, 0.0),
    "head": (0.0, 580.0, 0.0),
    "lshoulder": (-190.0, 380.0, 0.0),
    "rshoulder": (190.0, 380.0, 0.0),
    "lelbow": (-260.0, 120.0, -40.0),
    "relbow": (260.0, 120.0, -40.0),
    "lhand": (-280.0, -120.0, -70.0),
    "rhand": (280.0, -120.0, -70.0),
    "lhip": (-110.0, -330.0, 0.0),
    "rhip": (110.0, -330.0, 0.0),
    "lknee": (-120.0, -780.0, 0.0),
    "rknee": (120.0, -780.0, 0.0),
    "lfoot": (-130.0, -1210.0, -60.0),
    "rfoot": (130.0, -1210.0, -60.0),
}


@lru_cache(maxsize=None)
def joint_field(joint: str, axis: str) -> str:
    """Return the flat tuple field name for ``joint`` and ``axis``.

    Cached: the joint/axis vocabulary is tiny and fixed, and the transform
    pipeline asks for the same names on every frame of the sensor stream.

    >>> joint_field("rhand", "x")
    'rhand_x'
    """
    if joint not in JOINTS:
        raise ValueError(f"unknown joint '{joint}'; expected one of {JOINTS}")
    if axis not in TRACKED_AXES:
        raise ValueError(f"unknown axis '{axis}'; expected one of {TRACKED_AXES}")
    return f"{joint}_{axis}"


def all_joint_fields() -> List[str]:
    """Return all ``<joint>_<axis>`` field names in a deterministic order."""
    return [joint_field(j, a) for j in JOINTS for a in TRACKED_AXES]


@dataclass(frozen=True)
class Joint:
    """A named joint position in millimetres."""

    name: str
    x: float
    y: float
    z: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=float)

    def distance_to(self, other: "Joint") -> float:
        """Euclidean distance to another joint in millimetres."""
        return float(np.linalg.norm(self.as_array() - other.as_array()))


def rest_pose(scale: float = 1.0) -> Dict[str, np.ndarray]:
    """Return the rest-pose joint offsets (torso-relative, mm).

    Parameters
    ----------
    scale:
        Linear body-size factor relative to the 1.75 m reference user.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return {
        joint: np.array(offset, dtype=float) * scale
        for joint, offset in _REST_POSE_OFFSETS.items()
    }


class Skeleton:
    """A posable skeleton placed somewhere in front of the camera.

    The skeleton maintains joint positions in the *user-relative* frame
    (torso at the origin) and converts them to camera coordinates given the
    user's standing position and facing direction (yaw about the vertical
    axis; 0 means directly facing the camera).

    Parameters
    ----------
    scale:
        Linear body-size factor (1.0 = 1.75 m reference adult).
    position:
        Torso position in camera coordinates, millimetres.
    yaw_deg:
        Facing direction in degrees; positive rotates the user to their left.
    """

    def __init__(
        self,
        scale: float = 1.0,
        position: Tuple[float, float, float] = (0.0, 0.0, 2000.0),
        yaw_deg: float = 0.0,
    ) -> None:
        self.scale = float(scale)
        self.position = np.array(position, dtype=float)
        self.yaw_deg = float(yaw_deg)
        self._rest = rest_pose(self.scale)
        self._offsets: Dict[str, np.ndarray] = {
            joint: vec.copy() for joint, vec in self._rest.items()
        }

    # -- posing ---------------------------------------------------------------

    def reset(self) -> None:
        """Return every joint to the rest pose."""
        self._offsets = {joint: vec.copy() for joint, vec in self._rest.items()}

    def set_joint_offset(self, joint: str, offset: Iterable[float]) -> None:
        """Set a joint's torso-relative position (mm, user frame)."""
        if joint not in JOINTS:
            raise ValueError(f"unknown joint '{joint}'")
        self._offsets[joint] = np.array(list(offset), dtype=float)

    def displace_joint(self, joint: str, delta: Iterable[float]) -> None:
        """Displace a joint from its *rest pose* by ``delta`` (mm)."""
        if joint not in JOINTS:
            raise ValueError(f"unknown joint '{joint}'")
        self._offsets[joint] = self._rest[joint] + np.array(list(delta), dtype=float)

    def joint_offset(self, joint: str) -> np.ndarray:
        """Current torso-relative position of ``joint`` (mm, user frame)."""
        return self._offsets[joint].copy()

    def rest_offset(self, joint: str) -> np.ndarray:
        """Rest-pose torso-relative position of ``joint`` (mm, user frame)."""
        return self._rest[joint].copy()

    # -- placement ------------------------------------------------------------

    def move_to(self, position: Iterable[float]) -> None:
        """Move the torso to a new camera-frame position (mm)."""
        self.position = np.array(list(position), dtype=float)

    def turn_to(self, yaw_deg: float) -> None:
        """Face a new direction (degrees about the vertical axis)."""
        self.yaw_deg = float(yaw_deg)

    def _yaw_matrix(self) -> np.ndarray:
        angle = np.deg2rad(self.yaw_deg)
        cos, sin = np.cos(angle), np.sin(angle)
        # Rotation about the Y (vertical) axis.
        return np.array(
            [
                [cos, 0.0, sin],
                [0.0, 1.0, 0.0],
                [-sin, 0.0, cos],
            ]
        )

    # -- measurement -----------------------------------------------------------

    def joint_positions(self) -> Dict[str, np.ndarray]:
        """Return all joint positions in camera coordinates (mm)."""
        rotation = self._yaw_matrix()
        return {
            joint: self.position + rotation @ offset
            for joint, offset in self._offsets.items()
        }

    def measure(self) -> Dict[str, float]:
        """Return the flat ``<joint>_<axis>`` measurement dictionary (mm)."""
        positions = self.joint_positions()
        record: Dict[str, float] = {}
        for joint, vector in positions.items():
            for axis_index, axis in enumerate(TRACKED_AXES):
                record[joint_field(joint, axis)] = float(vector[axis_index])
        return record

    def forearm_length(self, side: str = "right") -> float:
        """Euclidean distance between elbow and hand (the paper's scale factor)."""
        if side not in ("right", "left"):
            raise ValueError("side must be 'right' or 'left'")
        prefix = "r" if side == "right" else "l"
        elbow = self._offsets[f"{prefix}elbow"]
        hand = self._offsets[f"{prefix}hand"]
        return float(np.linalg.norm(elbow - hand))

    def __repr__(self) -> str:
        return (
            f"Skeleton(scale={self.scale:.2f}, position={tuple(self.position)}, "
            f"yaw={self.yaw_deg:.1f})"
        )


def measurement_to_joint(record: Mapping[str, float], joint: str) -> Joint:
    """Extract one :class:`Joint` from a flat measurement dictionary."""
    return Joint(
        name=joint,
        x=float(record[joint_field(joint, "x")]),
        y=float(record[joint_field(joint, "y")]),
        z=float(record[joint_field(joint, "z")]),
    )
