"""Parametric gesture trajectories.

A :class:`Trajectory` describes *what the user intends to do with their
body*: for each moving joint it gives a torso-relative target position (in
millimetres, at the reference body scale) as a function of the normalised
gesture phase ``t ∈ [0, 1]``.  The :class:`~repro.kinect.simulator.KinectSimulator`
renders a trajectory into camera-space measurements for a concrete user.

The catalogue mirrors the gestures used in the paper and its companion
demos: the ``swipe_right`` gesture of Fig. 1 (with its three characteristic
poses at x = 0, 400 and 800 mm), the circle gesture sketched in Fig. 2, the
wave used as the control gesture that starts recording, and the two-hand
swipe that finalises the learning phase (Sec. 3.1).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

Vector = np.ndarray


def _as_vec(point: Iterable[float]) -> Vector:
    vec = np.array(list(point), dtype=float)
    if vec.shape != (3,):
        raise ValueError(f"expected a 3D point, got {vec!r}")
    return vec


class Trajectory(ABC):
    """Base class for gesture trajectories.

    Parameters
    ----------
    name:
        Gesture name; used as the default label when learning.
    duration_s:
        Nominal duration of one performance in seconds.
    """

    def __init__(self, name: str, duration_s: float) -> None:
        if duration_s <= 0:
            raise ValueError("trajectory duration must be positive")
        self.name = name
        self.duration_s = float(duration_s)

    @property
    @abstractmethod
    def joints(self) -> Tuple[str, ...]:
        """Joints displaced by this trajectory."""

    @abstractmethod
    def positions(self, phase: float) -> Dict[str, Vector]:
        """Torso-relative positions (mm, reference scale) at ``phase`` ∈ [0, 1]."""

    def start_positions(self) -> Dict[str, Vector]:
        """Joint positions at the start pose (phase 0)."""
        return self.positions(0.0)

    def end_positions(self) -> Dict[str, Vector]:
        """Joint positions at the end pose (phase 1)."""
        return self.positions(1.0)

    def path_length(self, joint: str, samples: int = 100) -> float:
        """Approximate arc length of ``joint``'s path in millimetres."""
        if joint not in self.joints:
            return 0.0
        phases = np.linspace(0.0, 1.0, samples)
        points = np.array([self.positions(float(p))[joint] for p in phases])
        return float(np.sum(np.linalg.norm(np.diff(points, axis=0), axis=1)))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"duration={self.duration_s:.2f}s, joints={self.joints})"
        )


def _clamp_phase(phase: float) -> float:
    return min(1.0, max(0.0, float(phase)))


class WaypointTrajectory(Trajectory):
    """Piecewise-linear interpolation through per-joint waypoints.

    Parameters
    ----------
    waypoints:
        Mapping of joint name to an ordered sequence of torso-relative
        waypoints (each a 3-tuple in millimetres).  All joints must have the
        same number of waypoints.
    smooth:
        If true, the phase is eased with a cosine ramp so the simulated hand
        accelerates and decelerates like a human arm instead of moving at
        constant speed.
    """

    def __init__(
        self,
        name: str,
        duration_s: float,
        waypoints: Mapping[str, Sequence[Iterable[float]]],
        smooth: bool = True,
    ) -> None:
        super().__init__(name, duration_s)
        if not waypoints:
            raise ValueError("at least one joint with waypoints is required")
        self._waypoints: Dict[str, List[Vector]] = {
            joint: [_as_vec(p) for p in points] for joint, points in waypoints.items()
        }
        lengths = {len(points) for points in self._waypoints.values()}
        if len(lengths) != 1:
            raise ValueError("all joints must have the same number of waypoints")
        self._n_waypoints = lengths.pop()
        if self._n_waypoints < 2:
            raise ValueError("a trajectory needs at least two waypoints per joint")
        self.smooth = smooth

    @property
    def joints(self) -> Tuple[str, ...]:
        return tuple(self._waypoints)

    def waypoints(self, joint: str) -> List[Vector]:
        """Return a copy of the waypoints for ``joint``."""
        return [p.copy() for p in self._waypoints[joint]]

    def _eased(self, phase: float) -> float:
        phase = _clamp_phase(phase)
        if not self.smooth:
            return phase
        return 0.5 - 0.5 * math.cos(math.pi * phase)

    def positions(self, phase: float) -> Dict[str, Vector]:
        eased = self._eased(phase)
        segment_count = self._n_waypoints - 1
        scaled = eased * segment_count
        index = min(int(scaled), segment_count - 1)
        local = scaled - index
        result: Dict[str, Vector] = {}
        for joint, points in self._waypoints.items():
            start, end = points[index], points[index + 1]
            result[joint] = start + (end - start) * local
        return result

    def perturbed(
        self,
        rng: np.random.Generator,
        sigma_mm: float,
        name_suffix: str = "",
    ) -> "WaypointTrajectory":
        """Return a copy with every waypoint jittered by Gaussian noise.

        This models sample-to-sample variation: a human repeating the "same"
        gesture never hits exactly the same points, which is precisely what
        the window-merging step (paper Sec. 3.3.2) has to absorb.
        """
        jittered = {
            joint: [p + rng.normal(0.0, sigma_mm, size=3) for p in points]
            for joint, points in self._waypoints.items()
        }
        return WaypointTrajectory(
            name=self.name + name_suffix,
            duration_s=self.duration_s,
            waypoints=jittered,
            smooth=self.smooth,
        )


class SwipeTrajectory(WaypointTrajectory):
    """A horizontal hand swipe, matching Fig. 1 of the paper.

    The right-hand variant passes through the three poses used in the
    paper's generated query: (0, 150, -120) → (400, 150, -420) →
    (800, 150, -120), i.e. the hand sweeps laterally at chest height and
    bows out toward the camera in the middle of the movement.
    """

    def __init__(
        self,
        direction: str = "right",
        hand: str = "rhand",
        extent_mm: float = 800.0,
        height_mm: float = 150.0,
        depth_mm: float = -120.0,
        bow_mm: float = -300.0,
        duration_s: float = 1.2,
        name: Optional[str] = None,
    ) -> None:
        if direction not in ("right", "left"):
            raise ValueError("direction must be 'right' or 'left'")
        sign = 1.0 if direction == "right" else -1.0
        waypoints = {
            hand: [
                (0.0, height_mm, depth_mm),
                (sign * extent_mm / 2.0, height_mm, depth_mm + bow_mm),
                (sign * extent_mm, height_mm, depth_mm),
            ]
        }
        super().__init__(
            name=name or f"swipe_{direction}",
            duration_s=duration_s,
            waypoints=waypoints,
        )
        self.direction = direction
        self.hand = hand


class PushTrajectory(WaypointTrajectory):
    """A forward push: the hand moves from the chest straight toward the camera."""

    def __init__(
        self,
        hand: str = "rhand",
        reach_mm: float = 450.0,
        height_mm: float = 200.0,
        duration_s: float = 0.8,
        name: str = "push",
    ) -> None:
        waypoints = {
            hand: [
                (100.0, height_mm, -150.0),
                (100.0, height_mm, -150.0 - reach_mm),
            ]
        }
        super().__init__(name=name, duration_s=duration_s, waypoints=waypoints)
        self.hand = hand


class RaiseHandTrajectory(WaypointTrajectory):
    """Raising one hand from the hip to above the head."""

    def __init__(
        self,
        hand: str = "rhand",
        duration_s: float = 1.0,
        name: str = "raise_hand",
    ) -> None:
        waypoints = {
            hand: [
                (280.0, -120.0, -70.0),
                (300.0, 300.0, -150.0),
                (200.0, 700.0, -100.0),
            ]
        }
        super().__init__(name=name, duration_s=duration_s, waypoints=waypoints)
        self.hand = hand


class TwoHandSwipeTrajectory(WaypointTrajectory):
    """Both hands swipe outward simultaneously.

    Used in the paper as the control gesture that finalises the learning
    process and starts the testing phase (Sec. 3.1).
    """

    def __init__(
        self,
        extent_mm: float = 500.0,
        height_mm: float = 200.0,
        depth_mm: float = -200.0,
        duration_s: float = 1.0,
        name: str = "two_hand_swipe",
    ) -> None:
        waypoints = {
            "rhand": [
                (100.0, height_mm, depth_mm),
                (100.0 + extent_mm, height_mm, depth_mm),
            ],
            "lhand": [
                (-100.0, height_mm, depth_mm),
                (-100.0 - extent_mm, height_mm, depth_mm),
            ],
        }
        super().__init__(name=name, duration_s=duration_s, waypoints=waypoints)


class CircleTrajectory(Trajectory):
    """The hand draws a circle in the frontal (X-Y) plane.

    Matches the "Circle" gesture sketched in Fig. 2 of the paper: a large
    circular sweep at roughly constant depth in front of the body.
    """

    def __init__(
        self,
        hand: str = "rhand",
        center: Tuple[float, float, float] = (300.0, 225.0, -100.0),
        radius_mm: float = 450.0,
        duration_s: float = 2.0,
        clockwise: bool = True,
        name: str = "circle",
    ) -> None:
        super().__init__(name, duration_s)
        self.hand = hand
        self.center = _as_vec(center)
        if radius_mm <= 0:
            raise ValueError("radius must be positive")
        self.radius_mm = float(radius_mm)
        self.clockwise = clockwise

    @property
    def joints(self) -> Tuple[str, ...]:
        return (self.hand,)

    def positions(self, phase: float) -> Dict[str, Vector]:
        phase = _clamp_phase(phase)
        # Start at the top of the circle and sweep a full revolution.
        direction = -1.0 if self.clockwise else 1.0
        angle = math.pi / 2.0 + direction * 2.0 * math.pi * phase
        offset = np.array(
            [
                self.radius_mm * math.cos(angle),
                self.radius_mm * math.sin(angle),
                0.0,
            ]
        )
        return {self.hand: self.center + offset}


class WaveTrajectory(Trajectory):
    """Waving: the raised hand oscillates laterally above the shoulder.

    Used in the paper as the control gesture that starts recording a new
    sample (Sec. 3.1).
    """

    def __init__(
        self,
        hand: str = "rhand",
        cycles: int = 3,
        amplitude_mm: float = 180.0,
        height_mm: float = 450.0,
        depth_mm: float = -100.0,
        duration_s: float = 1.5,
        name: str = "wave",
    ) -> None:
        super().__init__(name, duration_s)
        if cycles < 1:
            raise ValueError("a wave needs at least one cycle")
        self.hand = hand
        self.cycles = cycles
        self.amplitude_mm = amplitude_mm
        self.height_mm = height_mm
        self.depth_mm = depth_mm

    @property
    def joints(self) -> Tuple[str, ...]:
        return (self.hand,)

    def positions(self, phase: float) -> Dict[str, Vector]:
        phase = _clamp_phase(phase)
        base_x = 250.0 if self.hand.startswith("r") else -250.0
        lateral = self.amplitude_mm * math.sin(2.0 * math.pi * self.cycles * phase)
        return {
            self.hand: np.array(
                [base_x + lateral, self.height_mm, self.depth_mm]
            )
        }


class IdleTrajectory(Trajectory):
    """No intentional movement: every joint stays at its current rest pose.

    Used to simulate the stationary phases before and after a gesture that
    the recording controller relies on (Sec. 3.1), and as negative data in
    the detection-accuracy benchmarks.
    """

    def __init__(self, duration_s: float = 1.0, name: str = "idle") -> None:
        super().__init__(name, duration_s)

    @property
    def joints(self) -> Tuple[str, ...]:
        return ()

    def positions(self, phase: float) -> Dict[str, Vector]:
        return {}


class CompositeTrajectory(Trajectory):
    """Concatenation of several trajectories performed back to back."""

    def __init__(self, name: str, parts: Sequence[Trajectory]) -> None:
        if not parts:
            raise ValueError("a composite trajectory needs at least one part")
        total = sum(part.duration_s for part in parts)
        super().__init__(name, total)
        self.parts = list(parts)

    @property
    def joints(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for part in self.parts:
            for joint in part.joints:
                if joint not in seen:
                    seen.append(joint)
        return tuple(seen)

    def positions(self, phase: float) -> Dict[str, Vector]:
        phase = _clamp_phase(phase)
        elapsed = phase * self.duration_s
        for part in self.parts:
            if elapsed <= part.duration_s or part is self.parts[-1]:
                local_phase = min(1.0, elapsed / part.duration_s)
                return part.positions(local_phase)
            elapsed -= part.duration_s
        return {}


def standard_gesture_catalog() -> Dict[str, Trajectory]:
    """Return the gesture catalogue used by examples, tests and benchmarks.

    The catalogue contains the paper's running examples (``swipe_right``,
    ``circle``) plus additional gestures that make the selectivity and
    overlap experiments meaningful.
    """
    return {
        "swipe_right": SwipeTrajectory(direction="right"),
        "swipe_left": SwipeTrajectory(direction="left", hand="lhand"),
        "circle": CircleTrajectory(),
        "wave": WaveTrajectory(),
        "push": PushTrajectory(),
        "raise_hand": RaiseHandTrajectory(),
        "two_hand_swipe": TwoHandSwipeTrajectory(),
    }
