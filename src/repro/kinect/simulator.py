"""The Kinect camera simulator.

:class:`KinectSimulator` renders a :class:`~repro.kinect.trajectories.Trajectory`
performed by a concrete :class:`~repro.kinect.users.BodyProfile` into the
flat 30 Hz measurement tuples the Kinect middleware would deliver:

``{"player": 1, "ts": 0.033, "torso_x": 45.2, ..., "rhand_z": 1822.3}``

The simulator takes care of the aspects that make gesture learning hard in
practice and that the paper's pipeline is explicitly designed to absorb:

* users stand at different positions and orientations in front of the camera
  (handled by the torso-relative transformation),
* users have different body sizes (handled by forearm-length scaling),
* repeated performances differ slightly (handled by window merging),
* sensor measurements are noisy (handled by window widths).

A simple inverse-kinematics step keeps the elbow at a constant forearm
distance from the hand so the paper's scale factor — the Euclidean distance
between right hand and right elbow — stays stable while the hand moves.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.kinect.noise import GaussianNoise, NoiseModel
from repro.kinect.skeleton import Skeleton
from repro.kinect.trajectories import Trajectory, WaypointTrajectory
from repro.kinect.users import BodyProfile, user_by_name
from repro.streams.clock import Clock, SimulatedClock
from repro.streams.stream import Stream

#: Nominal frame rate of the Kinect sensor stream (paper Sec. 3.3.1).
KINECT_FREQUENCY_HZ = 30.0

#: Hand → (elbow, shoulder) used by the forearm inverse-kinematics step.
_ARM_CHAIN: Dict[str, Tuple[str, str]] = {
    "rhand": ("relbow", "rshoulder"),
    "lhand": ("lelbow", "lshoulder"),
}


class KinectSimulator:
    """Simulates a Kinect camera observing one user.

    Parameters
    ----------
    user:
        The simulated user's body profile (defaults to the reference adult).
    clock:
        Time source; defaults to a fresh :class:`SimulatedClock` so
        simulations run as fast as Python allows while still producing
        correct 30 Hz timestamps.
    noise:
        Sensor noise model applied to every emitted frame.
    frequency_hz:
        Sensor frame rate.
    position:
        Torso position in camera coordinates (mm).  The Kinect's usable
        range starts around 1.5 m, hence the 2.2 m default.
    yaw_deg:
        User facing direction (0 = facing the camera).
    rng:
        Random generator used for per-sample waypoint variation.
    player_id:
        Player/skeleton id reported in the tuples.
    """

    def __init__(
        self,
        user: Optional[BodyProfile] = None,
        clock: Optional[Clock] = None,
        noise: Optional[NoiseModel] = None,
        frequency_hz: float = KINECT_FREQUENCY_HZ,
        position: Tuple[float, float, float] = (0.0, 0.0, 2200.0),
        yaw_deg: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        player_id: int = 1,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.user = user or user_by_name("adult")
        self.clock = clock or SimulatedClock()
        self.noise = noise if noise is not None else GaussianNoise(sigma_mm=6.0)
        self.frequency_hz = float(frequency_hz)
        self.frame_period = 1.0 / self.frequency_hz
        self.rng = rng or np.random.default_rng()
        self.player_id = player_id
        self.skeleton = Skeleton(
            scale=self.user.scale, position=position, yaw_deg=yaw_deg
        )
        self.frames_emitted = 0

    # -- placement ----------------------------------------------------------------

    def move_user(self, position: Sequence[float]) -> None:
        """Move the simulated user to a new camera-frame position (mm)."""
        self.skeleton.move_to(position)

    def turn_user(self, yaw_deg: float) -> None:
        """Turn the simulated user to face a new direction (degrees)."""
        self.skeleton.turn_to(yaw_deg)

    # -- frame generation ------------------------------------------------------------

    def _apply_pose(self, positions: Mapping[str, np.ndarray]) -> None:
        """Pose the skeleton for one frame.

        Trajectory positions are authored at the reference body scale; they
        are multiplied by the user's scale factor so larger users genuinely
        reach further — which is what the forearm-length normalisation must
        undo downstream.
        """
        self.skeleton.reset()
        for joint, reference_position in positions.items():
            scaled = np.asarray(reference_position, dtype=float) * self.user.scale
            self.skeleton.set_joint_offset(joint, scaled)
            self._solve_arm(joint, scaled)

    def _solve_arm(self, hand: str, hand_position: np.ndarray) -> None:
        """Place the elbow so the forearm length stays anatomically constant."""
        chain = _ARM_CHAIN.get(hand)
        if chain is None:
            return
        elbow, shoulder = chain
        shoulder_position = self.skeleton.rest_offset(shoulder)
        rest_elbow = self.skeleton.rest_offset(elbow)
        rest_hand = self.skeleton.rest_offset(hand)
        forearm_length = float(np.linalg.norm(rest_elbow - rest_hand))
        toward_shoulder = shoulder_position - hand_position
        norm = float(np.linalg.norm(toward_shoulder))
        if norm < 1e-9:
            return
        elbow_position = hand_position + toward_shoulder / norm * forearm_length
        self.skeleton.set_joint_offset(elbow, elbow_position)

    def _emit_frame(self) -> Dict[str, float]:
        record = self.skeleton.measure()
        record = self.noise.apply(record)
        record["player"] = self.player_id
        record["ts"] = self.clock.now()
        self.frames_emitted += 1
        if isinstance(self.clock, SimulatedClock):
            self.clock.advance(self.frame_period)
        else:  # pragma: no cover - live mode
            self.clock.sleep(self.frame_period)
        return record

    def measure_rest(self) -> Dict[str, float]:
        """Emit a single frame of the user standing in the rest pose."""
        self.skeleton.reset()
        return self._emit_frame()

    def frames(
        self,
        trajectory: Trajectory,
        hold_start_s: float = 0.0,
        hold_end_s: float = 0.0,
    ) -> Iterator[Dict[str, float]]:
        """Yield the frames of one performance of ``trajectory``.

        Parameters
        ----------
        trajectory:
            The gesture to perform.
        hold_start_s / hold_end_s:
            Extra time the user holds still at the start/end pose.  The
            recording controller of the paper relies on these stationary
            phases to decide when a gesture begins and ends.
        """
        duration = trajectory.duration_s * self.user.performance_speed
        move_frames = max(2, int(round(duration * self.frequency_hz)))
        start_frames = int(round(hold_start_s * self.frequency_hz))
        end_frames = int(round(hold_end_s * self.frequency_hz))

        for _ in range(start_frames):
            self._apply_pose(trajectory.start_positions())
            yield self._emit_frame()
        for index in range(move_frames):
            phase = index / (move_frames - 1)
            self._apply_pose(trajectory.positions(phase))
            yield self._emit_frame()
        for _ in range(end_frames):
            self._apply_pose(trajectory.end_positions())
            yield self._emit_frame()

    def perform(
        self,
        trajectory: Trajectory,
        hold_start_s: float = 0.0,
        hold_end_s: float = 0.0,
    ) -> List[Dict[str, float]]:
        """Return all frames of one performance as a list."""
        return list(self.frames(trajectory, hold_start_s, hold_end_s))

    def perform_variation(
        self,
        trajectory: Trajectory,
        hold_start_s: float = 0.0,
        hold_end_s: float = 0.0,
    ) -> List[Dict[str, float]]:
        """Perform ``trajectory`` the way a human repeats it: not exactly.

        For waypoint-based trajectories each waypoint is jittered by the
        user's ``repeat_variability_mm`` before rendering; for parametric
        trajectories only the sensor noise differs between repetitions.
        """
        if isinstance(trajectory, WaypointTrajectory):
            varied: Trajectory = trajectory.perturbed(
                rng=self.rng, sigma_mm=self.user.repeat_variability_mm
            )
        else:
            varied = trajectory
        return self.perform(varied, hold_start_s, hold_end_s)

    def idle_frames(self, duration_s: float) -> List[Dict[str, float]]:
        """Frames of the user standing still in the rest pose."""
        count = max(1, int(round(duration_s * self.frequency_hz)))
        self.skeleton.reset()
        return [self._emit_frame() for _ in range(count)]

    # -- streaming ----------------------------------------------------------------------

    def stream_to(
        self,
        stream: Stream,
        trajectory: Trajectory,
        hold_start_s: float = 0.0,
        hold_end_s: float = 0.0,
    ) -> int:
        """Push one performance of ``trajectory`` into ``stream``.

        Returns the number of frames pushed.
        """
        count = 0
        for frame in self.frames(trajectory, hold_start_s, hold_end_s):
            stream.push(frame)
            count += 1
        return count

    def stream_session(
        self,
        stream: Stream,
        script: Sequence[Trajectory],
        pause_s: float = 0.5,
    ) -> int:
        """Push a whole session (several gestures separated by idle pauses)."""
        count = 0
        for index, trajectory in enumerate(script):
            if index:
                for frame in self.idle_frames(pause_s):
                    stream.push(frame)
                    count += 1
            count += self.stream_to(stream, trajectory)
        return count

    def __repr__(self) -> str:
        return (
            f"KinectSimulator(user={self.user.name!r}, "
            f"frequency={self.frequency_hz:.0f}Hz, frames={self.frames_emitted})"
        )
