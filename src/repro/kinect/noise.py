"""Sensor noise models for the Kinect simulator.

Real Kinect skeleton tracking exhibits per-joint jitter of a few millimetres
to a few centimetres (depending on distance and occlusion).  The learning
pipeline must tolerate this noise — it is one of the reasons poses are
expressed as spatial windows rather than exact points — so the simulator
injects it explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Optional

import numpy as np

from repro.kinect.skeleton import JOINTS, TRACKED_AXES, joint_field


class NoiseModel(ABC):
    """Perturbs a flat ``<joint>_<axis>`` measurement dictionary in place."""

    @abstractmethod
    def apply(self, record: Dict[str, float]) -> Dict[str, float]:
        """Return a (possibly new) record with noise applied."""

    def reset(self) -> None:
        """Reset any internal state (e.g. occlusion episodes)."""


class NoNoise(NoiseModel):
    """The identity noise model (useful for exact-geometry tests)."""

    def apply(self, record: Dict[str, float]) -> Dict[str, float]:
        return record


class GaussianNoise(NoiseModel):
    """Independent Gaussian jitter on every joint coordinate.

    Parameters
    ----------
    sigma_mm:
        Standard deviation of the jitter in millimetres.  Kinect-class
        skeleton tracking is typically in the 5–15 mm range at 2 m distance.
    rng:
        Numpy random generator; pass a seeded generator for reproducibility.
    joints:
        Optional subset of joints to perturb; defaults to all joints.
    """

    def __init__(
        self,
        sigma_mm: float = 8.0,
        rng: Optional[np.random.Generator] = None,
        joints: Optional[Iterable[str]] = None,
    ) -> None:
        if sigma_mm < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma_mm = float(sigma_mm)
        self.rng = rng or np.random.default_rng()
        self.joints = tuple(joints) if joints is not None else JOINTS

    def apply(self, record: Dict[str, float]) -> Dict[str, float]:
        if self.sigma_mm == 0:
            return record
        noisy = dict(record)
        for joint in self.joints:
            for axis in TRACKED_AXES:
                key = joint_field(joint, axis)
                if key in noisy:
                    noisy[key] = float(noisy[key] + self.rng.normal(0.0, self.sigma_mm))
        return noisy


class OcclusionNoise(NoiseModel):
    """Occasionally freezes a joint at its last seen position.

    Kinect skeleton tracking loses occluded joints and either repeats the
    last estimate or jumps.  This model reproduces the "repeat last value"
    failure mode: with probability ``dropout_probability`` per frame a joint
    enters an occlusion episode of geometrically distributed length during
    which its reported position stays frozen.

    Parameters
    ----------
    dropout_probability:
        Per-frame probability that a tracked joint becomes occluded.
    mean_duration_frames:
        Mean length of an occlusion episode in frames.
    joints:
        Joints that can be occluded (hands and elbows by default — they are
        the ones that move in front of the body).
    """

    def __init__(
        self,
        dropout_probability: float = 0.01,
        mean_duration_frames: float = 5.0,
        rng: Optional[np.random.Generator] = None,
        joints: Optional[Iterable[str]] = None,
    ) -> None:
        if not 0 <= dropout_probability <= 1:
            raise ValueError("dropout probability must be in [0, 1]")
        if mean_duration_frames < 1:
            raise ValueError("mean occlusion duration must be at least one frame")
        self.dropout_probability = dropout_probability
        self.mean_duration_frames = mean_duration_frames
        self.rng = rng or np.random.default_rng()
        self.joints = tuple(joints) if joints is not None else (
            "lhand", "rhand", "lelbow", "relbow",
        )
        self._frozen: Dict[str, Dict[str, float]] = {}
        self._remaining: Dict[str, int] = {}

    def reset(self) -> None:
        self._frozen.clear()
        self._remaining.clear()

    def apply(self, record: Dict[str, float]) -> Dict[str, float]:
        noisy = dict(record)
        for joint in self.joints:
            tracked = all(joint_field(joint, axis) in record for axis in TRACKED_AXES)
            if not tracked:
                continue
            if joint in self._remaining:
                # Occlusion episode in progress: repeat the frozen values.
                for axis in TRACKED_AXES:
                    key = joint_field(joint, axis)
                    noisy[key] = self._frozen[joint][key]
                self._remaining[joint] -= 1
                if self._remaining[joint] <= 0:
                    del self._remaining[joint]
                    del self._frozen[joint]
            elif self.rng.random() < self.dropout_probability:
                duration = max(1, int(self.rng.geometric(1.0 / self.mean_duration_frames)))
                self._remaining[joint] = duration
                self._frozen[joint] = {
                    joint_field(joint, axis): float(record[joint_field(joint, axis)])
                    for axis in TRACKED_AXES
                }
        return noisy


class CompositeNoise(NoiseModel):
    """Applies several noise models in sequence."""

    def __init__(self, models: Iterable[NoiseModel]) -> None:
        self.models = list(models)

    def apply(self, record: Dict[str, float]) -> Dict[str, float]:
        for model in self.models:
            record = model.apply(record)
        return record

    def reset(self) -> None:
        for model in self.models:
            model.reset()
