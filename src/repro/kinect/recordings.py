"""Recordings: persisted sensor traces and labelled data-set generation.

Fig. 1 of the paper shows a raw sensor trace as a CSV-like listing of joint
coordinates.  This module provides the same representation: a
:class:`Recording` bundles the frames of one gesture performance with its
label and the user who performed it, and can be saved to / loaded from CSV.

:func:`generate_dataset` produces the labelled corpora used by the
evaluation benchmarks: for each gesture in a catalogue it simulates several
performances by several users, optionally interleaved with idle segments and
distractor gestures to measure false-positive rates.

:func:`generate_multiuser_recording` simulates a *shared sensor space*: K
body profiles perform their own gesture scripts concurrently, each stamped
with a distinct ``player`` id, and the per-player frame sequences are merged
into one timestamp-ordered stream.  The per-player ground-truth recordings
are kept alongside the merged stream, which is what lets the multi-user
benchmarks assert that detections on the interleaved stream equal the
isolated single-user runs, player by player.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.kinect.noise import GaussianNoise
from repro.kinect.simulator import KINECT_FREQUENCY_HZ, KinectSimulator
from repro.kinect.trajectories import Trajectory
from repro.kinect.users import STANDARD_USERS, BodyProfile
from repro.streams.clock import SimulatedClock


@dataclass
class Recording:
    """One recorded gesture performance.

    Attributes
    ----------
    gesture:
        Gesture label ("swipe_right", …) or ``"idle"`` for negative data.
    user:
        Name of the body profile that performed it.
    frames:
        The raw sensor tuples in playback order.
    frequency_hz:
        Frame rate the recording was captured at.
    """

    gesture: str
    user: str
    frames: List[Dict[str, float]] = field(default_factory=list)
    frequency_hz: float = KINECT_FREQUENCY_HZ

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def duration_s(self) -> float:
        """Duration derived from the first and last frame timestamps."""
        if len(self.frames) < 2:
            return 0.0
        return float(self.frames[-1]["ts"] - self.frames[0]["ts"])

    def fields(self) -> List[str]:
        """Field names present in the recording, timestamp first."""
        if not self.frames:
            return []
        keys = list(self.frames[0].keys())
        ordered = [k for k in ("ts", "player") if k in keys]
        ordered += sorted(k for k in keys if k not in ("ts", "player"))
        return ordered


def save_recording_csv(recording: Recording, path: Path) -> None:
    """Write a recording as CSV (one row per frame, Fig. 1 style)."""
    path = Path(path)
    fields = recording.fields()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=";")
        writer.writerow(["# gesture", recording.gesture])
        writer.writerow(["# user", recording.user])
        writer.writerow(["# frequency_hz", recording.frequency_hz])
        writer.writerow(fields)
        for frame in recording.frames:
            writer.writerow([frame.get(name, "") for name in fields])


def load_recording_csv(path: Path) -> Recording:
    """Read a recording written by :func:`save_recording_csv`."""
    path = Path(path)
    gesture = "unknown"
    user = "unknown"
    frequency = KINECT_FREQUENCY_HZ
    frames: List[Dict[str, float]] = []
    header: Optional[List[str]] = None
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=";")
        for row in reader:
            if not row:
                continue
            if row[0].startswith("#"):
                key = row[0].lstrip("# ").strip()
                if key == "gesture":
                    gesture = row[1]
                elif key == "user":
                    user = row[1]
                elif key == "frequency_hz":
                    frequency = float(row[1])
                continue
            if header is None:
                header = row
                continue
            frame: Dict[str, float] = {}
            for name, value in zip(header, row):
                if value == "":
                    continue
                frame[name] = int(value) if name == "player" else float(value)
            frames.append(frame)
    return Recording(gesture=gesture, user=user, frames=frames, frequency_hz=frequency)


def generate_dataset(
    gestures: Mapping[str, Trajectory],
    users: Optional[Sequence[BodyProfile]] = None,
    samples_per_gesture: int = 5,
    noise_sigma_mm: float = 6.0,
    hold_start_s: float = 0.3,
    hold_end_s: float = 0.3,
    include_idle: bool = True,
    idle_duration_s: float = 2.0,
    seed: int = 7,
) -> List[Recording]:
    """Generate a labelled corpus of gesture recordings.

    Parameters
    ----------
    gestures:
        Gesture name → trajectory mapping (e.g. from
        :func:`repro.kinect.trajectories.standard_gesture_catalog`).
    users:
        Body profiles that perform the gestures; defaults to the standard
        user catalogue (child … tall adult).
    samples_per_gesture:
        Performances per (gesture, user) pair.
    noise_sigma_mm:
        Sensor noise level.
    include_idle:
        Whether to add idle recordings (negative examples) per user.
    seed:
        Seed for both waypoint variability and sensor noise so data sets are
        reproducible across runs.

    Returns
    -------
    list of :class:`Recording`
    """
    if samples_per_gesture < 1:
        raise ValueError("samples_per_gesture must be at least 1")
    users = list(users) if users is not None else list(STANDARD_USERS[:4])
    rng = np.random.default_rng(seed)
    recordings: List[Recording] = []
    for user in users:
        simulator = KinectSimulator(
            user=user,
            clock=SimulatedClock(),
            noise=GaussianNoise(sigma_mm=noise_sigma_mm, rng=np.random.default_rng(rng.integers(2**31))),
            rng=np.random.default_rng(rng.integers(2**31)),
        )
        for name, trajectory in gestures.items():
            for _ in range(samples_per_gesture):
                frames = simulator.perform_variation(
                    trajectory, hold_start_s=hold_start_s, hold_end_s=hold_end_s
                )
                recordings.append(
                    Recording(gesture=name, user=user.name, frames=frames)
                )
        if include_idle:
            frames = simulator.idle_frames(idle_duration_s)
            recordings.append(Recording(gesture="idle", user=user.name, frames=frames))
    return recordings


@dataclass
class MultiUserRecording:
    """A shared-scene sensor trace: K players interleaved in one stream.

    Attributes
    ----------
    frames:
        The merged stream, ordered by timestamp (ties broken by player id).
        Every frame carries the ``player`` field of the user it belongs to.
    players:
        Player id → that player's isolated ground-truth recording.  The
        interleaved stream restricted to one player is exactly that player's
        recording, frame for frame — the equivalence the partitioned
        detection path must preserve.
    frequency_hz:
        Per-player frame rate of the underlying simulators.
    """

    frames: List[Dict[str, float]] = field(default_factory=list)
    players: Dict[int, Recording] = field(default_factory=dict)
    frequency_hz: float = KINECT_FREQUENCY_HZ

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def player_ids(self) -> List[int]:
        return sorted(self.players)

    def frames_for(self, player_id: int) -> List[Dict[str, float]]:
        """The interleaved stream restricted to one player."""
        return [frame for frame in self.frames if frame.get("player") == player_id]


def generate_multiuser_recording(
    gestures: Mapping[str, Trajectory],
    users: Optional[Sequence[BodyProfile]] = None,
    user_count: Optional[int] = None,
    gestures_per_user: int = 2,
    pause_s: float = 0.5,
    hold_start_s: float = 0.3,
    hold_end_s: float = 0.3,
    noise_sigma_mm: float = 6.0,
    seed: int = 7,
) -> MultiUserRecording:
    """Simulate K users gesturing concurrently in one sensor space.

    Each user gets their own simulator (distinct ``player`` id, own noise
    and variation seeds, own 30 Hz clock phase-shifted by a fraction of a
    frame so the merged stream interleaves deterministically) and performs
    ``gestures_per_user`` gestures from the catalogue — rotated per user, so
    different users perform different gestures at the same moment —
    separated by idle pauses.

    Parameters
    ----------
    gestures:
        Gesture name → trajectory catalogue the users draw from.
    users:
        Body profiles to simulate; defaults to the first four standard
        users.  Ignored when ``user_count`` is given.
    user_count:
        Number of users, cycling through the standard catalogue (so 16
        concurrent users are three copies of each profile — but with
        distinct player ids, seeds and clock phases).
    pause_s / hold_start_s / hold_end_s:
        Idle time between gestures and stationary holds around each one.
    noise_sigma_mm:
        Sensor noise level.
    seed:
        Master seed; every user derives an independent stream from it.

    Returns
    -------
    :class:`MultiUserRecording`
        The interleaved stream plus per-player ground truth.
    """
    if not gestures:
        raise ValueError("the gesture catalogue must not be empty")
    if gestures_per_user < 1:
        raise ValueError("gestures_per_user must be at least 1")
    if user_count is not None:
        profiles = [STANDARD_USERS[i % len(STANDARD_USERS)] for i in range(user_count)]
    else:
        profiles = list(users) if users is not None else list(STANDARD_USERS[:4])
    if not profiles:
        raise ValueError("at least one user is required")

    rng = np.random.default_rng(seed)
    names = list(gestures)
    frame_period = 1.0 / KINECT_FREQUENCY_HZ
    result = MultiUserRecording()
    for index, profile in enumerate(profiles):
        player_id = index + 1
        # Phase-shift each player's clock by a fraction of a frame: real
        # cameras do not sample all skeletons at the same instant, and the
        # merge below becomes a deterministic round-robin interleaving.
        clock = SimulatedClock(start=index * frame_period / (len(profiles) + 1))
        simulator = KinectSimulator(
            user=profile,
            clock=clock,
            noise=GaussianNoise(
                sigma_mm=noise_sigma_mm, rng=np.random.default_rng(rng.integers(2**31))
            ),
            rng=np.random.default_rng(rng.integers(2**31)),
            player_id=player_id,
        )
        script = [
            names[(index + position) % len(names)]
            for position in range(gestures_per_user)
        ]
        frames: List[Dict[str, float]] = []
        for position, gesture_name in enumerate(script):
            if position and pause_s > 0:
                frames.extend(simulator.idle_frames(pause_s))
            frames.extend(
                simulator.perform_variation(
                    gestures[gesture_name],
                    hold_start_s=hold_start_s,
                    hold_end_s=hold_end_s,
                )
            )
        result.players[player_id] = Recording(
            gesture="+".join(script), user=profile.name, frames=frames
        )
    merged: List[Dict[str, float]] = [
        frame for recording in result.players.values() for frame in recording.frames
    ]
    # Stable sort: per-player frame order (already monotone in ts) survives,
    # so the merged stream restricted to a player is exactly their recording.
    merged.sort(key=lambda frame: (frame["ts"], frame["player"]))
    result.frames = merged
    return result


def recordings_by_gesture(
    recordings: Iterable[Recording],
) -> Dict[str, List[Recording]]:
    """Group recordings by gesture label."""
    grouped: Dict[str, List[Recording]] = {}
    for recording in recordings:
        grouped.setdefault(recording.gesture, []).append(recording)
    return grouped
