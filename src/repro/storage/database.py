"""SQLite-backed gesture database.

The database plays the role of the *Gesture Database* box in the paper's
Fig. 2: it stores recorded training samples, the mined gesture descriptions
and the generated CEP query text, so gestures can be post-processed,
re-deployed and manually tuned without re-learning.

Three tables are used:

``gestures``
    one row per gesture: the serialised description, the generated query
    text, timestamps and an enabled flag,
``samples``
    the raw training recordings, linked to their gesture,
``deployments``
    a log of query (re-)deployments, used to audit manual tuning.

The store works against a file path or fully in memory (``":memory:"``),
which is what the tests and the interactive workflow use by default.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.description import GestureDescription
from repro.errors import DuplicateGestureError, GestureNotFoundError, StorageError
from repro.kinect.recordings import Recording
from repro.storage.serialization import (
    description_from_json,
    description_to_json,
    recording_from_json,
    recording_to_json,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS gestures (
    name        TEXT PRIMARY KEY,
    description TEXT NOT NULL,
    query_text  TEXT,
    enabled     INTEGER NOT NULL DEFAULT 1,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS samples (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    gesture     TEXT NOT NULL,
    user        TEXT,
    recording   TEXT NOT NULL,
    created_at  REAL NOT NULL,
    FOREIGN KEY (gesture) REFERENCES gestures(name) ON DELETE CASCADE
);
CREATE TABLE IF NOT EXISTS deployments (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    gesture     TEXT NOT NULL,
    query_text  TEXT NOT NULL,
    deployed_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_samples_gesture ON samples(gesture);
CREATE INDEX IF NOT EXISTS idx_deployments_gesture ON deployments(gesture);
"""


@dataclass
class GestureRecord:
    """One stored gesture."""

    name: str
    description: GestureDescription
    query_text: Optional[str]
    enabled: bool
    created_at: float
    updated_at: float


@dataclass
class SampleRecord:
    """One stored training sample."""

    sample_id: int
    gesture: str
    user: str
    recording: Recording
    created_at: float


class GestureDatabase:
    """Persistent store for gestures, their samples and generated queries.

    Parameters
    ----------
    path:
        SQLite database path, or ``":memory:"`` for a transient store.

    Examples
    --------
    >>> db = GestureDatabase(":memory:")
    >>> from repro.core import GestureDescription, PoseWindow, Window
    >>> desc = GestureDescription(
    ...     name="demo",
    ...     poses=[PoseWindow(0, Window({"rhand_x": 0.0}, {"rhand_x": 50.0}))],
    ... )
    >>> db.save_gesture(desc)
    >>> db.gesture_names()
    ['demo']
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        try:
            self._connection = sqlite3.connect(self._path)
        except sqlite3.Error as exc:  # pragma: no cover - filesystem dependent
            raise StorageError(f"cannot open gesture database at {path}: {exc}") from exc
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "GestureDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- gestures -----------------------------------------------------------------------

    def save_gesture(
        self,
        description: GestureDescription,
        query_text: Optional[str] = None,
        overwrite: bool = True,
    ) -> None:
        """Insert or update a gesture.

        Raises
        ------
        DuplicateGestureError
            If the gesture exists and ``overwrite`` is false.
        """
        now = time.time()
        exists = self.has_gesture(description.name)
        if exists and not overwrite:
            raise DuplicateGestureError(
                f"gesture '{description.name}' already exists"
            )
        serialized = description_to_json(description)
        if exists:
            self._connection.execute(
                "UPDATE gestures SET description = ?, query_text = ?, updated_at = ? "
                "WHERE name = ?",
                (serialized, query_text, now, description.name),
            )
        else:
            self._connection.execute(
                "INSERT INTO gestures (name, description, query_text, enabled, "
                "created_at, updated_at) VALUES (?, ?, ?, 1, ?, ?)",
                (description.name, serialized, query_text, now, now),
            )
        self._connection.commit()

    def load_gesture(self, name: str) -> GestureRecord:
        """Load one gesture.

        Raises
        ------
        GestureNotFoundError
            If no gesture with that name is stored.
        """
        row = self._connection.execute(
            "SELECT name, description, query_text, enabled, created_at, updated_at "
            "FROM gestures WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise GestureNotFoundError(f"gesture '{name}' is not in the database")
        return GestureRecord(
            name=row[0],
            description=description_from_json(row[1]),
            query_text=row[2],
            enabled=bool(row[3]),
            created_at=row[4],
            updated_at=row[5],
        )

    def delete_gesture(self, name: str) -> None:
        """Delete a gesture and its samples."""
        if not self.has_gesture(name):
            raise GestureNotFoundError(f"gesture '{name}' is not in the database")
        self._connection.execute("DELETE FROM samples WHERE gesture = ?", (name,))
        self._connection.execute("DELETE FROM gestures WHERE name = ?", (name,))
        self._connection.commit()

    def has_gesture(self, name: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM gestures WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def gesture_names(self, enabled_only: bool = False) -> List[str]:
        sql = "SELECT name FROM gestures"
        if enabled_only:
            sql += " WHERE enabled = 1"
        sql += " ORDER BY name"
        return [row[0] for row in self._connection.execute(sql)]

    def all_gestures(self, enabled_only: bool = False) -> List[GestureRecord]:
        return [self.load_gesture(name) for name in self.gesture_names(enabled_only)]

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Enable/disable a gesture without deleting it."""
        if not self.has_gesture(name):
            raise GestureNotFoundError(f"gesture '{name}' is not in the database")
        self._connection.execute(
            "UPDATE gestures SET enabled = ?, updated_at = ? WHERE name = ?",
            (1 if enabled else 0, time.time(), name),
        )
        self._connection.commit()

    def update_query_text(self, name: str, query_text: str) -> None:
        """Store manually tuned query text for a gesture (paper Sec. 3)."""
        if not self.has_gesture(name):
            raise GestureNotFoundError(f"gesture '{name}' is not in the database")
        self._connection.execute(
            "UPDATE gestures SET query_text = ?, updated_at = ? WHERE name = ?",
            (query_text, time.time(), name),
        )
        self._connection.commit()

    # -- samples -------------------------------------------------------------------------

    def add_sample(self, gesture: str, recording: Recording) -> int:
        """Attach one training recording to a gesture; returns the sample id."""
        if not self.has_gesture(gesture):
            raise GestureNotFoundError(
                f"cannot add a sample: gesture '{gesture}' is not in the database"
            )
        cursor = self._connection.execute(
            "INSERT INTO samples (gesture, user, recording, created_at) "
            "VALUES (?, ?, ?, ?)",
            (gesture, recording.user, recording_to_json(recording), time.time()),
        )
        self._connection.commit()
        return int(cursor.lastrowid)

    def samples_for(self, gesture: str) -> List[SampleRecord]:
        rows = self._connection.execute(
            "SELECT id, gesture, user, recording, created_at FROM samples "
            "WHERE gesture = ? ORDER BY id",
            (gesture,),
        ).fetchall()
        return [
            SampleRecord(
                sample_id=row[0],
                gesture=row[1],
                user=row[2] or "unknown",
                recording=recording_from_json(row[3]),
                created_at=row[4],
            )
            for row in rows
        ]

    def sample_count(self, gesture: str) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM samples WHERE gesture = ?", (gesture,)
        ).fetchone()
        return int(row[0])

    # -- deployments ---------------------------------------------------------------------

    def log_deployment(self, gesture: str, query_text: str) -> None:
        """Record that a query for ``gesture`` was deployed."""
        self._connection.execute(
            "INSERT INTO deployments (gesture, query_text, deployed_at) VALUES (?, ?, ?)",
            (gesture, query_text, time.time()),
        )
        self._connection.commit()

    def deployment_history(self, gesture: str) -> List[Dict[str, object]]:
        rows = self._connection.execute(
            "SELECT query_text, deployed_at FROM deployments WHERE gesture = ? "
            "ORDER BY id",
            (gesture,),
        ).fetchall()
        return [{"query_text": row[0], "deployed_at": row[1]} for row in rows]

    def __repr__(self) -> str:
        return f"GestureDatabase(path={self._path!r}, gestures={self.gesture_names()})"
