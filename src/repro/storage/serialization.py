"""JSON serialisation of gesture artefacts.

Gesture descriptions, recordings and generated queries cross process
boundaries in two places: the gesture database (SQLite stores them as JSON
text) and export/import of gesture libraries between installations.  All
serialisation goes through this module so the format lives in one place.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.description import GestureDescription
from repro.errors import SerializationError
from repro.kinect.recordings import Recording

#: Format version written into every serialised artefact; bump on breaking
#: changes so older libraries can be migrated explicitly.
FORMAT_VERSION = 1


def description_to_json(description: GestureDescription) -> str:
    """Serialise a gesture description to a JSON string."""
    try:
        payload = {"version": FORMAT_VERSION, "description": description.to_dict()}
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"cannot serialise gesture '{description.name}': {exc}"
        ) from exc


def description_from_json(text: str) -> GestureDescription:
    """Deserialise a gesture description from a JSON string."""
    payload = _load(text, "gesture description")
    data = payload.get("description", payload)
    try:
        return GestureDescription.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed gesture description: {exc}") from exc


def recording_to_json(recording: Recording) -> str:
    """Serialise a sensor recording to a JSON string."""
    try:
        payload = {
            "version": FORMAT_VERSION,
            "gesture": recording.gesture,
            "user": recording.user,
            "frequency_hz": recording.frequency_hz,
            "frames": recording.frames,
        }
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise recording: {exc}") from exc


def recording_from_json(text: str) -> Recording:
    """Deserialise a sensor recording from a JSON string."""
    payload = _load(text, "recording")
    try:
        return Recording(
            gesture=str(payload["gesture"]),
            user=str(payload["user"]),
            frequency_hz=float(payload.get("frequency_hz", 30.0)),
            frames=[dict(frame) for frame in payload["frames"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed recording: {exc}") from exc


def _load(text: str, what: str) -> Dict[str, Any]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed {what} JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{what} JSON must be an object")
    version = payload.get("version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"{what} was written by a newer library version ({version} > {FORMAT_VERSION})"
        )
    return payload
