"""JSON serialisation of gesture artefacts, and the versioned envelope.

Gesture descriptions, recordings and generated queries cross process
boundaries in two places: the gesture database (SQLite stores them as JSON
text) and export/import of gesture libraries between installations.  All
serialisation goes through this module so the format lives in one place.

Versioned envelope
------------------
Every persistent artefact of the library — gesture descriptions,
recordings, and the :mod:`repro.persistence` snapshot / event-log formats —
shares one version-stamping scheme instead of inventing its own:
:func:`dump_envelope` wraps a JSON-serialisable payload as
``{"version": V, "kind": K, ...payload}``, and :func:`load_envelope`
rejects artefacts written by a *newer* library with a clear
:class:`~repro.errors.SerializationError`, verifies the ``kind`` tag, and
runs explicit per-version migration hooks for *older* artefacts, so format
evolution happens in exactly one way everywhere.
"""

from __future__ import annotations

import contextlib
import json
from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.description import GestureDescription
from repro.errors import SerializationError
from repro.kinect.recordings import Recording

try:
    # Optional accelerator for the hot envelope paths (the event log
    # serialises every ingested tuple): same JSON semantics, ~10x faster.
    # Everything falls back to the stdlib when orjson is not installed.
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on the environment
    _orjson = None

#: Format version written into every serialised artefact; bump on breaking
#: changes so older libraries can be migrated explicitly.
FORMAT_VERSION = 1

#: A migration hook: payload written at version N -> payload at version N+1.
Migration = Callable[[Dict[str, Any]], Dict[str, Any]]


def dump_envelope(
    kind: str,
    payload: Mapping[str, Any],
    version: int = FORMAT_VERSION,
    *,
    sort_keys: bool = False,
) -> str:
    """Wrap ``payload`` in a version-stamped envelope and render it as JSON.

    ``kind`` names the artefact type (``"snapshot"``, ``"event-log-manifest"``,
    …) so a reader can reject a file of the wrong flavour before trying to
    interpret it.  Payload keys must not collide with the envelope's own
    (``version`` / ``kind``).
    """
    if "version" in payload or "kind" in payload:
        raise SerializationError(
            f"payload of kind '{kind}' must not carry its own "
            f"'version'/'kind' keys; the envelope owns them"
        )
    document = {"version": version, "kind": kind, **payload}
    if _orjson is not None and not sort_keys:
        # The stdlib coerces more key types; on TypeError retry below.
        with contextlib.suppress(TypeError):
            return _orjson.dumps(document).decode("utf-8")
    try:
        return json.dumps(document, sort_keys=sort_keys)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise {kind}: {exc}") from exc


def load_envelope(
    text: str,
    kind: str,
    *,
    version: int = FORMAT_VERSION,
    migrations: Optional[Mapping[int, Migration]] = None,
) -> Dict[str, Any]:
    """Parse and validate a version-stamped envelope; return its payload.

    * an artefact stamped with a **newer** version than ``version`` raises
      :class:`~repro.errors.SerializationError` — this library cannot know
      what a future format means;
    * an artefact stamped with an **older** version is upgraded through
      ``migrations`` (a ``{from_version: hook}`` mapping applied
      step-by-step); a gap in the chain raises;
    * a ``kind`` mismatch raises, so e.g. a snapshot file is never
      misread as a manifest.
    """
    payload = _load(text, kind, expected_version=version)
    found_kind = payload.pop("kind", kind)
    if found_kind != kind:
        raise SerializationError(
            f"expected a '{kind}' artefact but found '{found_kind}'"
        )
    written = payload.pop("version", version)
    while written < version:
        hook = (migrations or {}).get(written)
        if hook is None:
            raise SerializationError(
                f"no migration from {kind} version {written} to {written + 1}"
            )
        payload = hook(payload)
        written += 1
    return payload


def description_to_json(description: GestureDescription) -> str:
    """Serialise a gesture description to a JSON string."""
    try:
        payload = {"version": FORMAT_VERSION, "description": description.to_dict()}
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"cannot serialise gesture '{description.name}': {exc}"
        ) from exc


def description_from_json(text: str) -> GestureDescription:
    """Deserialise a gesture description from a JSON string."""
    payload = _load(text, "gesture description")
    data = payload.get("description", payload)
    try:
        return GestureDescription.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed gesture description: {exc}") from exc


def recording_to_json(recording: Recording) -> str:
    """Serialise a sensor recording to a JSON string."""
    try:
        payload = {
            "version": FORMAT_VERSION,
            "gesture": recording.gesture,
            "user": recording.user,
            "frequency_hz": recording.frequency_hz,
            "frames": recording.frames,
        }
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot serialise recording: {exc}") from exc


def recording_from_json(text: str) -> Recording:
    """Deserialise a sensor recording from a JSON string."""
    payload = _load(text, "recording")
    try:
        return Recording(
            gesture=str(payload["gesture"]),
            user=str(payload["user"]),
            frequency_hz=float(payload.get("frequency_hz", 30.0)),
            frames=[dict(frame) for frame in payload["frames"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed recording: {exc}") from exc


def _load(
    text: str, what: str, expected_version: int = FORMAT_VERSION
) -> Dict[str, Any]:
    try:
        payload = json.loads(text) if _orjson is None else _orjson.loads(text)
    except ValueError as exc:
        raise SerializationError(f"malformed {what} JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{what} JSON must be an object")
    version = payload.get("version", expected_version)
    if not isinstance(version, int) or version > expected_version:
        raise SerializationError(
            f"{what} was written by a newer library version "
            f"({version} > {expected_version})"
        )
    return payload
