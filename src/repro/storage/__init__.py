"""Gesture database (persistence substrate).

The paper stores recorded samples and mined gesture patterns in a database
"for further processing and manual debugging" (Fig. 2: *Gesture Database*).
This package provides that store:

* :mod:`repro.storage.serialization` — JSON (de)serialisation of gesture
  descriptions, recordings and generated query text,
* :mod:`repro.storage.database` — an SQLite-backed store with tables for
  gestures, samples and deployed queries, usable in-memory (tests) or on
  disk (persistent gesture libraries).
"""

from repro.storage.serialization import (
    description_from_json,
    description_to_json,
    recording_from_json,
    recording_to_json,
)
from repro.storage.database import GestureDatabase, GestureRecord, SampleRecord

__all__ = [
    "GestureDatabase",
    "GestureRecord",
    "SampleRecord",
    "description_to_json",
    "description_from_json",
    "recording_to_json",
    "recording_from_json",
]
