"""Typed diagnostics with stable codes, and the deploy-time gate.

Every finding of the static analyzer is a :class:`Diagnostic`: a stable
``QAxxx`` code, a :class:`Severity`, a human-readable message, and the
query / step it anchors to.  Codes are API — tests, CI gates and
downstream tooling match on them — so they are never renumbered; new
rules get new codes.  ``docs/analysis.md`` is the code reference.

:func:`gate_diagnostics` implements the shared ``analyze=`` deployment
gate: ``"off"`` skips analysis entirely, ``"warn"`` surfaces findings as
:class:`QueryAnalysisWarning` Python warnings, and ``"strict"``
additionally rejects error-severity findings with a typed
:class:`~repro.errors.QueryAnalysisError`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryAnalysisError

__all__ = [
    "ANALYZE_MODES",
    "Diagnostic",
    "QueryAnalysisWarning",
    "Severity",
    "gate_diagnostics",
    "validate_analyze_mode",
]

#: The deploy-time gating modes accepted by ``analyze=``.
ANALYZE_MODES: Tuple[str, ...] = ("off", "warn", "strict")


class Severity(str, Enum):
    """How serious a diagnostic is.

    ``ERROR`` findings mean the query (or vocabulary) is broken — it can
    never fire, or silently loses detections; ``"strict"`` deployments
    reject them.  ``WARNING`` findings are very likely mistakes but the
    query still runs.  ``INFO`` findings are observations (factoring
    opportunities, policy notes) that never gate a deployment.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Rank used to sort diagnostics most-severe-first.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    Attributes
    ----------
    code:
        Stable ``QAxxx`` identifier (see ``docs/analysis.md``).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable, self-contained explanation.
    query:
        Registration name of the query the finding anchors to, or ``None``
        for vocabulary-level findings.
    step:
        0-based flattened step index within the query's pattern, or
        ``None`` for query- and vocabulary-level findings.
    detail:
        Structured machine-readable payload (interval descriptions,
        related query names, …); JSON-serialisable by construction.
    """

    code: str
    severity: Severity
    message: str
    query: Optional[str] = None
    step: Optional[int] = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (the CLI's ``--json`` format)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "query": self.query,
            "step": self.step,
            "detail": dict(self.detail),
        }

    def describe(self) -> str:
        """One-line human rendering: ``error QA001 [query:2] message``."""
        anchor = ""
        if self.query is not None:
            anchor = f" [{self.query}]" if self.step is None else f" [{self.query}:{self.step}]"
        return f"{self.severity.value} {self.code}{anchor} {self.message}"


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Stable most-severe-first ordering (then by code, query, step)."""
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (
                _SEVERITY_RANK[d.severity],
                d.code,
                d.query or "",
                -1 if d.step is None else d.step,
            ),
        )
    )


class QueryAnalysisWarning(UserWarning):
    """Python warning carrying analyzer findings in ``analyze="warn"`` mode."""


def validate_analyze_mode(mode: str) -> str:
    """Check an ``analyze=`` argument; returns it for chaining."""
    if mode not in ANALYZE_MODES:
        raise ValueError(
            f"unknown analyze mode {mode!r}; expected one of {list(ANALYZE_MODES)}"
        )
    return mode


def gate_diagnostics(
    diagnostics: Sequence[Diagnostic],
    mode: str,
    subject: str = "query",
) -> Sequence[Diagnostic]:
    """Apply the deploy-time gate to analyzer findings.

    ``"warn"`` emits one :class:`QueryAnalysisWarning` per error- or
    warning-severity finding (info findings stay silent).  ``"strict"``
    does the same for warnings but raises
    :class:`~repro.errors.QueryAnalysisError` when any error-severity
    finding is present.  Returns ``diagnostics`` unchanged so callers can
    keep them.  ``mode`` must already be validated.
    """
    if mode == "off" or not diagnostics:
        return diagnostics
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if mode == "strict" and errors:
        raise QueryAnalysisError(subject=subject, diagnostics=sort_diagnostics(errors))
    for diagnostic in sort_diagnostics(diagnostics):
        if diagnostic.severity is Severity.INFO:
            continue
        warnings.warn(diagnostic.describe(), QueryAnalysisWarning, stacklevel=3)
    return diagnostics
