"""Command-line vocabulary linter: ``python -m repro.analysis``.

Lints one or more vocabulary sources — JSON manifests mapping gesture
names to query text, or SQLite gesture databases — and prints the
analyzer's findings.  Exit status follows lint conventions:

* ``0`` — no findings at or above the failure threshold,
* ``1`` — findings at or above the threshold (``--strict`` lowers the
  threshold from error to warning),
* ``2`` — a source could not be read or parsed at all.

Examples
--------
Lint two manifests, failing the build on error-severity findings::

    python -m repro.analysis examples/vocabularies/*.json

Fail on warnings too, and write machine-readable output for CI::

    python -m repro.analysis --strict --json report.json vocab.json

Lint the queries stored in a gesture database::

    python -m repro.analysis gestures.db
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple

from repro.analysis.diagnostics import Severity
from repro.analysis.rules import AnalysisContext
from repro.analysis.vocabulary import VocabularyReport, analyze_vocabulary

__all__ = ["main"]


def _load_manifest(path: Path) -> Mapping[str, str]:
    """Read a JSON vocabulary manifest into a name → query-text mapping.

    Accepts either a flat object (``{"wave": "SELECT ..."}``) or an
    object with a ``"queries"`` key holding that mapping, so manifests
    can carry extra metadata.
    """
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and isinstance(payload.get("queries"), dict):
        payload = payload["queries"]
    if not isinstance(payload, dict) or not payload:
        raise ValueError(
            f"{path}: expected a non-empty JSON object mapping gesture "
            f"names to query text (optionally under a 'queries' key)"
        )
    bad = [name for name, text in payload.items() if not isinstance(text, str)]
    if bad:
        raise ValueError(
            f"{path}: query text for {', '.join(sorted(bad))} is not a string"
        )
    return {str(name): text for name, text in payload.items()}


def _analyze_source(path: Path, context: AnalysisContext) -> VocabularyReport:
    """Analyse one source file (JSON manifest or SQLite database)."""
    if path.suffix in (".db", ".sqlite", ".sqlite3"):
        from repro.storage.database import GestureDatabase

        database = GestureDatabase(str(path))
        try:
            return analyze_vocabulary(database, context=context)
        finally:
            database.close()
    return analyze_vocabulary(_load_manifest(path), context=context)


def _print_report(source: str, report: VocabularyReport, out: TextIO) -> None:
    counts = report.to_dict()["summary"]
    print(
        f"{source}: {len(report.queries)} queries — "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info",
        file=out,
    )
    for diagnostic in report.diagnostics:
        print(f"  {diagnostic.describe()}", file=out)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Statically analyse gesture-query vocabularies: unsatisfiable "
            "and dead pattern steps, time-window coverage, policy sanity, "
            "partition safety, duplicates/subsumption, and predicate "
            "factoring opportunities."
        ),
    )
    parser.add_argument(
        "sources",
        nargs="+",
        metavar="SOURCE",
        help=(
            "vocabulary sources: JSON manifests (gesture name -> query "
            "text, optionally under a 'queries' key) or SQLite gesture "
            "databases (*.db, *.sqlite, *.sqlite3)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warning-severity findings too, not just errors",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all reports as a JSON document to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--partition-field",
        default=None,
        metavar="FIELD",
        help=(
            "partition field the deployment will shard on (enables the "
            "QA030/QA031 partition-safety rules; default: the engine "
            "default field)"
        ),
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "run_ttl_seconds of the target deployment; downgrades the "
            "uncovered-'within' finding from QA010 to informational QA011"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-finding output; print only the summary lines",
    )
    return parser


def _make_context(args: argparse.Namespace) -> AnalysisContext:
    kwargs: Dict[str, Any] = {"run_ttl_seconds": args.ttl}
    if args.partition_field is not None:
        kwargs["partition_field"] = args.partition_field
    return AnalysisContext(**kwargs)


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """CLI entry point; returns the process exit status."""
    # Resolve the stream at call time so test harnesses that swap
    # sys.stdout (pytest's capsys) see the output.
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)
    context = _make_context(args)
    threshold = Severity.WARNING if args.strict else Severity.ERROR

    reports: List[Tuple[str, VocabularyReport]] = []
    failed_sources: List[str] = []
    for source in args.sources:
        path = Path(source)
        try:
            report = _analyze_source(path, context)
        except Exception as exc:  # noqa: BLE001 — CLI boundary: report and continue
            failed_sources.append(source)
            print(f"{source}: cannot analyse: {exc}", file=sys.stderr)
            continue
        reports.append((source, report))
        if args.quiet:
            counts = report.to_dict()["summary"]
            print(
                f"{source}: {len(report.queries)} queries — "
                f"{counts['error']} error(s), {counts['warning']} warning(s), "
                f"{counts['info']} info",
                file=out,
            )
        else:
            _print_report(source, report, out)

    if args.json is not None:
        payload = {
            "sources": {source: report.to_dict() for source, report in reports},
            "failed_sources": failed_sources,
            "strict": args.strict,
        }
        if args.json == "-":
            json.dump(payload, out, indent=2, sort_keys=True)
            print(file=out)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")

    if failed_sources:
        return 2
    gating = {Severity.ERROR} if threshold is Severity.ERROR else {
        Severity.ERROR,
        Severity.WARNING,
    }
    for _, report in reports:
        if any(d.severity in gating for d in report.diagnostics):
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
