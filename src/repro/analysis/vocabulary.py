"""Cross-query vocabulary analysis: duplicates, subsumption, factoring.

A deployed gesture vocabulary is a *set* of queries, and its cost is not
the sum of its parts: the generated abs-window shapes overlap heavily, so
duplicate, equivalent and subsumed queries waste matcher cycles for every
tuple of every user.  This module compares queries pairwise — first by
canonical ``to_query()`` text, then semantically via the per-step interval
summaries of :mod:`repro.analysis.rules` — and builds the
shared-predicate factoring report that the multi-query optimisation layer
(ROADMAP item 1) consumes: predicate → queries that evaluate it.

Entry point: :func:`analyze_vocabulary`, returning a
:class:`VocabularyReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.analysis.intervals import IntervalSet
from repro.analysis.rules import (
    AnalysisContext,
    PredicateSummary,
    Satisfiability,
    analyze_query,
    summarize_predicate,
)
from repro.cep.expressions import BooleanOp, Expression
from repro.cep.nfa import CompiledPattern, compile_pattern
from repro.cep.query import Query

__all__ = ["VocabularyReport", "analyze_vocabulary"]


@dataclass(frozen=True)
class VocabularyReport:
    """The result of :func:`analyze_vocabulary`.

    Attributes
    ----------
    queries:
        Registration names in analysis order.
    diagnostics:
        All findings (per-query and cross-query), most severe first.
    shared_predicates:
        The factoring report: canonical predicate text → sorted names of
        the queries that evaluate it (only predicates shared by at least
        two queries).  This is the input of the multi-query optimisation
        layer: each entry is a predicate that should be evaluated once per
        tuple, not once per query.
    """

    queries: Tuple[str, ...]
    diagnostics: Tuple[Diagnostic, ...]
    shared_predicates: Mapping[str, Tuple[str, ...]]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def for_query(self, name: str) -> List[Diagnostic]:
        """Findings anchored to (or mentioning) query ``name``."""
        return [
            d
            for d in self.diagnostics
            if d.query == name or name in d.detail.get("queries", ())
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (the CLI's ``--json`` payload)."""
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return {
            "queries": list(self.queries),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "shared_predicates": {
                text: list(names) for text, names in self.shared_predicates.items()
            },
            "summary": counts,
        }


#: One analysed query: name, query, compiled pattern, per-step summaries.
_Entry = Tuple[str, Query, CompiledPattern, List[PredicateSummary]]


def _step_conjuncts(predicate: Expression) -> List[Expression]:
    """Top-level conjuncts of a step predicate (the factoring unit)."""
    if isinstance(predicate, BooleanOp) and predicate.operator == "and":
        return list(predicate.operands)
    return [predicate]


def _exactly_summarised(entry: _Entry) -> bool:
    """Whether every step of ``entry`` has an exact interval summary."""
    return all(
        summary.exact and summary.status is Satisfiability.SATISFIABLE
        for summary in entry[3]
    )


def _constraint_spans(compiled: CompiledPattern) -> Dict[Tuple[int, int], float]:
    """``within`` windows keyed by the (first, last) step span they cover."""
    spans: Dict[Tuple[int, int], float] = {}
    for constraint in compiled.constraints:
        span = (constraint.first, constraint.last)
        seconds = spans.get(span)
        # Several nested groups can cover the same span; the tightest wins.
        spans[span] = constraint.seconds if seconds is None else min(seconds, constraint.seconds)
    return spans


def _covers(wide: _Entry, narrow: _Entry) -> bool:
    """Whether every match of ``narrow`` is necessarily a match of ``wide``.

    Sound only for exactly-summarised entries: same step streams, each
    wide step's per-field constraints a superset of the narrow step's, and
    every time window of ``wide`` at least as permissive as what ``narrow``
    enforces on the same span.
    """
    _, wide_query, wide_compiled, wide_summaries = wide
    _, narrow_query, narrow_compiled, narrow_summaries = narrow
    if wide_compiled.length != narrow_compiled.length:
        return False
    if wide_query.pattern.select is not narrow_query.pattern.select:
        return False
    if wide_query.pattern.consume is not narrow_query.pattern.consume:
        return False
    if any(
        wide_step.stream != narrow_step.stream
        for wide_step, narrow_step in zip(wide_compiled.steps, narrow_compiled.steps)
    ):
        return False
    for wide_summary, narrow_summary in zip(wide_summaries, narrow_summaries):
        narrow_fields = narrow_summary.fields
        for field_name, wide_set in wide_summary.fields.items():
            narrow_set = narrow_fields.get(field_name, IntervalSet.full())
            if not wide_set.covers(narrow_set):
                return False
    narrow_spans = _constraint_spans(narrow_compiled)
    for span, wide_seconds in _constraint_spans(wide_compiled).items():
        narrow_seconds = narrow_spans.get(span)
        if narrow_seconds is None or narrow_seconds > wide_seconds:
            return False
    return True


def _pair_diagnostics(entries: Sequence[_Entry]) -> List[Diagnostic]:
    """QA040 / QA041 / QA042 over all query pairs."""
    findings: List[Diagnostic] = []

    # Textual duplicates first: group by canonical pattern text.
    by_signature: Dict[str, List[str]] = {}
    for name, query, _, _ in entries:
        by_signature.setdefault(query.signature(), []).append(name)
    duplicated: set = set()
    for names in by_signature.values():
        if len(names) < 2:
            continue
        duplicated.update(names)
        findings.append(
            Diagnostic(
                code="QA040",
                severity=Severity.WARNING,
                message=(
                    f"queries {', '.join(names)} share an identical pattern — "
                    f"every tuple is matched {len(names)} times for one "
                    f"detection shape; deploy one and alias the rest"
                ),
                query=names[0],
                detail={"queries": list(names)},
            )
        )

    comparable = [entry for entry in entries if _exactly_summarised(entry)]
    for index, first in enumerate(comparable):
        for second in comparable[index + 1 :]:
            name_a, query_a = first[0], first[1]
            name_b, query_b = second[0], second[1]
            if name_a in duplicated and name_b in duplicated and (
                query_a.signature() == query_b.signature()
            ):
                continue  # already reported as QA040
            a_covers_b = _covers(first, second)
            b_covers_a = _covers(second, first)
            if a_covers_b and b_covers_a:
                findings.append(
                    Diagnostic(
                        code="QA041",
                        severity=Severity.WARNING,
                        message=(
                            f"queries {name_a} and {name_b} are semantically "
                            f"equivalent (identical per-field intervals and "
                            f"time windows) despite differing text — one of "
                            f"them is redundant"
                        ),
                        query=name_a,
                        detail={"queries": [name_a, name_b]},
                    )
                )
            elif a_covers_b or b_covers_a:
                wide, narrow = (name_a, name_b) if a_covers_b else (name_b, name_a)
                findings.append(
                    Diagnostic(
                        code="QA042",
                        severity=Severity.WARNING,
                        message=(
                            f"query {wide} subsumes {narrow}: every match of "
                            f"{narrow} also completes {wide}, so both fire "
                            f"together on {narrow}'s movements — tighten "
                            f"{wide} or remove {narrow}"
                        ),
                        query=narrow,
                        detail={"queries": [wide, narrow], "wide": wide, "narrow": narrow},
                    )
                )
    return findings


def _factoring_report(
    entries: Sequence[_Entry],
) -> Tuple[Dict[str, Tuple[str, ...]], List[Diagnostic]]:
    """QA050 and the shared-predicate map (predicate → queries)."""
    users: Dict[str, List[str]] = {}
    for name, _, compiled, _ in entries:
        for step in compiled.steps:
            for conjunct in _step_conjuncts(step.predicate):
                text = conjunct.to_query()
                names = users.setdefault(text, [])
                if name not in names:
                    names.append(name)
    shared = {
        text: tuple(sorted(names))
        for text, names in sorted(users.items())
        if len(names) > 1
    }
    findings = [
        Diagnostic(
            code="QA050",
            severity=Severity.INFO,
            message=(
                f"predicate '{text}' is evaluated by {len(names)} queries "
                f"({', '.join(names)}) — a multi-query plan can evaluate it "
                f"once per tuple and fan the result out"
            ),
            detail={"predicate": text, "queries": list(names)},
        )
        for text, names in shared.items()
    ]
    return shared, findings


def _coerce_entries(
    source: Union[Mapping[str, Any], Sequence[Any], Any],
) -> List[Tuple[str, Query]]:
    """Normalise a vocabulary source into named queries.

    Accepts a mapping of name → query-like (text, :class:`Query`, builder
    chain, or :class:`~repro.core.description.GestureDescription`), a
    plain sequence of query-likes, or a
    :class:`~repro.storage.database.GestureDatabase`.
    """
    from repro.cep.engine import coerce_query  # late: engine imports us lazily
    from repro.storage.database import GestureDatabase

    if isinstance(source, GestureDatabase):
        from repro.core.querygen import QueryGenerator

        generator = QueryGenerator()
        named: List[Tuple[str, Query]] = []
        for record in source.all_gestures():
            if record.query_text:
                named.append((record.name, coerce_query(record.query_text)))
            else:
                named.append((record.name, generator.generate(record.description)))
        return named

    def to_query(value: Any) -> Query:
        from repro.core.description import GestureDescription

        if isinstance(value, GestureDescription):
            from repro.core.querygen import QueryGenerator

            return QueryGenerator().generate(value)
        return coerce_query(value)

    if isinstance(source, Mapping):
        return [(str(name), to_query(value)) for name, value in source.items()]
    named = []
    for value in source:
        query = to_query(value)
        named.append((query.registration_name, query))
    return named


def analyze_vocabulary(
    source: Union[Mapping[str, Any], Sequence[Any], Any],
    context: Optional[AnalysisContext] = None,
    names: Optional[Iterable[str]] = None,
) -> VocabularyReport:
    """Analyse a whole vocabulary: per-query rules plus cross-query rules.

    ``source`` may be a mapping of name → query-like, a sequence of
    query-likes, or a :class:`~repro.storage.database.GestureDatabase`.
    ``names`` optionally overrides the registration names (zipped against
    the source order).
    """
    context = context or AnalysisContext()
    named = _coerce_entries(source)
    if names is not None:
        overrides = list(names)
        if len(overrides) != len(named):
            raise ValueError(
                f"got {len(overrides)} name overrides for {len(named)} queries"
            )
        named = [(override, query) for override, (_, query) in zip(overrides, named)]

    findings: List[Diagnostic] = []
    entries: List[_Entry] = []
    for name, query in named:
        findings.extend(analyze_query(query, context=context, name=name))
        compiled = compile_pattern(query.pattern)
        summaries = [summarize_predicate(step.predicate) for step in compiled.steps]
        entries.append((name, query, compiled, summaries))

    findings.extend(_pair_diagnostics(entries))
    shared, factoring = _factoring_report(entries)
    findings.extend(factoring)
    return VocabularyReport(
        queries=tuple(name for name, _ in named),
        diagnostics=sort_diagnostics(findings),
        shared_predicates=shared,
    )
