"""Static analysis of gesture queries and deployed vocabularies.

The learning loop of the paper generates CEP queries and deploys them
blind: nothing proves a generated query is satisfiable, non-redundant or
correctly windowed before it burns matcher cycles.  This package lowers
:class:`~repro.cep.expressions.Expression` / :class:`~repro.cep.query.Query`
ASTs into per-field interval constraints and emits typed
:class:`~repro.analysis.diagnostics.Diagnostic` objects with stable codes:

* per-query rules — unsatisfiable predicates and dead pattern steps
  (``QA001`` / ``QA002``), tautological constraints (``QA003`` /
  ``QA004``), ``within``-uncovered steps interacting with
  ``run_ttl_seconds`` (``QA010`` / ``QA011``), consume/select sanity
  (``QA020`` / ``QA021``) and partition safety across streams
  (``QA030`` / ``QA031``);
* cross-query vocabulary rules — duplicate and semantically equivalent
  queries (``QA040`` / ``QA041``), subsumption (``QA042``) and the
  shared-predicate factoring report (``QA050``) that feeds the multi-query
  optimisation layer of ROADMAP item 1.

Entry points:

* :func:`analyze_query` — diagnostics for one query,
* :func:`analyze_vocabulary` — a :class:`VocabularyReport` over many,
* deploy-time gating via ``analyze="off" | "warn" | "strict"`` on
  :meth:`repro.cep.engine.CEPEngine.register_query`,
  :meth:`repro.api.GestureSession.deploy` and
  :meth:`~repro.api.GestureSession.deploy_vocabulary`,
* ``python -m repro.analysis`` — lint vocabulary manifests or gesture
  databases from the command line.

See ``docs/analysis.md`` for the full code reference.
"""

from repro.analysis.diagnostics import (
    ANALYZE_MODES,
    Diagnostic,
    QueryAnalysisWarning,
    Severity,
    gate_diagnostics,
    validate_analyze_mode,
)
from repro.analysis.intervals import Interval, IntervalSet
from repro.analysis.rules import AnalysisContext, analyze_query
from repro.analysis.vocabulary import VocabularyReport, analyze_vocabulary
from repro.errors import QueryAnalysisError

__all__ = [
    "ANALYZE_MODES",
    "AnalysisContext",
    "Diagnostic",
    "Interval",
    "IntervalSet",
    "QueryAnalysisError",
    "QueryAnalysisWarning",
    "Severity",
    "VocabularyReport",
    "analyze_query",
    "analyze_vocabulary",
    "gate_diagnostics",
    "validate_analyze_mode",
]
