"""Per-query analysis rules: constraint lowering and diagnostics.

The heart of the analyzer.  :func:`summarize_predicate` lowers an
:class:`~repro.cep.expressions.Expression` into a
:class:`PredicateSummary` — per-field :class:`~repro.analysis.intervals.IntervalSet`
constraints plus a three-valued satisfiability verdict — handling exactly
the shapes the system generates: linear terms over one field, the
``abs(field - center) < width`` pose-window template, ``and`` / ``or`` /
``not`` combinations, and constant folding.  Anything else (multi-field
atoms, UDF calls) is treated as *opaque*: it contributes no constraints
and never produces a false positive.

:func:`analyze_query` runs every per-query rule and returns sorted
:class:`~repro.analysis.diagnostics.Diagnostic` findings; the code
reference lives in ``docs/analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from enum import Enum
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.analysis.intervals import Interval, IntervalSet
from repro.cep.expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    Expression,
    FieldRef,
    FunctionCall,
    Literal,
    NotOp,
    UnaryMinus,
)
from repro.cep.nfa import CompiledPattern, compile_pattern
from repro.cep.query import ConsumePolicy, Query, SelectPolicy, SequencePattern
from repro.cep.tuples import DEFAULT_PARTITION_FIELD

__all__ = [
    "AnalysisContext",
    "PredicateSummary",
    "Satisfiability",
    "analyze_query",
    "summarize_predicate",
]


# ---------------------------------------------------------------------------
# Analysis context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisContext:
    """Deployment facts the analyzer folds into its verdicts.

    Attributes
    ----------
    partition_field:
        The run-table partition key the query will be deployed under
        (``None`` disables partition-safety checks).
    run_ttl_seconds:
        The matcher's TTL for partial matches sitting at steps no
        ``within`` constraint covers; drives QA010 vs QA011.
    stream_fields:
        Declared schema fields per stream name; a stream mapped to
        ``None`` (or absent) has an unknown schema.  Drives the
        partition-safety rules for multi-stream patterns.
    """

    partition_field: Optional[str] = DEFAULT_PARTITION_FIELD
    run_ttl_seconds: Optional[float] = None
    stream_fields: Mapping[str, Optional[FrozenSet[str]]] = dataclass_field(
        default_factory=dict
    )

    @staticmethod
    def for_engine(engine: Any, partition_field: Any = "__unset__") -> "AnalysisContext":
        """Build a context from a live engine (duck-typed, no import cycle).

        ``engine`` needs a ``matcher_config`` and a ``streams`` registry;
        ``partition_field`` overrides the config's value (pass ``None``
        explicitly for an unpartitioned deployment).
        """
        config = getattr(engine, "matcher_config", None)
        effective = getattr(config, "partition_field", None)
        if partition_field != "__unset__":
            effective = partition_field
        stream_fields: Dict[str, Optional[FrozenSet[str]]] = {}
        streams = getattr(engine, "streams", None)
        if streams is not None:
            for name in streams.names():
                declared = streams.get(name).fields
                stream_fields[name] = frozenset(declared) if declared else None
        return AnalysisContext(
            partition_field=effective,
            run_ttl_seconds=getattr(config, "run_ttl_seconds", None),
            stream_fields=stream_fields,
        )


# ---------------------------------------------------------------------------
# Predicate lowering
# ---------------------------------------------------------------------------


class Satisfiability(Enum):
    """Three-valued verdict of :func:`summarize_predicate`."""

    UNSATISFIABLE = "unsatisfiable"
    SATISFIABLE = "satisfiable"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PredicateSummary:
    """Per-field constraints plus a satisfiability verdict.

    ``fields`` is a sound over-approximation: every record satisfying the
    predicate has each constrained field inside its set.  ``exact`` marks
    summaries whose field map fully characterises the predicate (pure
    single-field interval logic), which is when ``SATISFIABLE`` verdicts
    and vocabulary comparisons are trusted.
    """

    status: Satisfiability
    fields: Mapping[str, IntervalSet]
    exact: bool

    def field_sets(self) -> Dict[str, IntervalSet]:
        return dict(self.fields)


_OPAQUE = PredicateSummary(Satisfiability.UNKNOWN, {}, False)
_TRUE = PredicateSummary(Satisfiability.SATISFIABLE, {}, True)
_FALSE = PredicateSummary(Satisfiability.UNSATISFIABLE, {}, True)

_NEGATED_OP = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}

#: A linear term ``coefficient * field + constant`` (``field`` may be None
#: for pure constants).
_Linear = Tuple[Optional[str], float, float]


def _linear(expr: Expression) -> Optional[_Linear]:
    """Lower an arithmetic expression to ``a*field + b``, or ``None``."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool) or not isinstance(expr.value, (int, float)):
            return None
        return (None, 0.0, float(expr.value))
    if isinstance(expr, FieldRef):
        return (expr.name, 1.0, 0.0)
    if isinstance(expr, UnaryMinus):
        inner = _linear(expr.operand)
        if inner is None:
            return None
        return (inner[0], -inner[1], -inner[2])
    if isinstance(expr, BinaryOp):
        left = _linear(expr.left)
        right = _linear(expr.right)
        if left is None or right is None:
            return None
        field_l, coeff_l, const_l = left
        field_r, coeff_r, const_r = right
        if expr.operator in ("+", "-"):
            sign = 1.0 if expr.operator == "+" else -1.0
            if field_l is not None and field_r is not None and field_l != field_r:
                return None
            return (
                field_l if field_l is not None else field_r,
                coeff_l + sign * coeff_r,
                const_l + sign * const_r,
            )
        if expr.operator == "*":
            if field_l is not None and field_r is not None:
                return None  # quadratic
            if field_l is None:
                field_l, coeff_l, const_l, field_r, coeff_r, const_r = (
                    field_r,
                    coeff_r,
                    const_r,
                    field_l,
                    coeff_l,
                    const_l,
                )
            return (field_l, coeff_l * const_r, const_l * const_r)
        if expr.operator == "/":
            if field_r is not None or const_r == 0:
                return None
            return (field_l, coeff_l / const_r, const_l / const_r)
    return None


def _abs_argument(expr: Expression) -> Optional[Expression]:
    """The argument of a builtin-shaped ``abs(...)`` call, else ``None``."""
    if isinstance(expr, FunctionCall) and expr.name == "abs" and len(expr.arguments) == 1:
        return expr.arguments[0]
    return None


def _solution_on_term(operator: str, bound: float, absolute: bool) -> Optional[IntervalSet]:
    """Solution set of ``term OP bound`` (or ``abs(term) OP bound``)."""
    if not absolute:
        return IntervalSet.from_comparison(operator, bound)
    if operator == "==":
        if bound < 0:
            return IntervalSet.empty()
        return IntervalSet.of(Interval.point(bound)).union(
            IntervalSet.of(Interval.point(-bound))
        )
    if operator == "!=":
        if bound < 0:
            return IntervalSet.full()
        return (
            IntervalSet.of(Interval.point(bound))
            .union(IntervalSet.of(Interval.point(-bound)))
            .complement()
        )
    direct = IntervalSet.from_comparison(operator, bound)
    mirrored = IntervalSet.from_comparison(_mirror(operator), -bound)
    assert direct is not None and mirrored is not None
    if operator in ("<", "<="):
        # abs(t) <= b  <=>  t <= b and t >= -b (empty when b is negative).
        return direct.intersect(mirrored)
    # abs(t) >= b  <=>  t >= b or t <= -b (full when b is negative).
    return direct.union(mirrored)


def _mirror(operator: str) -> str:
    """Mirror a comparison across zero (``t < b`` → ``t > -b``)."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]


def _flip(operator: str) -> str:
    """Swap comparison sides (``a < b`` → ``b > a``)."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[operator]


def _atom_summary(atom: Comparison, negate: bool) -> PredicateSummary:
    """Summarise a single comparison (optionally under negation)."""
    operator = _NEGATED_OP[atom.operator] if negate else atom.operator
    left, right = atom.left, atom.right

    # Normalise so any abs() call sits on the left.
    if _abs_argument(right) is not None and _abs_argument(left) is None:
        left, right = right, left
        operator = _flip(operator)

    abs_inner = _abs_argument(left)
    if abs_inner is not None:
        term = _linear(abs_inner)
        bound = _linear(right)
        if term is None or bound is None or bound[0] is not None:
            return _OPAQUE
        term_field, term_coeff, term_const = term
        solution = _solution_on_term(operator, bound[2], absolute=True)
        if solution is None:
            return _OPAQUE
        if term_field is None or term_coeff == 0:
            # abs(constant) OP bound — fold.
            satisfied = solution.contains_value(term_coeff * 0.0 + term_const)
            return _TRUE if satisfied else _FALSE
        constrained = solution.affine(1.0 / term_coeff, -term_const / term_coeff)
        return _field_summary(term_field, constrained)

    lhs = _linear(left)
    rhs = _linear(right)
    if lhs is None or rhs is None:
        return _OPAQUE
    field_l, coeff_l, const_l = lhs
    field_r, coeff_r, const_r = rhs
    if field_l is not None and field_r is not None and field_l != field_r:
        return _OPAQUE  # relates two different fields
    name = field_l if field_l is not None else field_r
    coeff = coeff_l - coeff_r
    const = const_l - const_r
    if name is None or coeff == 0:
        # Constant comparison: coeff*0 + const OP 0.
        solution = IntervalSet.from_comparison(operator, 0.0)
        if solution is None:
            return _OPAQUE
        return _TRUE if solution.contains_value(const) else _FALSE
    solution = IntervalSet.from_comparison(operator, 0.0)
    if solution is None:
        return _OPAQUE
    # coeff*name + const OP 0  <=>  name in affine-image of OP-solution.
    constrained = solution.affine(1.0 / coeff, -const / coeff)
    return _field_summary(name, constrained)


def _field_summary(name: str, constrained: IntervalSet) -> PredicateSummary:
    if constrained.is_empty():
        return PredicateSummary(Satisfiability.UNSATISFIABLE, {name: constrained}, True)
    if constrained.is_full():
        return _TRUE
    return PredicateSummary(Satisfiability.SATISFIABLE, {name: constrained}, True)


def summarize_predicate(expr: Expression, negate: bool = False) -> PredicateSummary:
    """Lower ``expr`` to per-field interval constraints.

    Sound by construction: ``UNSATISFIABLE`` is only reported when the
    interval algebra *proves* no record can satisfy the predicate;
    constructs outside the supported fragment degrade to ``UNKNOWN``.
    """
    if isinstance(expr, Literal):
        truthy = bool(expr.value) != negate
        return _TRUE if truthy else _FALSE
    if isinstance(expr, NotOp):
        return summarize_predicate(expr.operand, not negate)
    if isinstance(expr, Comparison):
        return _atom_summary(expr, negate)
    if isinstance(expr, BooleanOp):
        operator = expr.operator
        if negate:  # De Morgan: push the negation into the operands.
            operator = "or" if operator == "and" else "and"
        children = [summarize_predicate(op, negate) for op in expr.operands]
        if operator == "and":
            return _conjoin(children)
        return _disjoin(children)
    return _OPAQUE


def _conjoin(children: List[PredicateSummary]) -> PredicateSummary:
    merged: Dict[str, IntervalSet] = {}
    exact = True
    unknown = False
    for child in children:
        if child.status is Satisfiability.UNSATISFIABLE:
            return _FALSE
        if child.status is Satisfiability.UNKNOWN:
            unknown = True
        exact = exact and child.exact
        for name, constraint in child.fields.items():
            existing = merged.get(name)
            merged[name] = constraint if existing is None else existing.intersect(constraint)
    # An empty per-field intersection proves the conjunction unsatisfiable
    # even when opaque conjuncts are present (they can only shrink the set).
    if any(constraint.is_empty() for constraint in merged.values()):
        return PredicateSummary(Satisfiability.UNSATISFIABLE, merged, exact and not unknown)
    status = Satisfiability.UNKNOWN if unknown else Satisfiability.SATISFIABLE
    return PredicateSummary(status, merged, exact and not unknown)


def _disjoin(children: List[PredicateSummary]) -> PredicateSummary:
    live = [c for c in children if c.status is not Satisfiability.UNSATISFIABLE]
    if not live:
        return _FALSE
    if any(c.status is Satisfiability.SATISFIABLE and not c.fields for c in live):
        return _TRUE  # one branch is constant-true
    merged: Dict[str, IntervalSet] = {}
    # Only fields constrained in *every* live branch survive the union.
    common = set(live[0].fields)
    for child in live[1:]:
        common &= set(child.fields)
    for name in common:
        union = IntervalSet.empty()
        for child in live:
            union = union.union(child.fields[name])
        merged[name] = union
    exact = (
        all(c.exact for c in live)
        and all(set(c.fields) == common for c in live)
        and len(common) <= 1
    )
    if any(c.status is Satisfiability.UNKNOWN for c in live):
        status = Satisfiability.UNKNOWN
    elif exact or all(c.status is Satisfiability.SATISFIABLE for c in live):
        status = Satisfiability.SATISFIABLE
    else:
        status = Satisfiability.UNKNOWN
    return PredicateSummary(status, merged, exact)


# ---------------------------------------------------------------------------
# Per-query rules
# ---------------------------------------------------------------------------


def _atom_diagnostics(
    predicate: Expression, query_name: str, step_index: int
) -> List[Diagnostic]:
    """QA003 / QA005: tautological and dead atomic constraints."""
    findings: List[Diagnostic] = []
    stack: List[Expression] = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            summary = _atom_summary(node, negate=False)
            if summary is _TRUE:
                findings.append(
                    Diagnostic(
                        code="QA003",
                        severity=Severity.WARNING,
                        message=(
                            f"constraint '{node.to_query()}' is tautological — "
                            f"it accepts every tuple and can be removed"
                        ),
                        query=query_name,
                        step=step_index,
                    )
                )
            elif summary.status is Satisfiability.UNSATISFIABLE:
                findings.append(
                    Diagnostic(
                        code="QA005",
                        severity=Severity.WARNING,
                        message=(
                            f"constraint '{node.to_query()}' can never hold; "
                            f"the enclosing branch is dead"
                        ),
                        query=query_name,
                        step=step_index,
                    )
                )
            continue
        stack.extend(node.children())
    return findings


def _within_diagnostics(
    compiled: CompiledPattern, query_name: str, context: AnalysisContext
) -> List[Diagnostic]:
    """QA010 / QA011: wait positions no ``within`` constraint covers."""
    if compiled.length < 2:
        return []
    uncovered = [
        index
        for index in range(compiled.length - 1)
        if not compiled.constraints_covering(index)
    ]
    if not uncovered:
        return []
    steps = ", ".join(str(index) for index in uncovered)
    if context.run_ttl_seconds is None:
        return [
            Diagnostic(
                code="QA010",
                severity=Severity.WARNING,
                message=(
                    f"partial matches waiting after step(s) {steps} are covered "
                    f"by no 'within' constraint and no run TTL is configured — "
                    f"they linger until consumed, holding memory and matching "
                    f"arbitrarily late continuations"
                ),
                query=query_name,
                detail={"uncovered_steps": uncovered},
            )
        ]
    return [
        Diagnostic(
            code="QA011",
            severity=Severity.INFO,
            message=(
                f"step(s) {steps} are covered by no 'within' constraint; the "
                f"run TTL of {context.run_ttl_seconds:g}s governs partial "
                f"matches waiting there"
            ),
            query=query_name,
            detail={
                "uncovered_steps": uncovered,
                "run_ttl_seconds": context.run_ttl_seconds,
            },
        )
    ]


def _policy_diagnostics(query: Query, query_name: str) -> List[Diagnostic]:
    """QA020 / QA021: select/consume sanity."""
    findings: List[Diagnostic] = []
    root = query.pattern

    def visit(node: SequencePattern, is_root: bool) -> None:
        if not is_root and (node.select is not root.select or node.consume is not root.consume):
            findings.append(
                Diagnostic(
                    code="QA020",
                    severity=Severity.WARNING,
                    message=(
                        f"nested group declares 'select {node.select.value} "
                        f"consume {node.consume.value}' but only the outermost "
                        f"policies ('select {root.select.value} consume "
                        f"{root.consume.value}') take effect at runtime"
                    ),
                    query=query_name,
                )
            )
        for element in node.elements:
            if isinstance(element, SequencePattern):
                visit(element, False)

    visit(root, True)
    if root.select is SelectPolicy.ALL and root.consume is ConsumePolicy.NONE:
        findings.append(
            Diagnostic(
                code="QA021",
                severity=Severity.INFO,
                message=(
                    "'select all consume none' reports every overlapping match "
                    "and keeps all partial matches alive — expect a detection "
                    "volume quadratic in how long the matching pose is held"
                ),
                query=query_name,
            )
        )
    return findings


def _partition_diagnostics(
    compiled: CompiledPattern, query_name: str, context: AnalysisContext
) -> List[Diagnostic]:
    """QA030 / QA031: partition-field safety for multi-stream patterns."""
    streams = sorted(compiled.streams())
    if len(streams) < 2 or context.partition_field is None:
        return []
    key = context.partition_field
    carrying = []
    missing = []
    unknown = []
    for stream in streams:
        declared = context.stream_fields.get(stream)
        if declared is None:
            unknown.append(stream)
        elif key in declared:
            carrying.append(stream)
        else:
            missing.append(stream)
    if carrying and missing:
        return [
            Diagnostic(
                code="QA030",
                severity=Severity.ERROR,
                message=(
                    f"pattern spans streams with mismatched partition field "
                    f"'{key}': {', '.join(carrying)} carry it but "
                    f"{', '.join(missing)} do not — runs started by a "
                    f"partitioned tuple can never be advanced by tuples of the "
                    f"other streams; deploy with partition_field=None"
                ),
                query=query_name,
                detail={"carrying": carrying, "missing": missing},
            )
        ]
    if unknown:
        return [
            Diagnostic(
                code="QA031",
                severity=Severity.WARNING,
                message=(
                    f"pattern spans {len(streams)} streams under partition "
                    f"field '{key}' but the schema of "
                    f"{', '.join(unknown)} is undeclared — if the streams "
                    f"disagree on the field, cross-stream runs will never "
                    f"advance; declare schemas or deploy with "
                    f"partition_field=None"
                ),
                query=query_name,
                detail={"unknown": unknown},
            )
        ]
    return []


def analyze_query(
    query: Union[Query, str, Any],
    context: Optional[AnalysisContext] = None,
    name: Optional[str] = None,
) -> List[Diagnostic]:
    """Run every per-query rule; returns findings most severe first.

    ``query`` may be a :class:`~repro.cep.query.Query`, query text in the
    paper's dialect, or a builder chain with ``build()``.  ``context``
    supplies deployment facts (partition field, TTL, stream schemas);
    omitted, a default context (partitioned, no TTL, unknown schemas) is
    assumed.  ``name`` overrides the diagnostic anchor name.
    """
    from repro.cep.engine import coerce_query  # local import; engine imports us lazily

    query = coerce_query(query)
    context = context or AnalysisContext()
    query_name = name or query.registration_name
    compiled = compile_pattern(query.pattern)

    findings: List[Diagnostic] = []
    unsatisfiable: List[int] = []
    for step in compiled.steps:
        summary = summarize_predicate(step.predicate)
        if summary.status is Satisfiability.UNSATISFIABLE:
            unsatisfiable.append(step.index)
            empty_fields = sorted(
                field_name
                for field_name, constraint in summary.fields.items()
                if constraint.is_empty()
            )
            description = (
                f" (empty constraint on {', '.join(empty_fields)})" if empty_fields else ""
            )
            findings.append(
                Diagnostic(
                    code="QA001",
                    severity=Severity.ERROR,
                    message=(
                        f"step {step.index} predicate "
                        f"'{step.predicate.to_query()}' is unsatisfiable — no "
                        f"tuple can ever match it{description}"
                    ),
                    query=query_name,
                    step=step.index,
                    detail={"fields": empty_fields},
                )
            )
        else:
            if isinstance(step.predicate, Literal) and bool(step.predicate.value):
                findings.append(
                    Diagnostic(
                        code="QA004",
                        severity=Severity.INFO,
                        message=(
                            f"step {step.index} matches every tuple of stream "
                            f"'{step.stream}' — intended for catch-all steps, "
                            f"otherwise add a predicate"
                        ),
                        query=query_name,
                        step=step.index,
                    )
                )
            findings.extend(_atom_diagnostics(step.predicate, query_name, step.index))

    if unsatisfiable:
        dead = [step.index for step in compiled.steps if step.index not in unsatisfiable]
        if dead:
            findings.append(
                Diagnostic(
                    code="QA002",
                    severity=Severity.ERROR,
                    message=(
                        f"pattern can never complete: step(s) "
                        f"{', '.join(str(i) for i in unsatisfiable)} are "
                        f"unsatisfiable, leaving step(s) "
                        f"{', '.join(str(i) for i in dead)} dead — the query "
                        f"will never fire but still pays matching cost"
                    ),
                    query=query_name,
                    detail={"unsatisfiable_steps": unsatisfiable, "dead_steps": dead},
                )
            )
    else:
        findings.extend(_within_diagnostics(compiled, query_name, context))

    findings.extend(_policy_diagnostics(query, query_name))
    findings.extend(_partition_diagnostics(compiled, query_name, context))
    return list(sort_diagnostics(findings))
