"""Interval algebra for per-field predicate constraints.

The analyzer lowers atomic comparisons over a single tuple field — the
shape the query generator emits (``abs(rhand_x - 400) < 50``) — into sets
of disjoint real intervals.  Conjunction becomes intersection, disjunction
becomes union, negation becomes complement, and satisfiability of the
dominant generated query shapes becomes *decidable*: an empty intersection
is a query that can never fire.

Bounds are closed or open; infinities are encoded as ``math.inf`` with the
corresponding bound always open.  :class:`IntervalSet` is a normalised
(sorted, disjoint, merged) immutable sequence of :class:`Interval`, so
structural equality is semantic equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = ["Interval", "IntervalSet"]


@dataclass(frozen=True)
class Interval:
    """One contiguous range of reals with open/closed endpoints."""

    low: float
    high: float
    low_open: bool = False
    high_open: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds must not be NaN")
        if math.isinf(self.low) and not self.low_open and self.low < 0:
            object.__setattr__(self, "low_open", True)
        if math.isinf(self.high) and not self.high_open and self.high > 0:
            object.__setattr__(self, "high_open", True)

    def is_empty(self) -> bool:
        if self.low > self.high:
            return True
        if self.low == self.high:
            return self.low_open or self.high_open
        return False

    def contains_value(self, value: float) -> bool:
        if value < self.low or (value == self.low and self.low_open):
            return False
        if value > self.high or (value == self.high and self.high_open):
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        if self.low > other.low or (self.low == other.low and self.low_open):
            low, low_open = self.low, self.low_open
        else:
            low, low_open = other.low, other.low_open
        if self.high < other.high or (self.high == other.high and self.high_open):
            high, high_open = self.high, self.high_open
        else:
            high, high_open = other.high, other.high_open
        return Interval(low, high, low_open, high_open)

    def _touches(self, other: "Interval") -> bool:
        """Whether the union of ``self`` and ``other`` is contiguous."""
        if self.low > other.low or (self.low == other.low and self.low_open and not other.low_open):
            return other._touches(self)
        if other.low < self.high:
            return True
        if other.low == self.high:
            return not (self.high_open and other.low_open)
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (only sound when touching)."""
        if other.low < self.low or (other.low == self.low and other.low_open < self.low_open):
            low, low_open = other.low, other.low_open
        else:
            low, low_open = self.low, self.low_open
        if other.high > self.high or (other.high == self.high and other.high_open < self.high_open):
            high, high_open = other.high, other.high_open
        else:
            high, high_open = self.high, self.high_open
        return Interval(low, high, low_open, high_open)

    def describe(self) -> str:
        left = "(" if self.low_open else "["
        right = ")" if self.high_open else "]"
        low = "-inf" if math.isinf(self.low) else f"{self.low:g}"
        high = "inf" if math.isinf(self.high) else f"{self.high:g}"
        return f"{left}{low}, {high}{right}"

    @staticmethod
    def full() -> "Interval":
        return Interval(-math.inf, math.inf, True, True)

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def at_most(bound: float, open_: bool = False) -> "Interval":
        return Interval(-math.inf, bound, True, open_)

    @staticmethod
    def at_least(bound: float, open_: bool = False) -> "Interval":
        return Interval(bound, math.inf, open_, True)


class IntervalSet:
    """An immutable, normalised union of disjoint :class:`Interval` objects."""

    __slots__ = ("intervals",)

    intervals: Tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        object.__setattr__(self, "intervals", _normalise(intervals))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalSet is immutable")

    # -- predicates --------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.intervals

    def is_full(self) -> bool:
        return (
            len(self.intervals) == 1
            and math.isinf(self.intervals[0].low)
            and self.intervals[0].low < 0
            and math.isinf(self.intervals[0].high)
            and self.intervals[0].high > 0
        )

    def contains_value(self, value: float) -> bool:
        return any(interval.contains_value(value) for interval in self.intervals)

    def covers(self, other: "IntervalSet") -> bool:
        """Whether every point of ``other`` lies in ``self``."""
        return other.intersect(self) == other

    # -- algebra -----------------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces: List[Interval] = []
        for mine in self.intervals:
            for theirs in other.intervals:
                piece = mine.intersect(theirs)
                if not piece.is_empty():
                    pieces.append(piece)
        return IntervalSet(pieces)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def affine(self, scale: float, offset: float) -> "IntervalSet":
        """The image of the set under ``x -> scale * x + offset``.

        Used to map a constraint on a linear term ``a*field + b`` back to
        the field itself (``scale = 1/a``, ``offset = -b/a``).
        """
        if scale == 0:
            raise ValueError("affine scale must be non-zero")
        pieces: List[Interval] = []
        for interval in self.intervals:
            low = interval.low * scale + offset
            high = interval.high * scale + offset
            if scale > 0:
                pieces.append(Interval(low, high, interval.low_open, interval.high_open))
            else:
                pieces.append(Interval(high, low, interval.high_open, interval.low_open))
        return IntervalSet(pieces)

    def complement(self) -> "IntervalSet":
        result = IntervalSet.full()
        for interval in self.intervals:
            gaps: List[Interval] = []
            if not (math.isinf(interval.low) and interval.low < 0):
                gaps.append(Interval(-math.inf, interval.low, True, not interval.low_open))
            if not (math.isinf(interval.high) and interval.high > 0):
                gaps.append(Interval(interval.high, math.inf, not interval.high_open, True))
            result = result.intersect(IntervalSet(gaps))
        return result

    # -- rendering / identity -----------------------------------------------------

    def describe(self) -> str:
        if self.is_empty():
            return "∅"
        return " ∪ ".join(interval.describe() for interval in self.intervals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({self.describe()})"

    # -- constructors ---------------------------------------------------------------

    @staticmethod
    def empty() -> "IntervalSet":
        return IntervalSet(())

    @staticmethod
    def full() -> "IntervalSet":
        return IntervalSet((Interval.full(),))

    @staticmethod
    def of(interval: Interval) -> "IntervalSet":
        return IntervalSet((interval,))

    @staticmethod
    def from_comparison(operator: str, bound: float) -> Optional["IntervalSet"]:
        """The solution set of ``x <operator> bound`` (``None`` if unknown)."""
        if operator == "<":
            return IntervalSet.of(Interval.at_most(bound, open_=True))
        if operator == "<=":
            return IntervalSet.of(Interval.at_most(bound))
        if operator == ">":
            return IntervalSet.of(Interval.at_least(bound, open_=True))
        if operator == ">=":
            return IntervalSet.of(Interval.at_least(bound))
        if operator == "==":
            return IntervalSet.of(Interval.point(bound))
        if operator == "!=":
            return IntervalSet.of(Interval.point(bound)).complement()
        return None


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Drop empties, sort, and merge touching intervals."""
    kept: List[Interval] = sorted(
        (interval for interval in intervals if not interval.is_empty()),
        key=lambda interval: (interval.low, interval.low_open),
    )
    merged: List[Interval] = []
    for interval in kept:
        if merged and merged[-1]._touches(interval):
            merged[-1] = merged[-1].hull(interval)
        else:
            merged.append(interval)
    return tuple(merged)
