"""DBSCAN — the density-based clustering baseline the paper builds on.

The paper describes its distance-based sampling as "comparable to
density-based clustering [2]" (Ester et al., KDD 1996).  To let the
benchmarks compare both, this module implements classic DBSCAN from scratch
over the same flat frame dictionaries the sampler consumes.

The comparison in benchmark C2/F4 makes the paper's design choice visible:
DBSCAN groups *all* spatially close measurements regardless of when they
were taken, so a gesture that passes through the same region twice (e.g. a
circle's start and end) collapses into one cluster and the *ordering* of
poses — which the CEP sequence operator needs — is lost.  The paper's
sequential, single-pass variant preserves order by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.distance import DistanceMetric, EuclideanDistance

#: Label used for points not assigned to any cluster.
NOISE = -1


@dataclass(frozen=True)
class DBSCANConfig:
    """DBSCAN parameters.

    Attributes
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a point
        to be a core point.
    """

    eps: float
    min_samples: int = 3

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


@dataclass
class ClusterSummary:
    """Centroid and size of one DBSCAN cluster."""

    label: int
    center: Dict[str, float]
    size: int
    first_index: int
    last_index: int


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Parameters
    ----------
    config:
        ``eps`` / ``min_samples``.
    fields:
        Frame fields to cluster over.
    metric:
        Distance metric; Euclidean over ``fields`` by default.
    """

    def __init__(
        self,
        config: DBSCANConfig,
        fields: Sequence[str],
        metric: Optional[DistanceMetric] = None,
    ) -> None:
        if not fields:
            raise ValueError("DBSCAN needs at least one field")
        self.config = config
        self.fields = tuple(fields)
        self.metric = metric or EuclideanDistance(self.fields)

    # -- clustering -----------------------------------------------------------------

    def fit(self, frames: Sequence[Mapping[str, float]]) -> List[int]:
        """Cluster ``frames``; return one label per frame (``-1`` = noise)."""
        count = len(frames)
        labels = [None] * count  # type: List[Optional[int]]
        neighbourhoods = self._neighbourhoods(frames)
        cluster_id = 0
        for index in range(count):
            if labels[index] is not None:
                continue
            neighbours = neighbourhoods[index]
            if len(neighbours) < self.config.min_samples:
                labels[index] = NOISE
                continue
            labels[index] = cluster_id
            seeds = [n for n in neighbours if n != index]
            position = 0
            while position < len(seeds):
                neighbour = seeds[position]
                position += 1
                if labels[neighbour] == NOISE:
                    labels[neighbour] = cluster_id
                if labels[neighbour] is not None:
                    continue
                labels[neighbour] = cluster_id
                next_neighbours = neighbourhoods[neighbour]
                if len(next_neighbours) >= self.config.min_samples:
                    seeds.extend(n for n in next_neighbours if n not in seeds)
            cluster_id += 1
        return [NOISE if label is None else label for label in labels]

    def _neighbourhoods(
        self, frames: Sequence[Mapping[str, float]]
    ) -> List[List[int]]:
        """Precompute eps-neighbourhood index lists (O(n²), fine at 30 Hz scale)."""
        count = len(frames)
        matrix = np.zeros((count, len(self.fields)))
        for row, frame in enumerate(frames):
            for column, name in enumerate(self.fields):
                matrix[row, column] = float(frame.get(name, 0.0))
        neighbourhoods: List[List[int]] = []
        for index in range(count):
            if isinstance(self.metric, EuclideanDistance):
                distances = np.linalg.norm(matrix - matrix[index], axis=1)
                neighbours = np.nonzero(distances <= self.config.eps)[0].tolist()
            else:
                neighbours = [
                    other
                    for other in range(count)
                    if self.metric.distance(frames[index], frames[other]) <= self.config.eps
                ]
            neighbourhoods.append(neighbours)
        return neighbourhoods

    # -- summaries -------------------------------------------------------------------

    def summarise(
        self, frames: Sequence[Mapping[str, float]], labels: Sequence[int]
    ) -> List[ClusterSummary]:
        """Return centroids of all clusters (noise excluded), by label."""
        clusters: Dict[int, List[int]] = {}
        for index, label in enumerate(labels):
            if label == NOISE:
                continue
            clusters.setdefault(label, []).append(index)
        summaries: List[ClusterSummary] = []
        for label in sorted(clusters):
            indices = clusters[label]
            center = {
                name: float(
                    np.mean([float(frames[i].get(name, 0.0)) for i in indices])
                )
                for name in self.fields
            }
            summaries.append(
                ClusterSummary(
                    label=label,
                    center=center,
                    size=len(indices),
                    first_index=min(indices),
                    last_index=max(indices),
                )
            )
        return summaries

    def cluster_count(self, labels: Sequence[int]) -> int:
        return len({label for label in labels if label != NOISE})

    def noise_count(self, labels: Sequence[int]) -> int:
        return sum(1 for label in labels if label == NOISE)
