"""Pattern optimisation (paper Sec. 3.3.3).

The paper's optional post-processing step optimises mined patterns "e.g.,
by merging windows to decrease the detection effort or by eliminating
certain coordinates that are not relevant for the recorded gesture".  Both
transformations are implemented here:

* **window merging** — consecutive poses whose windows essentially coincide
  (the joint barely moved between them) are collapsed into a single pose;
  fewer NFA steps mean fewer predicate evaluations per tuple,
* **coordinate elimination** — a coordinate whose window centres barely
  change across the whole gesture does not help ordering the poses; it can
  be dropped from all but the first pose (keeping one anchor preserves
  selectivity against movements elsewhere in space) or dropped entirely.

The optimiser never invents new constraints; it only removes redundancy, so
recall cannot decrease (the windows only get easier to satisfy).  The
precision impact of coordinate elimination is measured by benchmark C4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.description import GestureDescription
from repro.core.windows import PoseWindow, Window


@dataclass(frozen=True)
class OptimizerConfig:
    """Configuration of the pattern optimiser.

    Attributes
    ----------
    merge_windows:
        Enable collapsing of consecutive, nearly identical pose windows.
    merge_overlap_ratio:
        Two consecutive windows are merged when their intersection covers at
        least this fraction of the smaller window's volume.
    eliminate_coordinates:
        Enable dropping coordinates that do not vary across the gesture.
    elimination_mode:
        ``"keep_first"`` keeps the coordinate in the first pose only
        (anchored start pose, fewer predicates later); ``"drop"`` removes it
        everywhere.
    min_center_range_mm:
        A coordinate is "irrelevant" when the spread of its window centres
        across all poses is below this value.
    min_remaining_fields:
        Never reduce a window below this many constrained coordinates.
    """

    merge_windows: bool = True
    merge_overlap_ratio: float = 0.6
    eliminate_coordinates: bool = True
    elimination_mode: str = "keep_first"
    min_center_range_mm: float = 120.0
    min_remaining_fields: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.merge_overlap_ratio <= 1.0:
            raise ValueError("merge_overlap_ratio must be in (0, 1]")
        if self.elimination_mode not in ("keep_first", "drop"):
            raise ValueError("elimination_mode must be 'keep_first' or 'drop'")
        if self.min_center_range_mm < 0:
            raise ValueError("min_center_range_mm must be non-negative")
        if self.min_remaining_fields < 1:
            raise ValueError("min_remaining_fields must be at least 1")


@dataclass
class OptimizationReport:
    """What the optimiser did and what it saved."""

    poses_before: int
    predicates_before: int
    poses_after: int = 0
    predicates_after: int = 0
    merged_pose_pairs: List[Tuple[int, int]] = field(default_factory=list)
    eliminated_fields: List[str] = field(default_factory=list)

    @property
    def predicates_saved(self) -> int:
        return self.predicates_before - self.predicates_after

    @property
    def poses_saved(self) -> int:
        return self.poses_before - self.poses_after

    def summary(self) -> str:
        return (
            f"poses {self.poses_before} → {self.poses_after}, "
            f"predicates {self.predicates_before} → {self.predicates_after} "
            f"(merged {len(self.merged_pose_pairs)} pose pair(s), "
            f"eliminated {len(self.eliminated_fields)} coordinate(s))"
        )


class PatternOptimizer:
    """Simplifies gesture descriptions to reduce detection effort."""

    def __init__(self, config: Optional[OptimizerConfig] = None) -> None:
        self.config = config or OptimizerConfig()

    def optimize(
        self, description: GestureDescription
    ) -> Tuple[GestureDescription, OptimizationReport]:
        """Return an optimised copy of ``description`` plus a report."""
        report = OptimizationReport(
            poses_before=description.pose_count,
            predicates_before=description.predicate_count(),
        )
        poses = [
            PoseWindow(
                sequence_index=pose.sequence_index,
                window=Window(center=dict(pose.window.center), width=dict(pose.window.width)),
                support=pose.support,
            )
            for pose in sorted(description.poses, key=lambda p: p.sequence_index)
        ]
        if self.config.merge_windows:
            poses = self._merge_consecutive(poses, report)
        if self.config.eliminate_coordinates:
            poses = self._eliminate_coordinates(poses, report)
        poses = [
            PoseWindow(sequence_index=index, window=pose.window, support=pose.support)
            for index, pose in enumerate(poses)
        ]
        optimised = GestureDescription(
            name=description.name,
            poses=poses,
            joints=list(description.joints),
            stream=description.stream,
            sample_count=description.sample_count,
            mean_duration_s=description.mean_duration_s,
            max_duration_s=description.max_duration_s,
            metadata={**description.metadata, "optimized": True},
        )
        report.poses_after = optimised.pose_count
        report.predicates_after = optimised.predicate_count()
        return optimised, report

    # -- window merging ---------------------------------------------------------------

    def _merge_consecutive(
        self, poses: List[PoseWindow], report: OptimizationReport
    ) -> List[PoseWindow]:
        if len(poses) < 2:
            return poses
        merged: List[PoseWindow] = [poses[0]]
        for pose in poses[1:]:
            previous = merged[-1]
            smaller_first = previous.window.volume() <= pose.window.volume()
            ratio = (
                previous.window.intersection_volume_ratio(pose.window)
                if smaller_first
                else pose.window.intersection_volume_ratio(previous.window)
            )
            if ratio >= self.config.merge_overlap_ratio:
                merged[-1] = PoseWindow(
                    sequence_index=previous.sequence_index,
                    window=previous.window.merged_with(pose.window),
                    support=max(previous.support, pose.support),
                )
                report.merged_pose_pairs.append(
                    (previous.sequence_index, pose.sequence_index)
                )
            else:
                merged.append(pose)
        return merged

    # -- coordinate elimination ----------------------------------------------------------

    def _eliminate_coordinates(
        self, poses: List[PoseWindow], report: OptimizationReport
    ) -> List[PoseWindow]:
        if not poses:
            return poses
        fields = sorted({name for pose in poses for name in pose.window.center})
        irrelevant: List[str] = []
        for name in fields:
            centers = [
                pose.window.center[name] for pose in poses if name in pose.window.center
            ]
            if len(centers) < len(poses):
                continue
            if max(centers) - min(centers) < self.config.min_center_range_mm:
                irrelevant.append(name)

        if not irrelevant:
            return poses

        result: List[PoseWindow] = []
        for position, pose in enumerate(poses):
            keep_anchor = position == 0 and self.config.elimination_mode == "keep_first"
            removable = [] if keep_anchor else [
                name
                for name in irrelevant
                if name in pose.window.center
                and len(pose.window.center) - 1 >= self.config.min_remaining_fields
            ]
            window = pose.window
            for name in removable:
                if len(window.center) <= self.config.min_remaining_fields:
                    break
                window = window.without_fields([name])
                if name not in report.eliminated_fields:
                    report.eliminated_fields.append(name)
            result.append(
                PoseWindow(
                    sequence_index=pose.sequence_index,
                    window=window,
                    support=pose.support,
                )
            )
        return result
