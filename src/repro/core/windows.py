"""Multi-dimensional windows ("detection conditions").

The paper expresses each pose of a gesture as a multi-dimensional rectangle
— "a center point determined by all (x, y, z) joint coordinates and a width
in each dimension representing possible deviations" (Sec. 3.3) — because
rectangles translate directly into range predicates, are easy to visualise,
and are easy to tune by hand.

:class:`Window` is that rectangle over an arbitrary set of fields;
:class:`PoseWindow` adds the sequence number that orders poses within a
gesture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


@dataclass
class Window:
    """An axis-aligned rectangle over named fields.

    Attributes
    ----------
    center:
        Field → centre coordinate.
    width:
        Field → half-width... no: *full tolerance* in that dimension, i.e.
        a point is inside when ``abs(point[f] - center[f]) < width[f]``,
        exactly matching the generated predicate
        ``abs(center - coord) < width`` of Sec. 3.3.4.
    """

    center: Dict[str, float]
    width: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.center:
            raise ValueError("a window needs at least one dimension")
        if set(self.center) != set(self.width):
            raise ValueError("center and width must cover the same fields")
        for name, value in self.width.items():
            if value <= 0:
                raise ValueError(f"width of dimension '{name}' must be positive")

    # -- basic accessors --------------------------------------------------------------

    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(sorted(self.center))

    def lower(self, field_name: str) -> float:
        return self.center[field_name] - self.width[field_name]

    def upper(self, field_name: str) -> float:
        return self.center[field_name] + self.width[field_name]

    def bounds(self, field_name: str) -> Tuple[float, float]:
        return self.lower(field_name), self.upper(field_name)

    # -- geometry -----------------------------------------------------------------------

    def contains(self, point: Mapping[str, float]) -> bool:
        """True when ``point`` satisfies every range predicate of the window."""
        for name in self.center:
            if name not in point:
                return False
            if abs(float(point[name]) - self.center[name]) >= self.width[name]:
                return False
        return True

    def intersects(self, other: "Window") -> bool:
        """True when the windows overlap in *every* shared dimension.

        Windows over disjoint field sets do not intersect (they constrain
        different joints, so both predicates can hold simultaneously — that
        situation is reported separately by the validator).
        """
        shared = set(self.center) & set(other.center)
        if not shared:
            return False
        return all(
            self.lower(name) < other.upper(name) and other.lower(name) < self.upper(name)
            for name in shared
        )

    def intersection_volume_ratio(self, other: "Window") -> float:
        """Overlap volume divided by this window's volume (shared dims only)."""
        shared = sorted(set(self.center) & set(other.center))
        if not shared:
            return 0.0
        ratio = 1.0
        for name in shared:
            low = max(self.lower(name), other.lower(name))
            high = min(self.upper(name), other.upper(name))
            if high <= low:
                return 0.0
            ratio *= (high - low) / (self.upper(name) - self.lower(name))
        return ratio

    def volume(self) -> float:
        """Product of the dimension extents (2 × width per dimension)."""
        result = 1.0
        for name in self.center:
            result *= 2.0 * self.width[name]
        return result

    # -- construction / transformation ---------------------------------------------------

    @classmethod
    def from_points(
        cls,
        points: Sequence[Mapping[str, float]],
        fields: Sequence[str],
        min_width: float = 1.0,
    ) -> "Window":
        """Minimal bounding rectangle (MBR) around ``points`` over ``fields``.

        The MBR's centre is the midpoint of the per-dimension extremes and
        its width the half-extent, floored at ``min_width`` so a window
        derived from identical points still has positive volume.
        """
        if not points:
            raise ValueError("cannot build a window from zero points")
        if not fields:
            raise ValueError("cannot build a window without fields")
        center: Dict[str, float] = {}
        width: Dict[str, float] = {}
        for name in fields:
            values = [float(point[name]) for point in points if name in point]
            if not values:
                raise ValueError(f"no point carries field '{name}'")
            low, high = min(values), max(values)
            center[name] = (low + high) / 2.0
            width[name] = max((high - low) / 2.0, min_width)
        return cls(center=center, width=width)

    def expanded(self, padding: Mapping[str, float]) -> "Window":
        """Return a copy widened by ``padding`` per dimension (absolute)."""
        new_width = dict(self.width)
        for name, extra in padding.items():
            if name in new_width:
                new_width[name] = new_width[name] + max(0.0, extra)
        return Window(center=dict(self.center), width=new_width)

    def scaled(self, factor: float) -> "Window":
        """Return a copy with every width multiplied by ``factor``.

        This is the paper's generalisation step — and scaling "too much
        introduces the overlapping problem" the validator checks for.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Window(
            center=dict(self.center),
            width={name: value * factor for name, value in self.width.items()},
        )

    def merged_with(self, other: "Window", min_width: float = 1.0) -> "Window":
        """MBR of this window and ``other`` (union of their extents)."""
        fields = sorted(set(self.center) | set(other.center))
        center: Dict[str, float] = {}
        width: Dict[str, float] = {}
        for name in fields:
            bounds: List[float] = []
            for window in (self, other):
                if name in window.center:
                    bounds.extend(window.bounds(name))
            low, high = min(bounds), max(bounds)
            center[name] = (low + high) / 2.0
            width[name] = max((high - low) / 2.0, min_width)
        return Window(center=center, width=width)

    def without_fields(self, names: Iterable[str]) -> "Window":
        """Return a copy with the given dimensions removed."""
        removed = set(names)
        center = {k: v for k, v in self.center.items() if k not in removed}
        width = {k: v for k, v in self.width.items() if k not in removed}
        if not center:
            raise ValueError("removing these fields would leave an empty window")
        return Window(center=center, width=width)

    def distance_from(self, point: Mapping[str, float]) -> float:
        """How far outside the window ``point`` lies, in multiples of width.

        0 means inside; 1 means one full window-width outside in the worst
        dimension.  Used for the "sample deviates too much" warning.
        """
        worst = 0.0
        for name in self.center:
            if name not in point:
                continue
            excess = abs(float(point[name]) - self.center[name]) - self.width[name]
            if excess > 0:
                worst = max(worst, excess / self.width[name])
        return worst

    # -- serialisation ----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {"center": dict(self.center), "width": dict(self.width)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, float]]) -> "Window":
        return cls(center=dict(data["center"]), width=dict(data["width"]))

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{name}={self.center[name]:.0f}±{self.width[name]:.0f}"
            for name in sorted(self.center)
        )
        return f"Window({dims})"


@dataclass
class PoseWindow:
    """A :class:`Window` with its position in the gesture's pose sequence."""

    sequence_index: int
    window: Window
    support: int = 1  # how many samples contributed to this pose

    def __post_init__(self) -> None:
        if self.sequence_index < 0:
            raise ValueError("sequence index must be non-negative")
        if self.support < 1:
            raise ValueError("support must be at least 1")

    def contains(self, point: Mapping[str, float]) -> bool:
        return self.window.contains(point)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence_index": self.sequence_index,
            "support": self.support,
            "window": self.window.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PoseWindow":
        return cls(
            sequence_index=int(data["sequence_index"]),  # type: ignore[arg-type]
            support=int(data.get("support", 1)),  # type: ignore[arg-type]
            window=Window.from_dict(data["window"]),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:
        return f"PoseWindow(#{self.sequence_index}, {self.window!r}, support={self.support})"
