"""Window merging across samples (paper Sec. 3.3.2).

Repetitions of the same gesture never produce identical paths, so the
characteristic points mined from each sample must be merged into one
description "general enough to detect all of them".  The paper does this by
computing minimal bounding rectangles (MBRs) around all cluster centroids
with the same sequence number, incrementally as samples arrive, and warns
"where a new sample differs too much from previously recorded ones".

Samples may also yield *different numbers* of characteristic points (a
slightly faster performance produces fewer clusters); before MBRs can be
computed per sequence position the point sequences are aligned by linear
resampling onto a common length — the pose count of the first sample, which
acts as the reference.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.description import GestureDescription
from repro.core.sampling import SampledPath
from repro.core.windows import PoseWindow, Window
from repro.errors import IncompatibleSampleError, SampleDeviationWarning


@dataclass
class MergeConfig:
    """Configuration of the incremental window merger.

    Attributes
    ----------
    min_width_mm:
        Lower bound on window widths.  Even if all samples agree perfectly,
        sensor noise requires a minimum tolerance (the paper's example
        queries use 50 mm windows).
    padding_mm:
        Extra width added to every dimension after the MBR is computed,
        absorbing sensor noise beyond what the samples themselves showed.
    scale_factor:
        Multiplier applied to all window widths as the generalisation step
        ("another scaling step can be performed by increasing the
        rectangles' width") — the knob whose excess causes the overlapping
        problem studied in the validation benchmarks.
    deviation_warning_factor:
        A new sample whose characteristic points lie further outside the
        current windows than this many window-widths triggers a
        :class:`~repro.errors.SampleDeviationWarning`.
    emit_warnings:
        Whether deviation warnings are raised through the ``warnings``
        module (they are always recorded in the :class:`MergeResult`).
    """

    min_width_mm: float = 50.0
    padding_mm: float = 10.0
    scale_factor: float = 1.0
    deviation_warning_factor: float = 1.5
    emit_warnings: bool = True

    def __post_init__(self) -> None:
        if self.min_width_mm <= 0:
            raise ValueError("min_width_mm must be positive")
        if self.padding_mm < 0:
            raise ValueError("padding_mm must be non-negative")
        if self.scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        if self.deviation_warning_factor <= 0:
            raise ValueError("deviation_warning_factor must be positive")


@dataclass
class MergeResult:
    """Outcome of adding one sample to the merged description."""

    sample_index: int
    pose_count: int
    deviation: float
    warnings: List[str] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        """Merging never rejects a sample; warnings signal review is needed."""
        return True


class WindowMerger:
    """Incrementally merges sampled gesture paths into pose windows."""

    def __init__(self, name: str, config: Optional[MergeConfig] = None) -> None:
        if not name:
            raise ValueError("the merger needs a gesture name")
        self.name = name
        self.config = config or MergeConfig()
        self._samples: List[SampledPath] = []
        self._aligned_centers: List[List[Dict[str, float]]] = []
        self._fields: Optional[Tuple[str, ...]] = None
        self._reference_length: Optional[int] = None

    # -- properties ----------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def reference_length(self) -> Optional[int]:
        """Pose count of the reference (first) sample."""
        return self._reference_length

    # -- merging --------------------------------------------------------------------

    def add_sample(self, path: SampledPath) -> MergeResult:
        """Merge one sampled path into the gesture description.

        Raises
        ------
        IncompatibleSampleError
            If the sample constrains different fields than earlier samples
            or contains no characteristic points.
        """
        if not path.points:
            raise IncompatibleSampleError("sample produced no characteristic points")
        if self._fields is None:
            self._fields = path.fields
            self._reference_length = path.pose_count
        elif set(path.fields) != set(self._fields):
            raise IncompatibleSampleError(
                f"sample tracks fields {sorted(path.fields)} but the gesture "
                f"'{self.name}' was started with {sorted(self._fields)}"
            )

        assert self._reference_length is not None
        aligned = align_centers(path.centers(), self._reference_length)

        result = MergeResult(
            sample_index=len(self._samples),
            pose_count=self._reference_length,
            deviation=0.0,
        )
        if self._samples:
            deviation = self._measure_deviation(aligned)
            result.deviation = deviation
            if deviation > self.config.deviation_warning_factor:
                message = (
                    f"sample {result.sample_index} of gesture '{self.name}' deviates "
                    f"{deviation:.2f} window-widths from the learned windows; "
                    "consider re-recording it"
                )
                result.warnings.append(message)
                if self.config.emit_warnings:
                    warnings.warn(message, SampleDeviationWarning, stacklevel=2)

        self._samples.append(path)
        self._aligned_centers.append(aligned)
        return result

    def _measure_deviation(self, aligned: Sequence[Mapping[str, float]]) -> float:
        """Worst-case distance of the new sample's points from current windows."""
        current = self._build_windows()
        worst = 0.0
        for pose, point in zip(current, aligned):
            worst = max(worst, pose.window.distance_from(point))
        return worst

    # -- description construction -----------------------------------------------------

    def _build_windows(self) -> List[PoseWindow]:
        assert self._fields is not None and self._reference_length is not None
        poses: List[PoseWindow] = []
        for index in range(self._reference_length):
            points = [centers[index] for centers in self._aligned_centers]
            spreads = self._spreads_for(index)
            window = Window.from_points(
                points, fields=self._fields, min_width=self.config.min_width_mm
            )
            window = window.expanded(
                {
                    name: spreads.get(name, 0.0) + self.config.padding_mm
                    for name in self._fields
                }
            )
            if self.config.scale_factor != 1.0:
                window = window.scaled(self.config.scale_factor)
            poses.append(
                PoseWindow(
                    sequence_index=index,
                    window=window,
                    support=len(self._aligned_centers),
                )
            )
        return poses

    def _spreads_for(self, index: int) -> Dict[str, float]:
        """Largest in-cluster spread observed at this sequence position.

        Aligned positions may fall between two characteristic points of a
        sample; the nearest original point's spread is used.
        """
        assert self._fields is not None and self._reference_length is not None
        spreads: Dict[str, float] = {name: 0.0 for name in self._fields}
        for path in self._samples:
            source_index = _nearest_source_index(
                index, self._reference_length, path.pose_count
            )
            point = path.points[source_index]
            for name in self._fields:
                spreads[name] = max(spreads[name], point.spread.get(name, 0.0))
        return spreads

    def description(self) -> GestureDescription:
        """Return the merged gesture description (current snapshot)."""
        if not self._samples:
            raise IncompatibleSampleError(
                f"gesture '{self.name}' has no samples to describe"
            )
        durations = [path.duration_s for path in self._samples if path.duration_s > 0]
        mean_duration = sum(durations) / len(durations) if durations else 0.0
        max_duration = max(durations) if durations else 0.0
        joints = sorted({name.rsplit("_", 1)[0] for name in (self._fields or ())})
        return GestureDescription(
            name=self.name,
            poses=self._build_windows(),
            joints=joints,
            sample_count=len(self._samples),
            mean_duration_s=mean_duration,
            max_duration_s=max_duration,
            metadata={
                "min_width_mm": self.config.min_width_mm,
                "padding_mm": self.config.padding_mm,
                "scale_factor": self.config.scale_factor,
            },
        )

    def reset(self) -> None:
        """Forget all samples (start the gesture over)."""
        self._samples.clear()
        self._aligned_centers.clear()
        self._fields = None
        self._reference_length = None


# ---------------------------------------------------------------------------
# Alignment helpers
# ---------------------------------------------------------------------------


def align_centers(
    centers: Sequence[Mapping[str, float]],
    target_length: int,
) -> List[Dict[str, float]]:
    """Resample a centroid sequence onto ``target_length`` positions.

    Linear interpolation along the normalised sequence position maps a
    sample with more or fewer characteristic points onto the reference
    sample's pose count, so MBRs can be computed per position.
    """
    if target_length < 1:
        raise ValueError("target length must be at least 1")
    if not centers:
        raise ValueError("cannot align an empty centroid sequence")
    source_length = len(centers)
    if source_length == target_length:
        return [dict(center) for center in centers]
    if source_length == 1:
        return [dict(centers[0]) for _ in range(target_length)]

    aligned: List[Dict[str, float]] = []
    for index in range(target_length):
        if target_length == 1:
            position = 0.0
        else:
            position = index * (source_length - 1) / (target_length - 1)
        low = int(position)
        high = min(low + 1, source_length - 1)
        fraction = position - low
        point: Dict[str, float] = {}
        for name in centers[0]:
            low_value = float(centers[low][name])
            high_value = float(centers[high][name])
            point[name] = low_value + (high_value - low_value) * fraction
        aligned.append(point)
    return aligned


def _nearest_source_index(index: int, target_length: int, source_length: int) -> int:
    """Source index closest to aligned position ``index``."""
    if target_length <= 1 or source_length <= 1:
        return 0
    position = index * (source_length - 1) / (target_length - 1)
    return min(source_length - 1, int(round(position)))
