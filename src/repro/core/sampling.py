"""Distance-based sampling of gesture paths (paper Sec. 3.3.1).

The Kinect delivers 30 frames per second, so a two-second gesture is ~60
measurements.  Using each of them as a pose would both blow up the CEP
pattern and overfit the specific training performance.  The paper therefore
extracts only *characteristic points* with a technique "comparable to
density-based clustering":

* the first tuple becomes the initial cluster centroid and the reference
  for distance computations,
* subsequent tuples are assigned to the current cluster,
* as soon as a tuple's distance from the reference exceeds ``max_dist``, a
  new cluster is started with that tuple as the new reference,
* the distance threshold can be given absolutely or relative to the total
  deviation observed along the whole path ("at least x% of the total
  deviation observed").

The output is a :class:`SampledPath` — an ordered list of
:class:`CharacteristicPoint` objects, each recording its centroid, extent,
support and time span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.distance import DistanceMetric, EuclideanDistance
from repro.errors import EmptySampleError


@dataclass
class SamplingConfig:
    """Configuration of the distance-based sampler.

    Attributes
    ----------
    fields:
        Coordinate fields the distance is computed over (typically the
        coordinates of the gesture's moving joints).
    max_dist:
        Absolute distance threshold.  When ``None`` the threshold is derived
        from the path: ``relative_threshold × total path deviation``.
    relative_threshold:
        Fraction of the total observed deviation used when ``max_dist`` is
        not given.  The paper's "at least x% of the total deviation".
    metric:
        Distance metric; defaults to Euclidean distance over ``fields``.
    min_cluster_size:
        Clusters with fewer frames are dropped (isolated outliers).  The
        first and last cluster are always kept — they anchor the gesture's
        start and end pose.
    timestamp_field:
        Field carrying the frame time.
    """

    fields: Tuple[str, ...] = ()
    max_dist: Optional[float] = None
    relative_threshold: float = 0.12
    metric: Optional[DistanceMetric] = None
    min_cluster_size: int = 1
    timestamp_field: str = "ts"

    def __post_init__(self) -> None:
        if self.max_dist is not None and self.max_dist <= 0:
            raise ValueError("max_dist must be positive when given")
        if not 0.0 < self.relative_threshold <= 1.0:
            raise ValueError("relative_threshold must be in (0, 1]")
        if self.min_cluster_size < 1:
            raise ValueError("min_cluster_size must be at least 1")

    def resolve_metric(self) -> DistanceMetric:
        if self.metric is not None:
            return self.metric
        if not self.fields:
            raise ValueError("either a metric or a field list must be provided")
        return EuclideanDistance(self.fields)


@dataclass
class CharacteristicPoint:
    """One cluster of the sampled gesture path.

    Attributes
    ----------
    sequence_index:
        Position of the cluster along the gesture (0-based).
    center:
        Per-field mean of the frames assigned to the cluster.
    spread:
        Per-field half-extent (max deviation of cluster members from the
        centre); gives the merger a lower bound on window widths.
    count:
        Number of frames in the cluster.
    first_ts / last_ts:
        Time span covered by the cluster.
    """

    sequence_index: int
    center: Dict[str, float]
    spread: Dict[str, float]
    count: int
    first_ts: float
    last_ts: float

    def __repr__(self) -> str:
        coords = ", ".join(f"{k}={v:.0f}" for k, v in sorted(self.center.items()))
        return f"CharacteristicPoint(#{self.sequence_index}, {coords}, n={self.count})"


@dataclass
class SampledPath:
    """The result of sampling one recorded gesture sample."""

    points: List[CharacteristicPoint]
    fields: Tuple[str, ...]
    total_deviation: float
    threshold_used: float
    frame_count: int
    duration_s: float

    @property
    def pose_count(self) -> int:
        return len(self.points)

    def centers(self) -> List[Dict[str, float]]:
        """The centroid sequence (used for alignment and merging)."""
        return [dict(point.center) for point in self.points]

    def __repr__(self) -> str:
        return (
            f"SampledPath(poses={self.pose_count}, frames={self.frame_count}, "
            f"deviation={self.total_deviation:.0f}, threshold={self.threshold_used:.0f})"
        )


class DistanceBasedSampler:
    """Extracts characteristic points from one gesture sample."""

    def __init__(self, config: SamplingConfig) -> None:
        self.config = config
        self.metric = config.resolve_metric()

    # -- public API ----------------------------------------------------------------

    def total_deviation(self, frames: Sequence[Mapping[str, float]]) -> float:
        """Sum of successive distances along the path (its "total deviation")."""
        if len(frames) < 2:
            return 0.0
        return sum(
            self.metric.distance(frames[index - 1], frames[index])
            for index in range(1, len(frames))
        )

    def resolve_threshold(self, frames: Sequence[Mapping[str, float]]) -> float:
        """The distance threshold used for ``frames``.

        Either the configured absolute ``max_dist`` or the relative fraction
        of the total path deviation.
        """
        if self.config.max_dist is not None:
            return self.config.max_dist
        deviation = self.total_deviation(frames)
        if deviation <= 0:
            # A degenerate (stationary) sample: any positive threshold works.
            return 1.0
        return self.config.relative_threshold * deviation

    def sample(self, frames: Sequence[Mapping[str, float]]) -> SampledPath:
        """Run distance-based sampling over one recorded sample.

        Raises
        ------
        EmptySampleError
            If ``frames`` is empty.
        """
        if not frames:
            raise EmptySampleError("cannot sample an empty recording")
        threshold = self.resolve_threshold(frames)
        ts_field = self.config.timestamp_field

        clusters: List[List[Mapping[str, float]]] = []
        reference = frames[0]
        current: List[Mapping[str, float]] = [frames[0]]
        for frame in frames[1:]:
            if self.metric.distance(reference, frame) > threshold:
                clusters.append(current)
                reference = frame
                current = [frame]
            else:
                current.append(frame)
        clusters.append(current)

        clusters = self._drop_small_clusters(clusters)
        points = [
            self._summarise(index, cluster, ts_field)
            for index, cluster in enumerate(clusters)
        ]
        duration = 0.0
        if len(frames) > 1 and ts_field in frames[0] and ts_field in frames[-1]:
            duration = float(frames[-1][ts_field]) - float(frames[0][ts_field])
        return SampledPath(
            points=points,
            fields=tuple(self.metric.fields),
            total_deviation=self.total_deviation(frames),
            threshold_used=threshold,
            frame_count=len(frames),
            duration_s=duration,
        )

    # -- internals ------------------------------------------------------------------

    def _drop_small_clusters(
        self, clusters: List[List[Mapping[str, float]]]
    ) -> List[List[Mapping[str, float]]]:
        if self.config.min_cluster_size <= 1 or len(clusters) <= 2:
            return clusters
        kept: List[List[Mapping[str, float]]] = []
        last_index = len(clusters) - 1
        for index, cluster in enumerate(clusters):
            if index in (0, last_index) or len(cluster) >= self.config.min_cluster_size:
                kept.append(cluster)
        return kept

    def _summarise(
        self,
        index: int,
        cluster: Sequence[Mapping[str, float]],
        ts_field: str,
    ) -> CharacteristicPoint:
        center: Dict[str, float] = {}
        spread: Dict[str, float] = {}
        for name in self.metric.fields:
            values = [float(frame[name]) for frame in cluster if name in frame]
            if not values:
                continue
            mean = sum(values) / len(values)
            center[name] = mean
            spread[name] = max(abs(value - mean) for value in values)
        timestamps = [float(frame[ts_field]) for frame in cluster if ts_field in frame]
        first_ts = min(timestamps) if timestamps else 0.0
        last_ts = max(timestamps) if timestamps else 0.0
        return CharacteristicPoint(
            sequence_index=index,
            center=center,
            spread=spread,
            count=len(cluster),
            first_ts=first_ts,
            last_ts=last_ts,
        )
