"""The gesture learner: sampling + merging orchestrated per gesture.

:class:`GestureLearner` is the component labelled "Gesture Learner" in the
paper's Fig. 2.  For one gesture it

1. optionally transforms raw sensor frames into the user-independent
   ``kinect_t`` space (or accepts already-transformed frames),
2. determines which joints actually move during the gesture (so a one-hand
   swipe does not constrain the idle hand),
3. runs distance-based sampling on each sample separately,
4. merges the per-sample results incrementally into pose windows, warning
   when a new sample deviates too much,
5. exposes the merged :class:`~repro.core.description.GestureDescription`,
   from which :class:`~repro.core.querygen.QueryGenerator` produces the CEP
   query.

The paper notes that "usually, 3-5 samples are sufficient to achieve
acceptable results"; benchmark C1 measures exactly that curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.description import GestureDescription
from repro.core.distance import joint_fields
from repro.core.merging import MergeConfig, MergeResult, WindowMerger
from repro.core.sampling import DistanceBasedSampler, SampledPath, SamplingConfig
from repro.errors import EmptySampleError
from repro.kinect.skeleton import JOINTS
from repro.transform.pipeline import KinectTransformer

#: Joints never considered "moving": the torso is the origin of the
#: transformed space by construction, so it cannot characterise a gesture.
_EXCLUDED_JOINTS: Tuple[str, ...] = ("torso",)


@dataclass
class LearnerConfig:
    """Configuration of the gesture learner.

    Attributes
    ----------
    joints:
        Joints to constrain.  When empty, moving joints are detected
        automatically from the first sample.
    min_joint_path_mm:
        A joint whose spatial extent (diagonal of the bounding box of its
        positions in the transformed space) is below this value is
        considered stationary during auto-detection.  Extent, not
        accumulated path length, is used because sensor jitter accumulates
        into large path lengths even for joints that do not move.
    joint_path_fraction:
        A joint is considered moving when its extent is at least this
        fraction of the most-moving joint's extent (in addition to the
        absolute minimum above).
    sampling:
        Distance-based sampling configuration; its ``fields`` entry is
        filled in from the selected joints.
    merging:
        Window-merging configuration.
    transform_input:
        Whether ``add_sample`` receives raw camera frames that must first be
        transformed (the usual case) or frames already in ``kinect_t``
        space.
    stream:
        The stream name written into the description (and later the query).
    """

    joints: Tuple[str, ...] = ()
    min_joint_path_mm: float = 250.0
    joint_path_fraction: float = 0.35
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    merging: MergeConfig = field(default_factory=MergeConfig)
    transform_input: bool = True
    stream: str = "kinect_t"

    def __post_init__(self) -> None:
        unknown = [joint for joint in self.joints if joint not in JOINTS]
        if unknown:
            raise ValueError(f"unknown joints in learner config: {unknown}")
        if self.min_joint_path_mm < 0:
            raise ValueError("min_joint_path_mm must be non-negative")
        if not 0.0 < self.joint_path_fraction <= 1.0:
            raise ValueError("joint_path_fraction must be in (0, 1]")


def detect_moving_joints(
    frames: Sequence[Mapping[str, float]],
    min_path_mm: float = 250.0,
    fraction_of_max: float = 0.35,
    candidates: Sequence[str] = JOINTS,
) -> List[str]:
    """Return the joints that move significantly during ``frames``.

    A joint's movement is measured as its *spatial extent*: the diagonal of
    the bounding box its positions cover in the transformed coordinate
    space.  Extent is robust against sensor jitter — a stationary joint with
    5–10 mm of per-frame noise accumulates hundreds of millimetres of path
    length over a two-second recording, but its extent stays small.  Joints
    below both the absolute threshold and the given fraction of the most
    active joint are treated as stationary and excluded from the gesture
    description — this keeps a right-hand swipe from accidentally
    constraining the left hand.

    Tracking dropouts are tolerated: a joint is measured over exactly the
    frames where all three of its coordinates are present, so a joint that
    is occluded in the first frame is not dropped outright, and the per-axis
    spans are never computed over different frame subsets.
    """
    if not frames:
        return []
    extents: Dict[str, float] = {}
    for joint in candidates:
        if joint in _EXCLUDED_JOINTS:
            continue
        fields = joint_fields([joint])
        tracked = [
            frame for frame in frames if all(name in frame for name in fields)
        ]
        if not tracked:
            continue
        extent_sq = 0.0
        for name in fields:
            values = [float(frame[name]) for frame in tracked]
            span = max(values) - min(values)
            extent_sq += span * span
        extents[joint] = math.sqrt(extent_sq)
    if not extents:
        return []
    largest = max(extents.values())
    if largest <= 0:
        return []
    moving = [
        joint
        for joint, extent in extents.items()
        if extent >= min_path_mm and extent >= fraction_of_max * largest
    ]
    # Preserve the canonical joint order for deterministic descriptions.
    return [joint for joint in candidates if joint in moving]


class GestureLearner:
    """Learns one gesture from a few recorded samples."""

    def __init__(
        self,
        name: str,
        config: Optional[LearnerConfig] = None,
        transformer: Optional[KinectTransformer] = None,
    ) -> None:
        if not name:
            raise ValueError("the learner needs a gesture name")
        self.name = name
        self.config = config or LearnerConfig()
        self.transformer = transformer or KinectTransformer()
        self._merger = WindowMerger(name, self.config.merging)
        self._joints: Optional[List[str]] = (
            list(self.config.joints) if self.config.joints else None
        )
        self._sampler: Optional[DistanceBasedSampler] = None
        self._sample_results: List[MergeResult] = []

    # -- properties -------------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return self._merger.sample_count

    @property
    def joints(self) -> Optional[List[str]]:
        """Joints the gesture constrains (``None`` until the first sample)."""
        return list(self._joints) if self._joints is not None else None

    @property
    def results(self) -> List[MergeResult]:
        """Merge results of all added samples (including their warnings)."""
        return list(self._sample_results)

    # -- learning -----------------------------------------------------------------------

    def add_sample(self, frames: Sequence[Mapping[str, float]]) -> MergeResult:
        """Add one recorded sample (a list of sensor frames) to the gesture.

        Frames are transformed into the user-independent space unless the
        configuration says they already are.  The first sample fixes the
        gesture's joints (auto-detected if not configured) and its reference
        pose count; further samples refine the windows.
        """
        if not frames:
            raise EmptySampleError(f"empty sample for gesture '{self.name}'")
        transformed = self._transform(frames)
        if self._joints is None:
            detected = detect_moving_joints(
                transformed,
                min_path_mm=self.config.min_joint_path_mm,
                fraction_of_max=self.config.joint_path_fraction,
            )
            if not detected:
                raise EmptySampleError(
                    f"no moving joints detected in the first sample of "
                    f"'{self.name}'; was the user standing still?"
                )
            self._joints = detected
        sampler = self._resolve_sampler()
        path = sampler.sample(transformed)
        result = self._merger.add_sample(path)
        self._sample_results.append(result)
        return result

    def learn(
        self, samples: Sequence[Sequence[Mapping[str, float]]]
    ) -> GestureDescription:
        """Add all ``samples`` and return the merged description."""
        for sample in samples:
            self.add_sample(sample)
        return self.description()

    def description(self) -> GestureDescription:
        """The merged gesture description for the samples added so far."""
        description = self._merger.description()
        description.stream = self.config.stream
        description.metadata.setdefault("learner", {})
        description.metadata["learner"] = {
            "relative_threshold": self.config.sampling.relative_threshold,
            "max_dist": self.config.sampling.max_dist,
            "auto_joints": not bool(self.config.joints),
        }
        return description

    def sample_path(self, frames: Sequence[Mapping[str, float]]) -> SampledPath:
        """Run sampling only (no merging) — used by inspection tooling."""
        transformed = self._transform(frames)
        if self._joints is None:
            self._joints = detect_moving_joints(
                transformed,
                min_path_mm=self.config.min_joint_path_mm,
                fraction_of_max=self.config.joint_path_fraction,
            ) or ["rhand"]
        return self._resolve_sampler().sample(transformed)

    def reset(self) -> None:
        """Discard all samples (and re-detect joints on the next one)."""
        self._merger.reset()
        self._sample_results.clear()
        self._sampler = None
        if not self.config.joints:
            self._joints = None

    # -- internals --------------------------------------------------------------------------

    def _transform(
        self, frames: Sequence[Mapping[str, float]]
    ) -> List[Dict[str, float]]:
        if not self.config.transform_input:
            return [dict(frame) for frame in frames]
        return [self.transformer.transform(frame) for frame in frames]

    def _resolve_sampler(self) -> DistanceBasedSampler:
        if self._sampler is None:
            assert self._joints is not None
            fields = joint_fields(self._joints)
            sampling_config = replace(self.config.sampling, fields=fields)
            self._sampler = DistanceBasedSampler(sampling_config)
        return self._sampler

    def __repr__(self) -> str:
        return (
            f"GestureLearner(name={self.name!r}, samples={self.sample_count}, "
            f"joints={self._joints})"
        )
