"""Gesture descriptions: the learned, engine-independent pattern.

A :class:`GestureDescription` is what the learning pipeline produces and the
gesture database stores: an ordered sequence of pose windows over the
transformed coordinate space, plus the bookkeeping needed to generate a CEP
query (which joints are involved, how long performances took, how many
samples contributed).  It deliberately contains no engine objects so it can
be serialised, post-processed and re-deployed at any time — the property the
paper highlights as the benefit of declarative gesture definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.windows import PoseWindow, Window


@dataclass
class GestureDescription:
    """A learned gesture pattern.

    Attributes
    ----------
    name:
        Gesture name; also the output value of the generated query.
    poses:
        Ordered pose windows (sequence index 0 … n-1).
    joints:
        Skeleton joints the gesture constrains (e.g. ``["rhand"]``).
    stream:
        Stream the generated query reads from (the transformed view).
    sample_count:
        Number of samples merged into this description.
    mean_duration_s / max_duration_s:
        Statistics over the training samples, used to derive the ``within``
        time constraints of the generated query.
    metadata:
        Free-form annotations (learning parameters, creation time, …).
    """

    name: str
    poses: List[PoseWindow] = field(default_factory=list)
    joints: List[str] = field(default_factory=list)
    stream: str = "kinect_t"
    sample_count: int = 0
    mean_duration_s: float = 0.0
    max_duration_s: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a gesture description needs a name")

    # -- structure -----------------------------------------------------------------

    @property
    def pose_count(self) -> int:
        return len(self.poses)

    def fields(self) -> Tuple[str, ...]:
        """All coordinate fields constrained by at least one pose."""
        names: List[str] = []
        for pose in self.poses:
            for name in pose.window.fields:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def predicate_count(self) -> int:
        """Number of range predicates a generated query would contain."""
        return sum(len(pose.window.center) for pose in self.poses)

    def windows(self) -> List[Window]:
        return [pose.window for pose in self.poses]

    # -- matching helpers (used by validation and tests) ------------------------------

    def matches_path(self, frames: Sequence[Mapping[str, float]]) -> bool:
        """Check whether a frame sequence passes through all poses in order.

        This is an offline convenience used by validation and tests; the
        deployed detection uses the CEP engine's NFA matcher instead.
        """
        if not self.poses:
            return False
        pose_iter = iter(self.poses)
        current = next(pose_iter)
        for frame in frames:
            if current.contains(frame):
                try:
                    current = next(pose_iter)
                except StopIteration:
                    return True
        return False

    def scaled(self, factor: float) -> "GestureDescription":
        """Return a copy with every pose window scaled by ``factor``."""
        return GestureDescription(
            name=self.name,
            poses=[
                PoseWindow(
                    sequence_index=pose.sequence_index,
                    window=pose.window.scaled(factor),
                    support=pose.support,
                )
                for pose in self.poses
            ],
            joints=list(self.joints),
            stream=self.stream,
            sample_count=self.sample_count,
            mean_duration_s=self.mean_duration_s,
            max_duration_s=self.max_duration_s,
            metadata=dict(self.metadata),
        )

    # -- serialisation -------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "stream": self.stream,
            "joints": list(self.joints),
            "sample_count": self.sample_count,
            "mean_duration_s": self.mean_duration_s,
            "max_duration_s": self.max_duration_s,
            "metadata": dict(self.metadata),
            "poses": [pose.to_dict() for pose in self.poses],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GestureDescription":
        return cls(
            name=str(data["name"]),
            stream=str(data.get("stream", "kinect_t")),
            joints=list(data.get("joints", [])),  # type: ignore[arg-type]
            sample_count=int(data.get("sample_count", 0)),  # type: ignore[arg-type]
            mean_duration_s=float(data.get("mean_duration_s", 0.0)),  # type: ignore[arg-type]
            max_duration_s=float(data.get("max_duration_s", 0.0)),  # type: ignore[arg-type]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
            poses=[PoseWindow.from_dict(p) for p in data.get("poses", [])],  # type: ignore[union-attr]
        )

    def __repr__(self) -> str:
        return (
            f"GestureDescription(name={self.name!r}, poses={self.pose_count}, "
            f"joints={self.joints}, samples={self.sample_count})"
        )
