"""Validation: detecting the overlap problem (paper Sec. 3.3.2 / 3.3.3).

Widening pose windows makes a gesture easier to detect but risks that
"patterns of different gestures detect the same movement".  The validator
performs the intersection tests the paper describes as an optional
post-processing step:

* **window overlap** — which pose windows of two gestures intersect, and by
  how much of their volume,
* **subsumption** — whether one gesture's pattern would fire on the other
  gesture's canonical path (its window centres visited in order), which is
  the user-visible symptom of the overlap problem,
* **self checks** — degenerate descriptions (a single pose, adjacent poses
  whose windows coincide) that usually indicate too coarse sampling.

The validator only *reports*; resolving a conflict is left to the user
(adding separating constraints) or to the optimiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.description import GestureDescription
from repro.errors import ValidationError


@dataclass(frozen=True)
class WindowOverlap:
    """One intersecting pair of pose windows from two different gestures."""

    gesture_a: str
    pose_a: int
    gesture_b: str
    pose_b: int
    volume_ratio: float

    def __repr__(self) -> str:
        return (
            f"WindowOverlap({self.gesture_a}#{self.pose_a} ∩ "
            f"{self.gesture_b}#{self.pose_b}, ratio={self.volume_ratio:.2f})"
        )


@dataclass
class OverlapReport:
    """Validation result for a set of gesture descriptions."""

    overlaps: List[WindowOverlap] = field(default_factory=list)
    subsumptions: List[Tuple[str, str]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def has_conflicts(self) -> bool:
        """True when at least one gesture would detect another's movement."""
        return bool(self.subsumptions)

    def conflicting_pairs(self) -> List[Tuple[str, str]]:
        return list(self.subsumptions)

    def overlaps_between(self, gesture_a: str, gesture_b: str) -> List[WindowOverlap]:
        return [
            overlap
            for overlap in self.overlaps
            if {overlap.gesture_a, overlap.gesture_b} == {gesture_a, gesture_b}
        ]

    def summary(self) -> str:
        lines = [
            f"{len(self.overlaps)} window overlap(s), "
            f"{len(self.subsumptions)} gesture conflict(s)"
        ]
        for first, second in self.subsumptions:
            lines.append(f"  conflict: pattern '{first}' detects movement of '{second}'")
        lines.extend(f"  warning: {message}" for message in self.warnings)
        return "\n".join(lines)


@dataclass(frozen=True)
class ValidationConfig:
    """Configuration of the validator.

    Attributes
    ----------
    min_overlap_ratio:
        Window intersections below this volume ratio are ignored (tiny
        touching corners are not a practical problem).
    strict:
        When true, :meth:`PatternValidator.validate` raises
        :class:`~repro.errors.ValidationError` on conflicts instead of only
        reporting them.
    """

    min_overlap_ratio: float = 0.05
    strict: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_overlap_ratio <= 1.0:
            raise ValueError("min_overlap_ratio must be in [0, 1]")


class PatternValidator:
    """Cross-checks a set of gesture descriptions for conflicts."""

    def __init__(self, config: Optional[ValidationConfig] = None) -> None:
        self.config = config or ValidationConfig()

    def validate(self, descriptions: Sequence[GestureDescription]) -> OverlapReport:
        """Run all checks over ``descriptions``.

        Raises
        ------
        ValidationError
            In strict mode, when a subsumption conflict is found.
        """
        report = OverlapReport()
        for description in descriptions:
            self._self_check(description, report)
        for index, first in enumerate(descriptions):
            for second in descriptions[index + 1:]:
                self._check_pair(first, second, report)
        if self.config.strict and report.has_conflicts:
            raise ValidationError(report.summary())
        return report

    # -- individual checks ---------------------------------------------------------

    def _self_check(self, description: GestureDescription, report: OverlapReport) -> None:
        if description.pose_count < 2:
            report.warnings.append(
                f"gesture '{description.name}' has only {description.pose_count} "
                "pose(s); a single pose matches any time the joint passes through it"
            )
        for earlier, later in zip(description.poses, description.poses[1:]):
            ratio = earlier.window.intersection_volume_ratio(later.window)
            if ratio > 0.9:
                report.warnings.append(
                    f"gesture '{description.name}' poses {earlier.sequence_index} and "
                    f"{later.sequence_index} almost coincide (overlap {ratio:.0%}); "
                    "consider a larger sampling threshold or the optimiser"
                )

    def _check_pair(
        self,
        first: GestureDescription,
        second: GestureDescription,
        report: OverlapReport,
    ) -> None:
        for pose_a in first.poses:
            for pose_b in second.poses:
                if not pose_a.window.intersects(pose_b.window):
                    continue
                ratio = pose_a.window.intersection_volume_ratio(pose_b.window)
                if ratio < self.config.min_overlap_ratio:
                    continue
                report.overlaps.append(
                    WindowOverlap(
                        gesture_a=first.name,
                        pose_a=pose_a.sequence_index,
                        gesture_b=second.name,
                        pose_b=pose_b.sequence_index,
                        volume_ratio=ratio,
                    )
                )
        if self._subsumes(first, second):
            report.subsumptions.append((first.name, second.name))
        if self._subsumes(second, first):
            report.subsumptions.append((second.name, first.name))

    @staticmethod
    def _subsumes(pattern: GestureDescription, other: GestureDescription) -> bool:
        """Would ``pattern`` fire on the canonical path of ``other``?

        The canonical path is the sequence of ``other``'s window centres —
        the "average" movement its own samples exhibited.  Both gestures
        must constrain at least one common field for the check to be
        meaningful.
        """
        if pattern.name == other.name:
            return False
        shared = set(pattern.fields()) & set(other.fields())
        if not shared:
            return False
        path = [dict(pose.window.center) for pose in other.poses]
        return pattern.matches_path(path)
