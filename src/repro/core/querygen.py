"""CEP query generation from gesture descriptions (paper Sec. 3.3.4).

For every pose window the generator emits one range predicate per
constrained coordinate::

    abs(<field> - <center>) < <width>

and combines the poses with nested sequence (``->``) operators carrying
``within`` time constraints and ``select first consume all`` policies — the
exact query shape of the paper's Fig. 1.  The output is both a structured
:class:`~repro.cep.query.Query` (deployed directly on the engine) and its
textual rendering (stored in the gesture database and available for manual
fine tuning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cep.expressions import BooleanOp, Expression, abs_diff_predicate
from repro.cep.query import (
    ConsumePolicy,
    EventPattern,
    PatternNode,
    Query,
    SelectPolicy,
    SequencePattern,
)
from repro.core.description import GestureDescription
from repro.core.windows import PoseWindow
from repro.errors import QueryGenerationError


@dataclass(frozen=True)
class QueryGenConfig:
    """Configuration of the query generator.

    Attributes
    ----------
    within_slack:
        The generated ``within`` bound is the maximum observed sample
        duration multiplied by this slack factor (users are slower when
        they do not concentrate on training).
    min_within_seconds / max_within_seconds:
        Clamp on the generated time constraint.  The paper's example uses
        1 second per nesting level.
    round_within_to:
        The time constraint is rounded *up* to a multiple of this value so
        generated queries stay human-readable.
    nested:
        ``True`` generates the paper's left-nested pair structure
        ``((p0 -> p1) within W) -> p2 within W``; ``False`` generates one
        flat sequence with a single ``within``.
    coordinate_precision:
        Number of decimal places kept for centres and widths.
    select / consume:
        Policies written into every sequence level.
    """

    within_slack: float = 1.5
    min_within_seconds: float = 1.0
    max_within_seconds: float = 10.0
    round_within_to: float = 0.5
    nested: bool = True
    coordinate_precision: int = 0
    select: SelectPolicy = SelectPolicy.FIRST
    consume: ConsumePolicy = ConsumePolicy.ALL

    def __post_init__(self) -> None:
        if self.within_slack <= 0:
            raise ValueError("within_slack must be positive")
        if self.min_within_seconds <= 0:
            raise ValueError("min_within_seconds must be positive")
        if self.max_within_seconds < self.min_within_seconds:
            raise ValueError("max_within_seconds must be >= min_within_seconds")
        if self.round_within_to <= 0:
            raise ValueError("round_within_to must be positive")
        if self.coordinate_precision < 0:
            raise ValueError("coordinate_precision must be non-negative")


class QueryGenerator:
    """Generates deployable CEP queries from gesture descriptions."""

    def __init__(self, config: Optional[QueryGenConfig] = None) -> None:
        self.config = config or QueryGenConfig()

    # -- public API ---------------------------------------------------------------------

    def generate(self, description: GestureDescription) -> Query:
        """Build the :class:`Query` for ``description``.

        Raises
        ------
        QueryGenerationError
            If the description has no poses.
        """
        if not description.poses:
            raise QueryGenerationError(
                f"gesture '{description.name}' has no poses to generate a query from"
            )
        events = [
            self._event_pattern(description.stream, pose)
            for pose in sorted(description.poses, key=lambda p: p.sequence_index)
        ]
        within = self._within_seconds(description)
        if self.config.nested and len(events) > 2:
            pattern = self._nested_sequence(events, within)
        else:
            pattern = SequencePattern(
                elements=tuple(events),
                within_seconds=within,
                select=self.config.select,
                consume=self.config.consume,
            )
        return Query(output=description.name, pattern=pattern)

    def generate_text(self, description: GestureDescription) -> str:
        """Build the textual query (the Fig. 1 representation)."""
        return self.generate(description).to_query()

    # -- internals ------------------------------------------------------------------------

    def _event_pattern(self, stream: str, pose: PoseWindow) -> EventPattern:
        predicates: List[Expression] = []
        window = pose.window
        for name in sorted(window.center):
            center = self._round(window.center[name])
            width = self._round_width(window.width[name])
            predicates.append(abs_diff_predicate(name, center, width))
        return EventPattern(
            stream=stream,
            predicate=BooleanOp.conjunction(predicates),
            label=f"pose_{pose.sequence_index}",
        )

    def _nested_sequence(
        self, events: Sequence[EventPattern], within: float
    ) -> SequencePattern:
        """Left-nested pairs, the structure of the paper's generated queries."""
        current: PatternNode = SequencePattern(
            elements=(events[0], events[1]),
            within_seconds=within,
            select=self.config.select,
            consume=self.config.consume,
        )
        for event in events[2:]:
            current = SequencePattern(
                elements=(current, event),
                within_seconds=within,
                select=self.config.select,
                consume=self.config.consume,
            )
        assert isinstance(current, SequencePattern)
        return current

    def _within_seconds(self, description: GestureDescription) -> float:
        base = description.max_duration_s or description.mean_duration_s
        if base <= 0:
            base = self.config.min_within_seconds
        value = base * self.config.within_slack
        step = self.config.round_within_to
        value = math.ceil(value / step) * step
        return min(
            max(value, self.config.min_within_seconds),
            self.config.max_within_seconds,
        )

    def _round(self, value: float) -> float:
        return round(value, self.config.coordinate_precision)

    def _round_width(self, value: float) -> float:
        rounded = round(value, self.config.coordinate_precision)
        # Widths must stay positive after rounding.
        minimum = 10.0 ** (-self.config.coordinate_precision)
        return max(rounded, minimum)
