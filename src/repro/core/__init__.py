"""Gesture pattern learning — the paper's primary contribution (Sec. 3.3).

The learning pipeline turns a handful of recorded gesture samples into a
declarative CEP query:

1. :mod:`repro.core.sampling` — *distance-based sampling*: a density-based
   clustering pass over one sample that extracts the characteristic points
   of the gesture path (Sec. 3.3.1),
2. :mod:`repro.core.merging` — *window merging*: characteristic points with
   the same sequence number from different samples are merged into minimal
   bounding rectangles; merging is incremental and warns when a new sample
   deviates too much (Sec. 3.3.2),
3. :mod:`repro.core.validation` / :mod:`repro.core.optimization` — overlap
   checks between gestures and pattern simplification (Sec. 3.3.3),
4. :mod:`repro.core.querygen` — range predicates and sequence operators are
   generated for the CEP engine (Sec. 3.3.4).

:class:`repro.core.learner.GestureLearner` orchestrates the steps;
:mod:`repro.core.clustering` provides the DBSCAN baseline the paper cites
([2], Ester et al.) for comparison benchmarks.
"""

from repro.core.distance import (
    DistanceMetric,
    EuclideanDistance,
    EveryKTuples,
    ManhattanDistance,
    WeightedEuclideanDistance,
)
from repro.core.windows import PoseWindow, Window
from repro.core.description import GestureDescription
from repro.core.sampling import (
    CharacteristicPoint,
    DistanceBasedSampler,
    SampledPath,
    SamplingConfig,
)
from repro.core.merging import MergeConfig, MergeResult, WindowMerger
from repro.core.learner import GestureLearner, LearnerConfig
from repro.core.validation import OverlapReport, PatternValidator, ValidationConfig
from repro.core.optimization import OptimizationReport, PatternOptimizer, OptimizerConfig
from repro.core.querygen import QueryGenerator, QueryGenConfig
from repro.core.clustering import DBSCAN, DBSCANConfig

__all__ = [
    "DistanceMetric",
    "EuclideanDistance",
    "ManhattanDistance",
    "WeightedEuclideanDistance",
    "EveryKTuples",
    "Window",
    "PoseWindow",
    "GestureDescription",
    "CharacteristicPoint",
    "SampledPath",
    "SamplingConfig",
    "DistanceBasedSampler",
    "MergeConfig",
    "MergeResult",
    "WindowMerger",
    "GestureLearner",
    "LearnerConfig",
    "ValidationConfig",
    "PatternValidator",
    "OverlapReport",
    "OptimizerConfig",
    "PatternOptimizer",
    "OptimizationReport",
    "QueryGenerator",
    "QueryGenConfig",
    "DBSCAN",
    "DBSCANConfig",
]
