"""Distance metrics for the distance-based sampling step.

The paper makes the distance function of the sampling step configurable "to
express several gesture semantics, e.g., the Euclidean distance can be used
to express spatial differences between successive poses, or metrics like
'every x tuples' can be used for time-based constraints" (Sec. 3.3.1).

A metric measures how different two sensor frames are with respect to the
fields relevant for the gesture (typically the coordinates of the moving
joints).  All metrics operate on the flat, transformed ``kinect_t`` frames.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple


class DistanceMetric(ABC):
    """Distance between two frames over a set of fields."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("a distance metric needs at least one field")
        self.fields = tuple(fields)

    @abstractmethod
    def distance(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        """Return a non-negative distance between two frames."""

    def __call__(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        return self.distance(first, second)

    def _deltas(
        self, first: Mapping[str, float], second: Mapping[str, float]
    ) -> Iterable[float]:
        for field in self.fields:
            yield float(second.get(field, 0.0)) - float(first.get(field, 0.0))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fields={list(self.fields)})"


class EuclideanDistance(DistanceMetric):
    """Spatial (L2) distance over the selected coordinate fields.

    This is the paper's default metric: it expresses "spatial differences
    between successive poses", so a new characteristic point is created
    whenever the tracked joints have moved far enough.
    """

    def distance(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        return math.sqrt(sum(delta * delta for delta in self._deltas(first, second)))


class ManhattanDistance(DistanceMetric):
    """L1 distance; more tolerant of single-axis noise spikes than L2."""

    def distance(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        return sum(abs(delta) for delta in self._deltas(first, second))


class WeightedEuclideanDistance(DistanceMetric):
    """Euclidean distance with per-field weights.

    Allows emphasising particular axes, e.g. weighting the depth axis lower
    because Kinect depth measurements are noisier than lateral ones.
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ValueError("weights must not be empty")
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("weights must be non-negative")
        super().__init__(tuple(weights))
        self.weights: Dict[str, float] = dict(weights)

    def distance(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        total = 0.0
        for field in self.fields:
            delta = float(second.get(field, 0.0)) - float(first.get(field, 0.0))
            total += self.weights[field] * delta * delta
        return math.sqrt(total)


class EveryKTuples(DistanceMetric):
    """Count-based pseudo-distance: "every x tuples" (time-based sampling).

    The distance between two frames is the number of sensor frames elapsed
    between them (estimated from their timestamps and the stream frequency),
    so with a threshold of ``k`` a new characteristic point is emitted after
    every ``k`` frames regardless of how far the joints moved.  At the
    Kinect's 30 Hz this expresses "one pose every k/30 seconds" — the
    time-based constraint semantics the paper mentions.
    """

    def __init__(
        self,
        fields: Optional[Sequence[str]] = None,
        frequency_hz: float = 30.0,
        timestamp_field: str = "ts",
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        super().__init__(tuple(fields) if fields else (timestamp_field,))
        self.frequency_hz = frequency_hz
        self.timestamp_field = timestamp_field

    def distance(self, first: Mapping[str, float], second: Mapping[str, float]) -> float:
        first_ts = float(first.get(self.timestamp_field, 0.0))
        second_ts = float(second.get(self.timestamp_field, 0.0))
        return abs(second_ts - first_ts) * self.frequency_hz


def joint_fields(joints: Sequence[str], axes: Tuple[str, ...] = ("x", "y", "z")) -> Tuple[str, ...]:
    """Expand joint names into their coordinate field names.

    >>> joint_fields(["rhand"])
    ('rhand_x', 'rhand_y', 'rhand_z')
    """
    if not joints:
        raise ValueError("at least one joint is required")
    return tuple(f"{joint}_{axis}" for joint in joints for axis in axes)
