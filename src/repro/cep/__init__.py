"""A complex event processing (CEP) engine for sensor streams.

This package is the reproduction's stand-in for *AnduIN*, the data stream
management system the paper deploys its generated gesture queries on.  It
provides everything those queries need:

* a tuple/schema model (:mod:`repro.cep.tuples`),
* an expression language with user-defined functions
  (:mod:`repro.cep.expressions`, :mod:`repro.cep.udf`),
* a parser for the paper's query dialect —
  ``SELECT "name" MATCHING ( kinect_t(…) -> kinect_t(…) within 1 seconds
  select first consume all )`` (:mod:`repro.cep.parser`),
* NFA-based sequence pattern matching with time windows and consumption
  policies (:mod:`repro.cep.nfa`, :mod:`repro.cep.matcher`),
* derived streams / views such as ``kinect_t`` (:mod:`repro.cep.views`),
* an engine that owns streams, views, deployed queries and sinks
  (:mod:`repro.cep.engine`).
"""

from repro.cep.tuples import DEFAULT_PARTITION_FIELD, Field, Schema
from repro.cep.expressions import (
    BinaryOp,
    BooleanOp,
    Comparison,
    CompiledPredicateCache,
    Expression,
    FieldRef,
    FunctionCall,
    Literal,
    NotOp,
    UnaryMinus,
    abs_diff_predicate,
)
from repro.cep.udf import FunctionRegistry, default_functions
from repro.cep.parser import parse_query, parse_expression
from repro.cep.query import (
    EventPattern,
    Query,
    SequencePattern,
    ConsumePolicy,
    SelectPolicy,
)
from repro.cep.nfa import CompiledPattern, compile_pattern
from repro.cep.matcher import Detection, NFAMatcher, MatcherConfig
from repro.cep.sinks import (
    CallbackSink,
    CollectingSink,
    FanOutSink,
    NullSink,
    Sink,
    SinkFailure,
)
from repro.cep.views import install_kinect_view
from repro.cep.engine import CEPEngine, DeployedQuery

__all__ = [
    "DEFAULT_PARTITION_FIELD",
    "Field",
    "Schema",
    "Expression",
    "Literal",
    "FieldRef",
    "BinaryOp",
    "UnaryMinus",
    "Comparison",
    "BooleanOp",
    "NotOp",
    "FunctionCall",
    "CompiledPredicateCache",
    "abs_diff_predicate",
    "FunctionRegistry",
    "default_functions",
    "parse_query",
    "parse_expression",
    "Query",
    "EventPattern",
    "SequencePattern",
    "SelectPolicy",
    "ConsumePolicy",
    "CompiledPattern",
    "compile_pattern",
    "NFAMatcher",
    "MatcherConfig",
    "Detection",
    "Sink",
    "SinkFailure",
    "CallbackSink",
    "CollectingSink",
    "FanOutSink",
    "NullSink",
    "install_kinect_view",
    "CEPEngine",
    "DeployedQuery",
]
