"""Relational-style stream operators.

Besides the NFA match operator, a handful of classic data stream operators
are useful around the gesture pipeline: filtering (drop frames of other
players), projection (forward only the joints a query needs), mapping
(the ``kinect_t`` transformation is a map), and simple sliding-window
aggregation (used by the motion detector to decide whether the user is
stationary).  Each operator subscribes to an input stream and pushes its
results to an output stream, so operators compose into pipelines.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Mapping, Optional, Sequence

from repro.cep.expressions import Expression
from repro.cep.udf import FunctionRegistry, default_functions
from repro.streams.stream import Stream, Subscription


class StreamOperator:
    """Base class: subscribes to ``input_stream`` and feeds ``output_stream``."""

    def __init__(self, input_stream: Stream, output_stream: Stream) -> None:
        self.input_stream = input_stream
        self.output_stream = output_stream
        self.processed = 0
        self._subscription: Optional[Subscription] = None

    def start(self) -> None:
        """Attach the operator to its input stream."""
        if self._subscription is None:
            self._subscription = self.input_stream.subscribe(
                self._on_tuple, name=type(self).__name__
            )

    def stop(self) -> None:
        """Detach the operator."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def _on_tuple(self, record: Mapping[str, Any]) -> None:
        self.processed += 1
        self.handle(record)

    def handle(self, record: Mapping[str, Any]) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class FilterOperator(StreamOperator):
    """Forwards only tuples satisfying a predicate expression."""

    def __init__(
        self,
        input_stream: Stream,
        output_stream: Stream,
        predicate: Expression,
        functions: Optional[FunctionRegistry] = None,
    ) -> None:
        super().__init__(input_stream, output_stream)
        self.predicate = predicate
        self.functions = functions or default_functions()
        self.passed = 0

    def handle(self, record: Mapping[str, Any]) -> None:
        if self.predicate.evaluate(record, self.functions):
            self.passed += 1
            self.output_stream.push(record)


class ProjectOperator(StreamOperator):
    """Forwards only the listed fields of each tuple."""

    def __init__(
        self,
        input_stream: Stream,
        output_stream: Stream,
        fields: Sequence[str],
    ) -> None:
        super().__init__(input_stream, output_stream)
        if not fields:
            raise ValueError("projection needs at least one field")
        self.fields = tuple(fields)

    def handle(self, record: Mapping[str, Any]) -> None:
        projected = {name: record[name] for name in self.fields if name in record}
        self.output_stream.push(projected)


class MapOperator(StreamOperator):
    """Applies a function to every tuple (views are maps)."""

    def __init__(
        self,
        input_stream: Stream,
        output_stream: Stream,
        function: Callable[[Mapping[str, Any]], Mapping[str, Any]],
    ) -> None:
        super().__init__(input_stream, output_stream)
        self.function = function

    def handle(self, record: Mapping[str, Any]) -> None:
        self.output_stream.push(self.function(record))


class SlidingWindowAggregate(StreamOperator):
    """Aggregates a numeric field over a sliding count-based window.

    Emits one output tuple per input tuple once the window is full, carrying
    the aggregate value plus the window bounds.  Supported aggregates:
    ``mean``, ``min``, ``max``, ``sum``, ``range`` (max - min) and ``stddev``.
    """

    _AGGREGATES = ("mean", "min", "max", "sum", "range", "stddev")

    def __init__(
        self,
        input_stream: Stream,
        output_stream: Stream,
        field: str,
        window_size: int,
        aggregate: str = "mean",
        output_field: Optional[str] = None,
    ) -> None:
        super().__init__(input_stream, output_stream)
        if window_size < 1:
            raise ValueError("window size must be at least 1")
        if aggregate not in self._AGGREGATES:
            raise ValueError(
                f"unknown aggregate '{aggregate}'; expected one of {self._AGGREGATES}"
            )
        self.field = field
        self.window_size = window_size
        self.aggregate = aggregate
        self.output_field = output_field or f"{aggregate}_{field}"
        self._window: Deque[float] = deque(maxlen=window_size)

    def handle(self, record: Mapping[str, Any]) -> None:
        if self.field not in record:
            return
        self._window.append(float(record[self.field]))
        if len(self._window) < self.window_size:
            return
        value = self._compute()
        output = dict(record)
        output[self.output_field] = value
        self.output_stream.push(output)

    def _compute(self) -> float:
        values = list(self._window)
        if self.aggregate == "mean":
            return sum(values) / len(values)
        if self.aggregate == "min":
            return min(values)
        if self.aggregate == "max":
            return max(values)
        if self.aggregate == "sum":
            return sum(values)
        if self.aggregate == "range":
            return max(values) - min(values)
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


class Pipeline:
    """A linear chain of operators over intermediate streams.

    Mostly a convenience for tests and examples: builds the intermediate
    streams, wires the operators, and starts/stops them together.
    """

    def __init__(self, operators: Iterable[StreamOperator]) -> None:
        self.operators: List[StreamOperator] = list(operators)

    def start(self) -> None:
        for operator in self.operators:
            operator.start()

    def stop(self) -> None:
        for operator in self.operators:
            operator.stop()

    def __enter__(self) -> "Pipeline":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
