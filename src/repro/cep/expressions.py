"""Expression AST for event predicates.

Gesture queries are built from predicates over tuple fields, e.g.::

    abs(rhand_x - torso_x - 400) < 50 and abs(rhand_y - torso_y - 150) < 50

Expressions are represented as a small immutable AST that can be

* evaluated against a tuple (a mapping of field name to value),
* rendered back into query text (``to_query()``), which is how the query
  generator produces the textual queries shown in the paper's Fig. 1,
* introspected (``fields()`` returns the referenced fields, used by the
  optimiser to eliminate irrelevant coordinates),
* counted (``predicate_count()``), used by the optimisation benchmarks to
  report detection effort.

Function calls are resolved through a
:class:`~repro.cep.udf.FunctionRegistry`; the default registry provides
``abs``, ``dist`` (Euclidean distance) and the Roll-Pitch-Yaw operators the
paper implements as UDFs in AnduIN.

Besides the interpreted ``evaluate()`` walk, every node can be *compiled*
(``compile()``) into a plain Python closure that takes only the record.
Compilation resolves operators, field names and UDF callables once instead
of per tuple, which is what lets the NFA matcher keep up with a full
gesture vocabulary at sensor rate.  A :class:`CompiledPredicateCache`
(owned by the engine) shares compiled closures between structurally
identical predicates, keyed by their canonical ``to_query()`` text.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExpressionError, UnknownFunctionError

EvaluationContext = Mapping[str, Any]

#: A compiled expression: a closure over the record only.
CompiledExpression = Callable[[EvaluationContext], Any]


class Expression(ABC):
    """Base class of all expression nodes."""

    @abstractmethod
    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        """Evaluate the expression against ``record``."""

    @abstractmethod
    def to_query(self) -> str:
        """Render the expression as query text."""

    @abstractmethod
    def fields(self) -> FrozenSet[str]:
        """Return the set of field names referenced by the expression."""

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        """Lower the expression to a plain Python closure over the record.

        The closure returns exactly what :meth:`evaluate` would return for
        the same record, but operator dispatch, field names and UDF
        callables are resolved once at compile time instead of per call.
        Two semantic differences, both surfacing errors *earlier*: unknown
        functions and arity mismatches raise at compile time rather than at
        evaluation time.

        Subclasses override this; the base implementation falls back to
        interpreting the node, so third-party :class:`Expression`
        subclasses keep working inside compiled parents.
        """

        def interpret(record: EvaluationContext) -> Any:
            return self.evaluate(record, functions)

        return interpret

    def predicate_count(self) -> int:
        """Number of atomic comparisons in the expression (detection effort)."""
        return sum(child.predicate_count() for child in self.children())

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and every descendant, pre-order.

        The traversal is iterative, so degenerate deeply-nested
        expressions cannot blow the recursion limit.
        """
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_query()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.to_query() == other.to_query()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_query()))


class Literal(Expression):
    """A numeric, string or boolean constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        return self.value

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        value = self.value
        return lambda record: value

    def to_query(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if isinstance(self.value, float):
            # Render integral floats without a trailing ".0" for readability,
            # matching the style of the paper's generated queries.
            if self.value == int(self.value) and abs(self.value) < 1e15:
                return str(int(self.value))
            return repr(self.value)
        return str(self.value)

    def fields(self) -> FrozenSet[str]:
        return frozenset()


class FieldRef(Expression):
    """A reference to a tuple field, e.g. ``rhand_x``."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ExpressionError("field reference must have a name")
        self.name = name

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        try:
            return record[self.name]
        except KeyError:
            raise ExpressionError(
                f"tuple has no field '{self.name}' "
                f"(available: {sorted(record)[:8]}…)"
            ) from None

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        name = self.name

        def load(record: EvaluationContext) -> Any:
            try:
                return record[name]
            except KeyError:
                raise ExpressionError(
                    f"tuple has no field '{name}' "
                    f"(available: {sorted(record)[:8]}…)"
                ) from None

        return load

    def to_query(self) -> str:
        return self.name

    def fields(self) -> FrozenSet[str]:
        return frozenset({self.name})


class UnaryMinus(Expression):
    """Arithmetic negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        return -self.operand.evaluate(record, functions)

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        operand = self.operand.compile(functions)
        return lambda record: -operand(record)

    def to_query(self) -> str:
        return f"-{self.operand.to_query()}"

    def fields(self) -> FrozenSet[str]:
        return self.operand.fields()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)


_ARITHMETIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class BinaryOp(Expression):
    """Arithmetic operation: ``+``, ``-``, ``*`` or ``/``."""

    def __init__(self, operator: str, left: Expression, right: Expression) -> None:
        if operator not in _ARITHMETIC_OPS:
            raise ExpressionError(f"unknown arithmetic operator '{operator}'")
        self.operator = operator
        self.left = left
        self.right = right

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        left = self.left.evaluate(record, functions)
        right = self.right.evaluate(record, functions)
        if self.operator == "/" and right == 0:
            raise ExpressionError("division by zero while evaluating expression")
        return _ARITHMETIC_OPS[self.operator](left, right)

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        left = self.left.compile(functions)
        right = self.right.compile(functions)
        if self.operator == "/":

            def divide(record: EvaluationContext) -> Any:
                numerator = left(record)
                denominator = right(record)
                if denominator == 0:
                    raise ExpressionError("division by zero while evaluating expression")
                return numerator / denominator

            return divide
        operation = _ARITHMETIC_OPS[self.operator]
        return lambda record: operation(left(record), right(record))

    def to_query(self) -> str:
        return f"{self._render(self.left)} {self.operator} {self._render(self.right)}"

    def _render(self, child: Expression) -> str:
        # Parenthesise nested additive expressions under * or / for clarity.
        if isinstance(child, (BinaryOp, Comparison, BooleanOp)) and (
            self.operator in ("*", "/") or isinstance(child, (Comparison, BooleanOp))
        ):
            return f"({child.to_query()})"
        return child.to_query()

    def fields(self) -> FrozenSet[str]:
        return self.left.fields() | self.right.fields()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)


_COMPARISON_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Comparison(Expression):
    """A comparison: the atomic predicate of gesture queries."""

    def __init__(self, operator: str, left: Expression, right: Expression) -> None:
        if operator == "=":
            operator = "=="
        if operator == "<>":
            operator = "!="
        if operator not in _COMPARISON_OPS:
            raise ExpressionError(f"unknown comparison operator '{operator}'")
        self.operator = operator
        self.left = left
        self.right = right

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> bool:
        left = self.left.evaluate(record, functions)
        right = self.right.evaluate(record, functions)
        return bool(_COMPARISON_OPS[self.operator](left, right))

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        specialized = self._compile_specialized(functions)
        if specialized is not None:
            return specialized
        left = self.left.compile(functions)
        right = self.right.compile(functions)
        operation = _COMPARISON_OPS[self.operator]
        return lambda record: bool(operation(left(record), right(record)))

    def _compile_specialized(self, functions: Optional["FunctionRegistry"]) -> Optional[CompiledExpression]:
        """Collapse the two predicate shapes that dominate generated queries.

        ``abs(field ± c) <op> w`` (the learner's pose-window template from
        Sec. 3.3.4) and ``field <op> literal`` each become a single flat
        closure instead of a chain of nested calls.  The ``abs`` shape is
        only taken when the registry resolves ``abs`` to the Python builtin,
        so a user-supplied override keeps the generic path.
        """
        if not isinstance(self.right, Literal):
            return None
        operation = _COMPARISON_OPS[self.operator]
        bound = self.right.value

        if isinstance(self.left, FieldRef):
            name = self.left.name

            def compare_field(record: EvaluationContext) -> bool:
                try:
                    return bool(operation(record[name], bound))
                except KeyError:
                    raise ExpressionError(
                        f"tuple has no field '{name}' "
                        f"(available: {sorted(record)[:8]}…)"
                    ) from None

            return compare_field

        if (
            isinstance(self.left, FunctionCall)
            and self.left.name == "abs"
            and len(self.left.arguments) == 1
        ):
            from repro.cep.udf import default_functions

            registry = functions
            if registry is None or not registry.has("abs"):
                registry = default_functions()
            if registry.resolve("abs", arity=1) is not abs:
                return None
            inner = self.left.arguments[0]
            if not (
                isinstance(inner, BinaryOp)
                and inner.operator in ("+", "-")
                and isinstance(inner.left, FieldRef)
                and isinstance(inner.right, Literal)
            ):
                return None
            name = inner.left.name
            center = inner.right.value if inner.operator == "-" else -inner.right.value

            def compare_window(record: EvaluationContext) -> bool:
                try:
                    return bool(operation(abs(record[name] - center), bound))
                except KeyError:
                    raise ExpressionError(
                        f"tuple has no field '{name}' "
                        f"(available: {sorted(record)[:8]}…)"
                    ) from None

            return compare_window

        return None

    def to_query(self) -> str:
        return f"{self.left.to_query()} {self.operator} {self.right.to_query()}"

    def fields(self) -> FrozenSet[str]:
        return self.left.fields() | self.right.fields()

    def predicate_count(self) -> int:
        return 1

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)


class BooleanOp(Expression):
    """Conjunction or disjunction of boolean sub-expressions."""

    def __init__(self, operator: str, operands: Sequence[Expression]) -> None:
        if operator not in ("and", "or"):
            raise ExpressionError(f"unknown boolean operator '{operator}'")
        if not operands:
            raise ExpressionError(f"'{operator}' needs at least one operand")
        self.operator = operator
        self.operands = tuple(operands)

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> bool:
        if self.operator == "and":
            return all(op.evaluate(record, functions) for op in self.operands)
        return any(op.evaluate(record, functions) for op in self.operands)

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        compiled = tuple(op.compile(functions) for op in self.operands)
        if self.operator == "and":

            def conjunction(record: EvaluationContext) -> bool:
                # Explicit loop, not all(...): this closure runs per tuple per
                # query and a generator frame per call is measurable.
                for predicate in compiled:  # noqa: SIM110
                    if not predicate(record):
                        return False
                return True

            return conjunction

        def disjunction(record: EvaluationContext) -> bool:
            for predicate in compiled:  # noqa: SIM110 — hot path, see conjunction
                if predicate(record):
                    return True
            return False

        return disjunction

    def to_query(self) -> str:
        parts = []
        for operand in self.operands:
            text = operand.to_query()
            if isinstance(operand, BooleanOp) and operand.operator != self.operator:
                text = f"({text})"
            parts.append(text)
        return f" {self.operator} ".join(parts)

    def fields(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.fields()
        return result

    def children(self) -> Tuple[Expression, ...]:
        return self.operands

    @staticmethod
    def conjunction(operands: Sequence[Expression]) -> Expression:
        """Build an ``and`` of ``operands``, flattening the trivial cases."""
        operands = [op for op in operands if op is not None]
        if not operands:
            return Literal(True)
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", operands)


class NotOp(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> bool:
        return not self.operand.evaluate(record, functions)

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        operand = self.operand.compile(functions)
        return lambda record: not operand(record)

    def to_query(self) -> str:
        return f"not ({self.operand.to_query()})"

    def fields(self) -> FrozenSet[str]:
        return self.operand.fields()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)


class FunctionCall(Expression):
    """A call to a registered (or built-in) function, e.g. ``abs(...)``."""

    def __init__(self, name: str, arguments: Sequence[Expression]) -> None:
        if not name:
            raise ExpressionError("function call must have a name")
        self.name = name.lower()
        self.arguments = tuple(arguments)

    def evaluate(self, record: EvaluationContext, functions: Optional["FunctionRegistry"] = None) -> Any:
        values = [arg.evaluate(record, functions) for arg in self.arguments]
        if functions is not None and functions.has(self.name):
            return functions.call(self.name, values)
        # Fall back to the built-in minimum set so expressions remain usable
        # without an engine (e.g. in the learning pipeline's unit tests).
        from repro.cep.udf import default_functions

        registry = default_functions()
        if registry.has(self.name):
            return registry.call(self.name, values)
        raise UnknownFunctionError(f"unknown function '{self.name}'")

    def compile(self, functions: Optional["FunctionRegistry"] = None) -> CompiledExpression:
        arguments = tuple(arg.compile(functions) for arg in self.arguments)
        registry = functions
        if registry is None or not registry.has(self.name):
            # Same fallback chain as evaluate(), but resolved once.
            from repro.cep.udf import default_functions

            registry = default_functions()
            if not registry.has(self.name):
                raise UnknownFunctionError(f"unknown function '{self.name}'")
        function = registry.resolve(self.name, arity=len(arguments))
        if len(arguments) == 1:
            only = arguments[0]
            return lambda record: function(only(record))
        if len(arguments) == 2:
            first, second = arguments
            return lambda record: function(first(record), second(record))
        return lambda record: function(*[argument(record) for argument in arguments])

    def to_query(self) -> str:
        args = ", ".join(arg.to_query() for arg in self.arguments)
        return f"{self.name}({args})"

    def fields(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for argument in self.arguments:
            result |= argument.fields()
        return result

    def children(self) -> Tuple[Expression, ...]:
        return self.arguments


class CompiledPredicateCache:
    """Engine-wide cache of compiled predicate closures.

    Keyed by ``Expression.to_query()`` — the canonical text rendering — so
    structurally identical predicates (the learner emits the same pose
    window for many queries) are lowered once and share a single closure.
    One cache is owned by each :class:`~repro.cep.engine.CEPEngine` and
    handed to every matcher it deploys; ``hits``/``misses`` feed the
    throughput benchmarks.
    """

    def __init__(self, functions: Optional["FunctionRegistry"] = None) -> None:
        self.functions = functions
        self._compiled: Dict[str, CompiledExpression] = {}
        self.hits = 0
        self.misses = 0

    def compile(self, expression: Expression) -> CompiledExpression:
        """Return the (possibly shared) compiled form of ``expression``."""
        key = expression.to_query()
        cached = self._compiled.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        compiled = expression.compile(self.functions)
        self._compiled[key] = compiled
        return compiled

    def clear(self) -> None:
        """Drop all cached closures (e.g. after a UDF was re-registered)."""
        self._compiled.clear()

    def __len__(self) -> int:
        return len(self._compiled)


def abs_diff_predicate(field: str, center: float, width: float) -> Expression:
    """Build the paper's range predicate ``abs(field - center) < width``.

    This is the predicate template of Sec. 3.3.4: for each joint coordinate
    constrained by a pose window, the generated query checks that the
    coordinate lies within ``width`` of the window ``center``.  Negative
    centres render as ``field + |center|`` exactly like the paper's example
    (``abs(rHand_z - torso_z + 120) < 50``).
    """
    if width <= 0:
        raise ExpressionError("window width must be positive")
    centered: Expression
    if center == 0:
        centered = BinaryOp("-", FieldRef(field), Literal(0))
    elif center > 0:
        centered = BinaryOp("-", FieldRef(field), Literal(float(center)))
    else:
        centered = BinaryOp("+", FieldRef(field), Literal(float(-center)))
    return Comparison("<", FunctionCall("abs", [centered]), Literal(float(width)))


# Imported late to avoid a circular import at module load time.
from repro.cep.udf import FunctionRegistry  # noqa: E402  (documented import cycle)
