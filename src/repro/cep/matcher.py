"""NFA runtime for sequence pattern matching.

The :class:`NFAMatcher` consumes one tuple at a time and maintains a set of
*runs* — partial matches, each remembering which step of the compiled
pattern it has reached and when each step was matched.  Semantics follow the
paper's match operator:

* a tuple that satisfies the predicate of a run's next step advances that
  run (each tuple advances a given run by at most one step),
* a tuple that satisfies the first step's predicate additionally starts a
  new run, so a gesture may begin at any time ("skip till next match"),
* ``within`` constraints bound the time between the first and last event of
  the corresponding sequence group; runs that can no longer satisfy a
  constraint are pruned,
* ``select first`` reports a single detection when several runs complete on
  the same tuple; ``select all`` reports all of them,
* ``consume all`` clears every run once a detection fires, so the same
  movement is not reported twice; ``consume none`` keeps partial matches.

The matcher also exposes the live progress information (how far the best
partial match has advanced) that the paper's testing phase visualises to
help users understand why a movement was not detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cep.expressions import Expression
from repro.cep.nfa import CompiledPattern, Step
from repro.cep.query import ConsumePolicy, SelectPolicy
from repro.cep.udf import FunctionRegistry, default_functions


@dataclass
class MatcherConfig:
    """Tuning knobs of the NFA runtime.

    Attributes
    ----------
    max_active_runs:
        Upper bound on simultaneously tracked partial matches.  A user
        holding the start pose produces one matching tuple per frame; the
        bound keeps state (and per-tuple cost) constant.  When the bound is
        reached no new runs are started until existing ones advance, finish
        or are pruned.
    run_ttl_seconds:
        Optional hard lifetime for a partial match, used when a pattern has
        no ``within`` constraint at all.  ``None`` disables the TTL.
    store_matched_tuples:
        Whether detections keep the full matched tuples (useful for
        debugging and the Fig. 5 style visual feedback) or only timestamps.
    timestamp_field:
        Tuple field carrying the event time in seconds.
    """

    max_active_runs: int = 256
    run_ttl_seconds: Optional[float] = 10.0
    store_matched_tuples: bool = True
    timestamp_field: str = "ts"


@dataclass
class Detection:
    """A completed pattern match."""

    output: str
    query_name: str
    timestamp: float
    start_timestamp: float
    step_timestamps: Tuple[float, ...]
    matched: Optional[Tuple[Mapping[str, Any], ...]] = None

    @property
    def duration(self) -> float:
        """Seconds between the first and the last matched event."""
        return self.timestamp - self.start_timestamp

    def __repr__(self) -> str:
        return (
            f"Detection(output={self.output!r}, t={self.timestamp:.3f}, "
            f"duration={self.duration:.3f}s)"
        )


@dataclass
class _Run:
    """One partial match."""

    next_step: int
    start_timestamp: float
    step_timestamps: List[float] = field(default_factory=list)
    matched: List[Mapping[str, Any]] = field(default_factory=list)
    sequence_number: int = 0

    def progress(self, total_steps: int) -> float:
        return self.next_step / total_steps


@dataclass
class MatcherStats:
    """Counters exposed for the optimisation / throughput benchmarks."""

    tuples_processed: int = 0
    predicate_evaluations: int = 0
    runs_started: int = 0
    runs_pruned: int = 0
    runs_suppressed: int = 0
    detections: int = 0

    def reset(self) -> None:
        self.tuples_processed = 0
        self.predicate_evaluations = 0
        self.runs_started = 0
        self.runs_pruned = 0
        self.runs_suppressed = 0
        self.detections = 0


class NFAMatcher:
    """Evaluates one compiled gesture pattern against a tuple stream."""

    def __init__(
        self,
        pattern: CompiledPattern,
        output: str,
        query_name: str = "",
        functions: Optional[FunctionRegistry] = None,
        config: Optional[MatcherConfig] = None,
    ) -> None:
        self.pattern = pattern
        self.output = output
        self.query_name = query_name or output
        self.functions = functions or default_functions()
        self.config = config or MatcherConfig()
        self.stats = MatcherStats()
        self._runs: List[_Run] = []
        self._run_counter = 0

    # -- introspection -------------------------------------------------------------

    @property
    def active_runs(self) -> int:
        """Number of partial matches currently tracked."""
        return len(self._runs)

    def furthest_step(self) -> int:
        """Index of the furthest step any partial match has reached.

        This is the "how far did my movement get" feedback of the testing
        phase: 0 means no pose has been matched yet, ``len(steps)`` would be
        a full match (which is reported as a detection instead).
        """
        if not self._runs:
            return 0
        return max(run.next_step for run in self._runs)

    def progress(self) -> float:
        """Furthest progress as a fraction of the pattern length."""
        return self.furthest_step() / self.pattern.length

    def reset(self) -> None:
        """Discard all partial matches (used when a query is redeployed)."""
        self._runs.clear()

    # -- matching -----------------------------------------------------------------------

    def process(
        self,
        record: Mapping[str, Any],
        stream: str,
        timestamp: Optional[float] = None,
    ) -> List[Detection]:
        """Feed one tuple; return the detections it completed (possibly none).

        Parameters
        ----------
        record:
            The tuple.
        stream:
            Name of the stream the tuple arrived on; steps of other streams
            ignore it.
        timestamp:
            Event time; defaults to the tuple's timestamp field.
        """
        self.stats.tuples_processed += 1
        if timestamp is None:
            timestamp = float(record.get(self.config.timestamp_field, 0.0))

        self._prune(timestamp)

        completed: List[_Run] = []
        steps = self.pattern.steps

        # Advance existing runs (each run by at most one step per tuple).
        for run in list(self._runs):
            step = steps[run.next_step]
            if step.stream != stream:
                continue
            if not self._evaluate(step.predicate, record):
                continue
            if not self._satisfies_constraints(run, timestamp):
                self._remove_run(run)
                self.stats.runs_pruned += 1
                continue
            run.next_step += 1
            run.step_timestamps.append(timestamp)
            if self.config.store_matched_tuples:
                run.matched.append(dict(record))
            if run.next_step >= len(steps):
                completed.append(run)
                self._remove_run(run)

        # Possibly start a new run from this tuple.
        first_step = steps[0]
        if first_step.stream == stream and self._evaluate(first_step.predicate, record):
            if len(self._runs) >= self.config.max_active_runs:
                self.stats.runs_suppressed += 1
            else:
                run = _Run(
                    next_step=1,
                    start_timestamp=timestamp,
                    step_timestamps=[timestamp],
                    matched=[dict(record)] if self.config.store_matched_tuples else [],
                    sequence_number=self._run_counter,
                )
                self._run_counter += 1
                self.stats.runs_started += 1
                if len(steps) == 1:
                    completed.append(run)
                else:
                    self._runs.append(run)

        if not completed:
            return []
        return self._report(completed, timestamp)

    def process_many(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: str,
    ) -> List[Detection]:
        """Feed a whole recording; return all detections in order."""
        detections: List[Detection] = []
        for record in records:
            detections.extend(self.process(record, stream))
        return detections

    # -- internals -----------------------------------------------------------------------

    def _evaluate(self, predicate: Expression, record: Mapping[str, Any]) -> bool:
        self.stats.predicate_evaluations += predicate.predicate_count() or 1
        return bool(predicate.evaluate(record, self.functions))

    def _satisfies_constraints(self, run: _Run, timestamp: float) -> bool:
        """Check the ``within`` constraints that end at the step being entered."""
        entering = run.next_step  # index of the step about to be recorded
        for constraint in self.pattern.constraints_ending_at(entering):
            start_time = run.step_timestamps[constraint.first]
            if timestamp - start_time > constraint.seconds:
                return False
        return True

    def _prune(self, timestamp: float) -> None:
        """Drop runs that can no longer complete within their time windows."""
        if not self._runs:
            return
        survivors: List[_Run] = []
        for run in self._runs:
            expired = False
            for constraint in self.pattern.constraints_covering(run.next_step - 1):
                if constraint.first < len(run.step_timestamps):
                    start_time = run.step_timestamps[constraint.first]
                    if timestamp - start_time > constraint.seconds:
                        expired = True
                        break
            if not expired and self.config.run_ttl_seconds is not None:
                if timestamp - run.start_timestamp > self.config.run_ttl_seconds:
                    expired = True
            if expired:
                self.stats.runs_pruned += 1
            else:
                survivors.append(run)
        self._runs = survivors

    def _remove_run(self, run: _Run) -> None:
        try:
            self._runs.remove(run)
        except ValueError:
            pass

    def _report(self, completed: List[_Run], timestamp: float) -> List[Detection]:
        completed.sort(key=lambda run: run.sequence_number)
        if self.pattern.select is SelectPolicy.FIRST:
            selected = [completed[0]]
        elif self.pattern.select is SelectPolicy.LAST:
            selected = [completed[-1]]
        else:
            selected = completed

        detections = [
            Detection(
                output=self.output,
                query_name=self.query_name,
                timestamp=timestamp,
                start_timestamp=run.start_timestamp,
                step_timestamps=tuple(run.step_timestamps),
                matched=tuple(run.matched) if self.config.store_matched_tuples else None,
            )
            for run in selected
        ]
        self.stats.detections += len(detections)

        if self.pattern.consume is ConsumePolicy.ALL:
            self._runs.clear()
        return detections
