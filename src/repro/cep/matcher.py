"""NFA runtime for sequence pattern matching.

The :class:`NFAMatcher` consumes tuples and maintains a set of *runs* —
partial matches, each remembering which step of the compiled pattern it has
reached and when each step was matched.  Semantics follow the paper's match
operator:

* a tuple that satisfies the predicate of a run's next step advances that
  run (each tuple advances a given run by at most one step),
* a tuple that satisfies the first step's predicate additionally starts a
  new run, so a gesture may begin at any time ("skip till next match"),
* ``within`` constraints bound the time between the first and last event of
  the corresponding sequence group; runs that can no longer satisfy a
  constraint are pruned,
* ``select first`` reports a single detection when several runs complete on
  the same tuple; ``select all`` reports all of them,
* ``consume all`` clears every run once a detection fires, so the same
  movement is not reported twice; ``consume none`` keeps partial matches.

Fast path
---------
Step predicates are lowered to plain Python closures at construction time
(``Expression.compile``); set ``MatcherConfig.compile_predicates=False`` to
fall back to the interpreted ``Expression.evaluate`` walk (the two paths
produce identical detections — the benchmark suite asserts it).  Run
bookkeeping is O(1): runs are removed by *identity* with a swap-pop on the
run table, never by value equality.  Tuples from streams that appear
nowhere in the pattern short-circuit before any predicate is evaluated.

Batched path
------------
:meth:`NFAMatcher.process_batch` feeds a whole chunk of tuples (sharing one
prune window) through the matcher: expired runs are pruned once at the
batch boundary instead of per tuple, while ``within`` constraints are still
enforced exactly on every advancement.  Expired runs that linger mid-batch
cannot change the outcome: advancement past an expired constraint is
rejected when the constraint's span ends, TTL-governed patterns fall back
to per-tuple pruning, and hitting the run cap lazily evicts expired runs
before suppressing a new one — so with monotone timestamps the batched
detections are identical to the per-tuple path's.

Run-cap semantics
-----------------
``max_active_runs`` bounds *partial* matches only.  A tuple completing an
existing run always reports, and a single-step pattern — whose matches
never occupy a run slot — fires even when the table is full; only the start
of a new multi-step run is suppressed at the cap.  ``select``/``consume``
policies apply to the completions of one tuple as usual: ``select first``
reports the oldest completed run, and ``consume all`` clears the whole run
table, including runs started by that same tuple.

The matcher also exposes the live progress information (how far the best
partial match has advanced) that the paper's testing phase visualises to
help users understand why a movement was not detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.cep.expressions import (
    CompiledExpression,
    CompiledPredicateCache,
    Expression,
)
from repro.cep.nfa import CompiledPattern
from repro.cep.query import ConsumePolicy, SelectPolicy
from repro.cep.udf import FunctionRegistry, default_functions


@dataclass
class MatcherConfig:
    """Tuning knobs of the NFA runtime.

    Attributes
    ----------
    max_active_runs:
        Upper bound on simultaneously tracked partial matches.  A user
        holding the start pose produces one matching tuple per frame; the
        bound keeps state (and per-tuple cost) constant.  When the bound is
        reached no new runs are started until existing ones advance, finish
        or are pruned.  Completions are never suppressed: single-step
        patterns detect even at the cap because they need no run slot.
    run_ttl_seconds:
        Optional hard lifetime for a partial match, applied only while a
        run sits at a step that no ``within`` constraint covers (in
        particular: every step of a pattern with no ``within`` at all).
        Runs inside a constraint window are governed by that constraint
        alone, so long-window patterns are never cut short by the TTL.
        ``None`` disables the TTL.
    store_matched_tuples:
        Whether detections keep the full matched tuples (useful for
        debugging and the Fig. 5 style visual feedback) or only timestamps.
    timestamp_field:
        Tuple field carrying the event time in seconds.
    compile_predicates:
        Lower step predicates to closures at deploy time (default).  When
        false the matcher interprets the expression AST per tuple — slower,
        but byte-identical in behaviour; kept for A/B benchmarking.
    """

    max_active_runs: int = 256
    run_ttl_seconds: Optional[float] = 10.0
    store_matched_tuples: bool = True
    timestamp_field: str = "ts"
    compile_predicates: bool = True


@dataclass
class Detection:
    """A completed pattern match."""

    output: str
    query_name: str
    timestamp: float
    start_timestamp: float
    step_timestamps: Tuple[float, ...]
    matched: Optional[Tuple[Mapping[str, Any], ...]] = None

    @property
    def duration(self) -> float:
        """Seconds between the first and the last matched event."""
        return self.timestamp - self.start_timestamp

    def __repr__(self) -> str:
        return (
            f"Detection(output={self.output!r}, t={self.timestamp:.3f}, "
            f"duration={self.duration:.3f}s)"
        )


@dataclass(eq=False)
class _Run:
    """One partial match.

    ``eq=False`` keeps identity comparison/hashing: two runs started by
    different users in the same frame carry identical field values, and run
    removal must never confuse them.  ``index`` is the run's slot in the
    matcher's run table, maintained by the swap-pop removal.
    """

    next_step: int
    start_timestamp: float
    step_timestamps: List[float] = field(default_factory=list)
    matched: List[Mapping[str, Any]] = field(default_factory=list)
    sequence_number: int = 0
    index: int = -1

    def progress(self, total_steps: int) -> float:
        return self.next_step / total_steps


@dataclass
class MatcherStats:
    """Counters exposed for the optimisation / throughput benchmarks."""

    tuples_processed: int = 0
    predicate_evaluations: int = 0
    runs_started: int = 0
    runs_pruned: int = 0
    runs_suppressed: int = 0
    detections: int = 0

    def reset(self) -> None:
        self.tuples_processed = 0
        self.predicate_evaluations = 0
        self.runs_started = 0
        self.runs_pruned = 0
        self.runs_suppressed = 0
        self.detections = 0


class NFAMatcher:
    """Evaluates one compiled gesture pattern against a tuple stream.

    Parameters
    ----------
    pattern:
        The flattened NFA description.
    output / query_name:
        Detection labels.
    functions:
        UDF registry predicates are resolved against.
    config:
        Runtime knobs; see :class:`MatcherConfig`.
    compile_cache:
        Optional engine-wide :class:`CompiledPredicateCache` so identical
        predicates across deployed queries share one compiled closure.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        output: str,
        query_name: str = "",
        functions: Optional[FunctionRegistry] = None,
        config: Optional[MatcherConfig] = None,
        compile_cache: Optional[CompiledPredicateCache] = None,
    ) -> None:
        self.pattern = pattern
        self.output = output
        self.query_name = query_name or output
        self.functions = functions or default_functions()
        self.config = config or MatcherConfig()
        self.stats = MatcherStats()
        self._runs: List[_Run] = []
        self._run_counter = 0

        steps = pattern.steps
        self._length = len(steps)
        self._step_streams: Tuple[str, ...] = tuple(step.stream for step in steps)
        self._step_costs: Tuple[int, ...] = tuple(
            step.predicate.predicate_count() or 1 for step in steps
        )
        if self.config.compile_predicates:
            if compile_cache is not None:
                predicates = tuple(compile_cache.compile(step.predicate) for step in steps)
            else:
                predicates = tuple(step.predicate.compile(self.functions) for step in steps)
        else:
            predicates = tuple(self._interpreted(step.predicate) for step in steps)
        self._step_predicates: Tuple[CompiledExpression, ...] = predicates
        self._first_stream = self._step_streams[0]
        self._first_predicate = predicates[0]
        self._relevant_streams = frozenset(self._step_streams)
        # Per-step constraint tables so the hot path never rebuilds lists.
        self._constraints_ending: Tuple[Tuple[Any, ...], ...] = tuple(
            tuple(pattern.constraints_ending_at(i)) for i in range(self._length)
        )
        self._constraints_covering: Tuple[Tuple[Any, ...], ...] = tuple(
            tuple(pattern.constraints_covering(i)) for i in range(self._length)
        )
        self._has_constraints = bool(pattern.constraints)
        # Active runs sit at positions 0..length-2; when any of those is not
        # covered by a constraint, the TTL can govern and batch processing
        # must prune per tuple to stay equivalent to the per-tuple path.
        self._ttl_can_apply = any(
            not self._constraints_covering[i] for i in range(max(self._length - 1, 0))
        )

    # -- introspection -------------------------------------------------------------

    @property
    def active_runs(self) -> int:
        """Number of partial matches currently tracked."""
        return len(self._runs)

    def furthest_step(self) -> int:
        """Index of the furthest step any partial match has reached.

        This is the "how far did my movement get" feedback of the testing
        phase: 0 means no pose has been matched yet, ``len(steps)`` would be
        a full match (which is reported as a detection instead).
        """
        if not self._runs:
            return 0
        return max(run.next_step for run in self._runs)

    def progress(self) -> float:
        """Furthest progress as a fraction of the pattern length."""
        return self.furthest_step() / self.pattern.length

    def reset(self) -> None:
        """Discard all partial matches (used when a query is redeployed)."""
        self._runs.clear()

    # -- matching -----------------------------------------------------------------------

    def process(
        self,
        record: Mapping[str, Any],
        stream: str,
        timestamp: Optional[float] = None,
    ) -> List[Detection]:
        """Feed one tuple; return the detections it completed (possibly none).

        Parameters
        ----------
        record:
            The tuple.
        stream:
            Name of the stream the tuple arrived on; tuples from streams
            that appear nowhere in the pattern short-circuit immediately.
        timestamp:
            Event time; defaults to the tuple's timestamp field.
        """
        self.stats.tuples_processed += 1
        if stream not in self._relevant_streams:
            return []
        if timestamp is None:
            timestamp = float(record.get(self.config.timestamp_field, 0.0))
        self._prune(timestamp)
        detections: List[Detection] = []
        self._process_tuple(record, stream, timestamp, detections)
        return detections

    def process_many(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: str,
    ) -> List[Detection]:
        """Feed a whole recording tuple-at-a-time; return all detections."""
        detections: List[Detection] = []
        for record in records:
            detections.extend(self.process(record, stream))
        return detections

    def process_batch(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: str,
        timestamps: Optional[Sequence[float]] = None,
    ) -> List[Detection]:
        """Feed a chunk of tuples sharing one prune window.

        Expired runs are pruned once, at the batch boundary (using the first
        tuple's timestamp), instead of per tuple; ``within`` constraints are
        still enforced exactly whenever a run advances.  When the TTL can
        govern a run (some step is not covered by any constraint and
        ``run_ttl_seconds`` is set) pruning falls back to per tuple, and
        reaching the run cap mid-batch lazily evicts expired runs before
        suppressing a new one — so with monotone timestamps this produces
        the same detections as calling :meth:`process` per tuple (the
        batched benchmark asserts it).

        Parameters
        ----------
        records:
            The chunk, in arrival order.
        stream:
            Stream all tuples of the chunk arrived on.
        timestamps:
            Optional pre-extracted event times, parallel to ``records``;
            defaults to each tuple's timestamp field.
        """
        self.stats.tuples_processed += len(records)
        if not records or stream not in self._relevant_streams:
            return []
        if timestamps is None:
            timestamp_field = self.config.timestamp_field
            timestamps = [float(r.get(timestamp_field, 0.0)) for r in records]
        detections: List[Detection] = []
        if self._ttl_can_apply and self.config.run_ttl_seconds is not None:
            # TTL expiry is not re-checked on advancement (unlike within
            # constraints), so only per-tuple pruning keeps equivalence.
            for record, timestamp in zip(records, timestamps):
                self._prune(timestamp)
                self._process_tuple(record, stream, timestamp, detections)
            return detections
        self._prune(timestamps[0])
        for record, timestamp in zip(records, timestamps):
            self._process_tuple(record, stream, timestamp, detections)
        return detections

    # -- internals -----------------------------------------------------------------------

    def _interpreted(self, predicate: Expression) -> CompiledExpression:
        """Wrap ``predicate`` in the interpreted evaluation path."""
        functions = self.functions

        def evaluate(record: Mapping[str, Any]) -> bool:
            return bool(predicate.evaluate(record, functions))

        return evaluate

    def _process_tuple(
        self,
        record: Mapping[str, Any],
        stream: str,
        timestamp: float,
        detections: List[Detection],
    ) -> None:
        """Advance runs / start a run for one tuple; append its detections."""
        stats = self.stats
        runs = self._runs
        completed: List[_Run] = []

        # Advance existing runs (each run by at most one step per tuple).
        if runs:
            step_streams = self._step_streams
            step_predicates = self._step_predicates
            step_costs = self._step_costs
            store_tuples = self.config.store_matched_tuples
            for run in list(runs):
                index = run.next_step
                if step_streams[index] != stream:
                    continue
                stats.predicate_evaluations += step_costs[index]
                if not step_predicates[index](record):
                    continue
                if not self._satisfies_constraints(run, timestamp):
                    self._remove_run(run)
                    stats.runs_pruned += 1
                    continue
                run.next_step = index + 1
                run.step_timestamps.append(timestamp)
                if store_tuples:
                    run.matched.append(dict(record))
                if run.next_step >= self._length:
                    completed.append(run)
                    self._remove_run(run)

        # Possibly start a new run from this tuple.
        if stream == self._first_stream:
            stats.predicate_evaluations += self._step_costs[0]
            if self._first_predicate(record):
                if self._length == 1:
                    # A single-step match never occupies a run slot, so the
                    # run cap must not suppress it.
                    completed.append(self._new_run(record, timestamp))
                elif (
                    len(runs) >= self.config.max_active_runs
                    and not self._evict_expired(timestamp)
                ):
                    stats.runs_suppressed += 1
                else:
                    run = self._new_run(record, timestamp)
                    run.index = len(runs)
                    runs.append(run)

        if completed:
            detections.extend(self._report(completed, timestamp))

    def _new_run(self, record: Mapping[str, Any], timestamp: float) -> _Run:
        run = _Run(
            next_step=1,
            start_timestamp=timestamp,
            step_timestamps=[timestamp],
            matched=[dict(record)] if self.config.store_matched_tuples else [],
            sequence_number=self._run_counter,
        )
        self._run_counter += 1
        self.stats.runs_started += 1
        return run

    def _evict_expired(self, timestamp: float) -> bool:
        """At the run cap, prune expired runs; return whether a slot freed up.

        The batched path prunes once per chunk, so expired runs may still
        occupy slots mid-batch; evicting them lazily here keeps cap
        behaviour identical to the per-tuple path (which prunes before
        every tuple).  On the per-tuple path this re-prune is a no-op.
        """
        self._prune(timestamp)
        return len(self._runs) < self.config.max_active_runs

    def _satisfies_constraints(self, run: _Run, timestamp: float) -> bool:
        """Check the ``within`` constraints that end at the step being entered."""
        for constraint in self._constraints_ending[run.next_step]:
            if timestamp - run.step_timestamps[constraint.first] > constraint.seconds:
                return False
        return True

    def _prune(self, timestamp: float) -> None:
        """Drop runs that can no longer complete within their time windows.

        A run inside a ``within`` constraint window is pruned by that
        constraint alone; the TTL fallback applies only while a run sits at
        a step no constraint covers (see :class:`MatcherConfig`), so
        long-window patterns are never cut short while runs at uncovered
        steps still cannot accumulate forever.
        """
        runs = self._runs
        if not runs:
            return
        ttl = self.config.run_ttl_seconds
        if not self._has_constraints and ttl is None:
            return
        covering = self._constraints_covering
        expired: List[_Run] = []
        for run in runs:
            constraints = covering[run.next_step - 1]
            for constraint in constraints:
                if timestamp - run.step_timestamps[constraint.first] > constraint.seconds:
                    expired.append(run)
                    break
            else:
                if not constraints and ttl is not None:
                    if timestamp - run.start_timestamp > ttl:
                        expired.append(run)
        for run in expired:
            self._remove_run(run)
        self.stats.runs_pruned += len(expired)

    def _remove_run(self, run: _Run) -> None:
        """O(1) removal by identity: swap the last run into the freed slot."""
        runs = self._runs
        index = run.index
        if index < 0 or index >= len(runs) or runs[index] is not run:
            return  # already removed (e.g. cleared by consume all)
        last = runs.pop()
        if last is not run:
            runs[index] = last
            last.index = index
        run.index = -1

    def _report(self, completed: List[_Run], timestamp: float) -> List[Detection]:
        completed.sort(key=lambda run: run.sequence_number)
        if self.pattern.select is SelectPolicy.FIRST:
            selected = [completed[0]]
        elif self.pattern.select is SelectPolicy.LAST:
            selected = [completed[-1]]
        else:
            selected = completed

        detections = [
            Detection(
                output=self.output,
                query_name=self.query_name,
                timestamp=timestamp,
                start_timestamp=run.start_timestamp,
                step_timestamps=tuple(run.step_timestamps),
                matched=tuple(run.matched) if self.config.store_matched_tuples else None,
            )
            for run in selected
        ]
        self.stats.detections += len(detections)

        if self.pattern.consume is ConsumePolicy.ALL:
            self._runs.clear()
        return detections
