"""NFA runtime for sequence pattern matching.

The :class:`NFAMatcher` consumes tuples and maintains a set of *runs* —
partial matches, each remembering which step of the compiled pattern it has
reached and when each step was matched.  Semantics follow the paper's match
operator:

* a tuple that satisfies the predicate of a run's next step advances that
  run (each tuple advances a given run by at most one step),
* a tuple that satisfies the first step's predicate additionally starts a
  new run, so a gesture may begin at any time ("skip till next match"),
* ``within`` constraints bound the time between the first and last event of
  the corresponding sequence group; runs that can no longer satisfy a
  constraint are pruned,
* ``select first`` reports a single detection when several runs complete on
  the same tuple; ``select all`` reports all of them,
* ``consume all`` clears every run once a detection fires, so the same
  movement is not reported twice; ``consume none`` keeps partial matches.

Partitioning
------------
A shared sensor space carries the movements of several users at once: every
Kinect tuple declares the ``player`` id that performed it.
``MatcherConfig.partition_field`` (default ``"player"``) keys the run table
by that field, so a run started by one player's tuples can only ever be
advanced, pruned, completed or consumed by tuples of the same player —
matching on N interleaved users behaves exactly like N isolated matchers.
``max_active_runs`` and ``run_ttl_seconds`` apply per partition,
``consume all`` clears only the completing player's runs, and a completed
:class:`Detection` carries the partition value so applications know *who*
gestured.  Tuples missing the field share one partition (key ``None``);
``partition_field=None`` restores the single global run table.  Partitions
hold state only while they have live runs, so idle players cost nothing.

Fast path
---------
Step predicates are lowered to plain Python closures at construction time
(``Expression.compile``); set ``MatcherConfig.compile_predicates=False`` to
fall back to the interpreted ``Expression.evaluate`` walk (the two paths
produce identical detections — the benchmark suite asserts it).  Run
bookkeeping is O(1): runs are removed by *identity* with a swap-pop on the
run table, never by value equality.  Tuples from streams that appear
nowhere in the pattern short-circuit before any predicate is evaluated.

Batched path
------------
:meth:`NFAMatcher.process_batch` feeds a whole chunk of tuples (sharing one
prune window) through the matcher: expired runs are pruned once at the
batch boundary instead of per tuple, while ``within`` constraints are still
enforced exactly on every advancement.  Expired runs that linger mid-batch
cannot change the outcome: advancement past an expired constraint is
rejected when the constraint's span ends, TTL-governed patterns fall back
to per-tuple pruning, and hitting the run cap lazily evicts expired runs
before suppressing a new one — so with monotone timestamps the batched
detections are identical to the per-tuple path's.

Run-cap semantics
-----------------
``max_active_runs`` bounds *partial* matches only.  A tuple completing an
existing run always reports, and a single-step pattern — whose matches
never occupy a run slot — fires even when the table is full; only the start
of a new multi-step run is suppressed at the cap.  ``select``/``consume``
policies apply to the completions of one tuple as usual: ``select first``
reports the oldest completed run, and ``consume all`` clears the completing
partition's run table, including runs started by that same tuple.

The matcher also exposes the live progress information (how far the best
partial match has advanced) that the paper's testing phase visualises to
help users understand why a movement was not detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cep.expressions import (
    CompiledExpression,
    CompiledPredicateCache,
    Expression,
)
from repro.cep.nfa import CompiledPattern
from repro.cep.query import ConsumePolicy, SelectPolicy
from repro.cep.tuples import DEFAULT_PARTITION_FIELD
from repro.cep.udf import FunctionRegistry, default_functions

#: Run-table key used when ``partition_field`` is ``None``: all tuples share
#: one partition, which is exactly the pre-partitioning behaviour.
_UNPARTITIONED = object()

#: Tuples processed between idle-partition sweeps.  Pruning only ever runs
#: against a partition's own tuples, so runs of a player who stopped
#: streaming need this periodic sweep to be reclaimed.
_IDLE_SWEEP_TUPLES = 512


@dataclass
class MatcherConfig:
    """Tuning knobs of the NFA runtime.

    Attributes
    ----------
    max_active_runs:
        Upper bound on simultaneously tracked partial matches *per
        partition*.  A user holding the start pose produces one matching
        tuple per frame; the bound keeps state (and per-tuple cost) constant
        without letting one player's noisy stream starve the others.  When
        the bound is reached no new runs are started in that partition until
        existing ones advance, finish or are pruned.  Completions are never
        suppressed: single-step patterns detect even at the cap because they
        need no run slot.
    run_ttl_seconds:
        Optional hard lifetime for a partial match, applied only while a
        run sits at a step that no ``within`` constraint covers (in
        particular: every step of a pattern with no ``within`` at all).
        Runs inside a constraint window are governed by that constraint
        alone, so long-window patterns are never cut short by the TTL.
        ``None`` disables the TTL.
    store_matched_tuples:
        Whether detections keep the full matched tuples (useful for
        debugging and the Fig. 5 style visual feedback) or only timestamps.
    timestamp_field:
        Tuple field carrying the event time in seconds.
    compile_predicates:
        Lower step predicates to closures at deploy time (default).  When
        false the matcher interprets the expression AST per tuple — slower,
        but byte-identical in behaviour; kept for A/B benchmarking.
    partition_field:
        Tuple field that keys the run table (default ``"player"``, the
        Kinect player id).  Runs advance, prune and consume strictly within
        their own partition, so interleaved multi-user streams detect
        exactly like isolated single-user streams.  Tuples missing the field
        fall into one shared partition; ``None`` disables partitioning
        entirely (one global run table, the pre-partitioning semantics).
        Every stream of a pattern must agree on the field: a run started by
        a player-stamped tuple can only be advanced by tuples carrying the
        same value, so a query mixing streams *with* and *without* the
        field should be deployed with ``partition_field=None``.
    partition_idle_seconds:
        Drop all partial matches of a partition whose newest run activity is
        older than this (measured against the stream's latest event time).
        A player who left the scene mid-gesture otherwise parks runs — and
        stale :meth:`NFAMatcher.furthest_step` feedback — forever, since
        pruning only ever runs against a partition's own tuples.  Pick it
        far above every ``within`` window (players between gestures hold no
        runs at all, so eviction only ever hits abandoned mid-gesture
        state).  ``None`` disables the sweep; unpartitioned matchers never
        sweep (the seed's single-table lifetime rules apply unchanged).
    """

    max_active_runs: int = 256
    run_ttl_seconds: Optional[float] = 10.0
    store_matched_tuples: bool = True
    timestamp_field: str = "ts"
    compile_predicates: bool = True
    partition_field: Optional[str] = DEFAULT_PARTITION_FIELD
    partition_idle_seconds: Optional[float] = 30.0


@dataclass
class Detection:
    """A completed pattern match.

    ``partition`` is the value of the matcher's partition field shared by
    every tuple of the match (the player id on the default configuration);
    ``None`` when the matcher runs unpartitioned or the tuples carried no
    partition field.
    """

    output: str
    query_name: str
    timestamp: float
    start_timestamp: float
    step_timestamps: Tuple[float, ...]
    matched: Optional[Tuple[Mapping[str, Any], ...]] = None
    partition: Any = None

    @property
    def duration(self) -> float:
        """Seconds between the first and the last matched event."""
        return self.timestamp - self.start_timestamp

    def to_state(self) -> Dict[str, Any]:
        """A JSON-serialisable copy (snapshot / event-log format)."""
        return {
            "output": self.output,
            "query_name": self.query_name,
            "timestamp": self.timestamp,
            "start_timestamp": self.start_timestamp,
            "step_timestamps": list(self.step_timestamps),
            "matched": None
            if self.matched is None
            else [dict(record) for record in self.matched],
            "partition": self.partition,
        }

    @staticmethod
    def from_state(state: Mapping[str, Any]) -> "Detection":
        """Rebuild a detection from a :meth:`to_state` copy."""
        matched = state.get("matched")
        return Detection(
            output=str(state["output"]),
            query_name=str(state["query_name"]),
            timestamp=float(state["timestamp"]),
            start_timestamp=float(state["start_timestamp"]),
            step_timestamps=tuple(float(t) for t in state["step_timestamps"]),
            matched=None
            if matched is None
            else tuple(dict(record) for record in matched),
            partition=state.get("partition"),
        )

    def __repr__(self) -> str:
        who = f", player={self.partition!r}" if self.partition is not None else ""
        return (
            f"Detection(output={self.output!r}, t={self.timestamp:.3f}, "
            f"duration={self.duration:.3f}s{who})"
        )


@dataclass(eq=False)
class _Run:
    """One partial match.

    ``eq=False`` keeps identity comparison/hashing: two runs started by
    different users in the same frame carry identical field values, and run
    removal must never confuse them.  ``index`` is the run's slot in the
    matcher's run table, maintained by the swap-pop removal.
    """

    next_step: int
    start_timestamp: float
    step_timestamps: List[float] = field(default_factory=list)
    matched: List[Mapping[str, Any]] = field(default_factory=list)
    sequence_number: int = 0
    index: int = -1

    def progress(self, total_steps: int) -> float:
        return self.next_step / total_steps


@dataclass
class MatcherStats:
    """Counters exposed for the optimisation / throughput benchmarks.

    ``runs_evicted`` counts idle-partition sweep reclamations only; those
    runs are *also* counted in ``runs_pruned`` (the historical aggregate),
    so ``runs_pruned`` keeps its old meaning of "runs discarded for any
    expiry reason".  ``gate_rejections`` counts tuples that arrived on the
    pattern's first stream but failed the first-step predicate — they
    never touched run state, which is exactly what the vectorized-kernel
    work needs to size its gating win.
    """

    tuples_processed: int = 0
    predicate_evaluations: int = 0
    gate_rejections: int = 0
    runs_started: int = 0
    runs_advanced: int = 0
    runs_completed: int = 0
    runs_pruned: int = 0
    runs_evicted: int = 0
    runs_suppressed: int = 0
    detections: int = 0

    def reset(self) -> None:
        self.tuples_processed = 0
        self.predicate_evaluations = 0
        self.gate_rejections = 0
        self.runs_started = 0
        self.runs_advanced = 0
        self.runs_completed = 0
        self.runs_pruned = 0
        self.runs_evicted = 0
        self.runs_suppressed = 0
        self.detections = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-number copy, keyed like the ``/metrics`` query families."""
        return {
            "tuples_processed": self.tuples_processed,
            "predicate_evaluations": self.predicate_evaluations,
            "gate_rejections": self.gate_rejections,
            "runs_started": self.runs_started,
            "runs_advanced": self.runs_advanced,
            "runs_completed": self.runs_completed,
            "runs_pruned": self.runs_pruned,
            "runs_evicted": self.runs_evicted,
            "runs_suppressed": self.runs_suppressed,
            "detections": self.detections,
        }


class NFAMatcher:
    """Evaluates one compiled gesture pattern against a tuple stream.

    Parameters
    ----------
    pattern:
        The flattened NFA description.
    output / query_name:
        Detection labels.
    functions:
        UDF registry predicates are resolved against.
    config:
        Runtime knobs; see :class:`MatcherConfig`.
    compile_cache:
        Optional engine-wide :class:`CompiledPredicateCache` so identical
        predicates across deployed queries share one compiled closure.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        output: str,
        query_name: str = "",
        functions: Optional[FunctionRegistry] = None,
        config: Optional[MatcherConfig] = None,
        compile_cache: Optional[CompiledPredicateCache] = None,
    ) -> None:
        self.pattern = pattern
        self.output = output
        self.query_name = query_name or output
        self.functions = functions or default_functions()
        self.config = config or MatcherConfig()
        self.stats = MatcherStats()
        # Run tables keyed by partition value (player id).  Entries exist
        # only while a partition has live runs, so idle players cost nothing.
        self._partitions: Dict[Any, List[_Run]] = {}
        self._partition_field = self.config.partition_field
        self._run_counter = 0
        self._tuples_since_sweep = 0

        steps = pattern.steps
        self._length = len(steps)
        self._step_streams: Tuple[str, ...] = tuple(step.stream for step in steps)
        self._step_costs: Tuple[int, ...] = tuple(
            step.predicate.predicate_count() or 1 for step in steps
        )
        if self.config.compile_predicates:
            if compile_cache is not None:
                predicates = tuple(compile_cache.compile(step.predicate) for step in steps)
            else:
                predicates = tuple(step.predicate.compile(self.functions) for step in steps)
        else:
            predicates = tuple(self._interpreted(step.predicate) for step in steps)
        self._step_predicates: Tuple[CompiledExpression, ...] = predicates
        self._first_stream = self._step_streams[0]
        self._first_predicate = predicates[0]
        self._relevant_streams = frozenset(self._step_streams)
        # Per-step constraint tables so the hot path never rebuilds lists.
        self._constraints_ending: Tuple[Tuple[Any, ...], ...] = tuple(
            tuple(pattern.constraints_ending_at(i)) for i in range(self._length)
        )
        self._constraints_covering: Tuple[Tuple[Any, ...], ...] = tuple(
            tuple(pattern.constraints_covering(i)) for i in range(self._length)
        )
        self._has_constraints = bool(pattern.constraints)
        # Active runs sit at positions 0..length-2; when any of those is not
        # covered by a constraint, the TTL can govern and batch processing
        # must prune per tuple to stay equivalent to the per-tuple path.
        self._ttl_can_apply = any(
            not self._constraints_covering[i] for i in range(max(self._length - 1, 0))
        )

    # -- introspection -------------------------------------------------------------

    @property
    def active_runs(self) -> int:
        """Number of partial matches currently tracked, over all partitions."""
        return sum(len(runs) for runs in self._partitions.values())

    @property
    def active_partitions(self) -> int:
        """Number of partitions (players) with at least one partial match."""
        return len(self._partitions)

    def partition_keys(self) -> List[Any]:
        """Partition values that currently hold partial matches."""
        return [
            None if key is _UNPARTITIONED else key for key in self._partitions
        ]

    def furthest_step(self, partition: Any = _UNPARTITIONED) -> int:
        """Index of the furthest step any partial match has reached.

        This is the "how far did my movement get" feedback of the testing
        phase: 0 means no pose has been matched yet, ``len(steps)`` would be
        a full match (which is reported as a detection instead).  Pass
        ``partition`` to restrict the answer to one player; the default
        looks across all partitions.
        """
        if partition is _UNPARTITIONED and self._partition_field is not None:
            tables: Sequence[List[_Run]] = list(self._partitions.values())
        else:
            key = partition if self._partition_field is not None else _UNPARTITIONED
            runs = self._partitions.get(key)
            tables = [runs] if runs else []
        best = 0
        for runs in tables:
            for run in runs:
                if run.next_step > best:
                    best = run.next_step
        return best

    def progress(self, partition: Any = _UNPARTITIONED) -> float:
        """Furthest progress as a fraction of the pattern length."""
        return self.furthest_step(partition) / self.pattern.length

    def reset(self) -> None:
        """Discard all partial matches (used when a query is redeployed)."""
        self._partitions.clear()

    # -- state capture / restore --------------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Snapshot the full run state as a JSON-serialisable dictionary.

        Everything the matcher would need to continue *exactly* where it
        is: the per-partition run tables (step positions, timestamps and
        matched tuples by value, never by object identity), the run
        sequence counter (detection ordering under ``select first/last``
        depends on it), the idle-sweep phase, and the stats counters.
        Restoring the captured state into a matcher compiled from the same
        query text makes every subsequent detection byte-identical to an
        uninterrupted run — the recovery tests assert it on the
        interpreted, compiled and batched paths.

        Raises
        ------
        repro.errors.SerializationError
            If a partition key is not a JSON value (the default ``player``
            ids — ints, floats, strings — always are).
        """
        partitions = []
        for key, runs in self._partitions.items():
            if key is _UNPARTITIONED:
                encoded_key: Dict[str, Any] = {"unpartitioned": True}
            else:
                if key is not None and not isinstance(key, (str, int, float, bool)):
                    from repro.errors import SerializationError

                    raise SerializationError(
                        f"partition key {key!r} of query "
                        f"'{self.query_name}' is not JSON-serialisable; "
                        f"snapshots require scalar partition values"
                    )
                encoded_key = {"value": key}
            partitions.append(
                {
                    "key": encoded_key,
                    "runs": [
                        {
                            "next_step": run.next_step,
                            "start_timestamp": run.start_timestamp,
                            "step_timestamps": list(run.step_timestamps),
                            "matched": [dict(record) for record in run.matched],
                            "sequence_number": run.sequence_number,
                        }
                        for run in runs
                    ],
                }
            )
        stats = self.stats
        return {
            "kind": "nfa-matcher",
            "query_name": self.query_name,
            "run_counter": self._run_counter,
            "tuples_since_sweep": self._tuples_since_sweep,
            "stats": {
                "tuples_processed": stats.tuples_processed,
                "predicate_evaluations": stats.predicate_evaluations,
                "gate_rejections": stats.gate_rejections,
                "runs_started": stats.runs_started,
                "runs_advanced": stats.runs_advanced,
                "runs_completed": stats.runs_completed,
                "runs_pruned": stats.runs_pruned,
                "runs_evicted": stats.runs_evicted,
                "runs_suppressed": stats.runs_suppressed,
                "detections": stats.detections,
            },
            "partitions": partitions,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Replace the run state with a :meth:`capture_state` snapshot.

        The matcher must have been built from the same pattern the
        snapshot was taken from (recovery redeploys the captured query
        text before restoring); predicates, constraints and configuration
        are *not* part of the state.
        """
        if state.get("kind") != "nfa-matcher":
            from repro.errors import SerializationError

            raise SerializationError(
                f"cannot restore query '{self.query_name}' from a "
                f"{state.get('kind')!r} state blob"
            )
        partitions: Dict[Any, List[_Run]] = {}
        for entry in state["partitions"]:
            encoded_key = entry["key"]
            key = _UNPARTITIONED if encoded_key.get("unpartitioned") else encoded_key["value"]
            runs: List[_Run] = []
            for run_state in entry["runs"]:
                run = _Run(
                    next_step=int(run_state["next_step"]),
                    start_timestamp=float(run_state["start_timestamp"]),
                    step_timestamps=[float(t) for t in run_state["step_timestamps"]],
                    matched=[dict(record) for record in run_state["matched"]],
                    sequence_number=int(run_state["sequence_number"]),
                    index=len(runs),
                )
                runs.append(run)
            if runs:
                partitions[key] = runs
        self._partitions = partitions
        self._run_counter = int(state["run_counter"])
        self._tuples_since_sweep = int(state["tuples_since_sweep"])
        stats_state = state.get("stats")
        if stats_state:
            self.stats.tuples_processed = int(stats_state["tuples_processed"])
            self.stats.predicate_evaluations = int(stats_state["predicate_evaluations"])
            self.stats.runs_started = int(stats_state["runs_started"])
            self.stats.runs_pruned = int(stats_state["runs_pruned"])
            self.stats.runs_suppressed = int(stats_state["runs_suppressed"])
            self.stats.detections = int(stats_state["detections"])
            # Counters added after PR 5's snapshot format: default to zero
            # so snapshots written by older builds still restore.
            self.stats.gate_rejections = int(stats_state.get("gate_rejections", 0))
            self.stats.runs_advanced = int(stats_state.get("runs_advanced", 0))
            self.stats.runs_completed = int(stats_state.get("runs_completed", 0))
            self.stats.runs_evicted = int(stats_state.get("runs_evicted", 0))

    # -- matching -----------------------------------------------------------------------

    def process(
        self,
        record: Mapping[str, Any],
        stream: str,
        timestamp: Optional[float] = None,
    ) -> List[Detection]:
        """Feed one tuple; return the detections it completed (possibly none).

        Parameters
        ----------
        record:
            The tuple.
        stream:
            Name of the stream the tuple arrived on; tuples from streams
            that appear nowhere in the pattern short-circuit immediately.
        timestamp:
            Event time; defaults to the tuple's timestamp field.
        """
        self.stats.tuples_processed += 1
        if stream not in self._relevant_streams:
            return []
        if timestamp is None:
            timestamp = float(record.get(self.config.timestamp_field, 0.0))
        key = self._partition_key(record)
        runs = self._partitions.get(key)
        if runs:
            self._prune(runs, timestamp)
        detections: List[Detection] = []
        self._process_tuple(record, stream, timestamp, key, detections)
        self._maybe_sweep(1, timestamp)
        return detections

    def process_many(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: str,
    ) -> List[Detection]:
        """Feed a whole recording tuple-at-a-time; return all detections."""
        detections: List[Detection] = []
        for record in records:
            detections.extend(self.process(record, stream))
        return detections

    def process_batch(
        self,
        records: Sequence[Mapping[str, Any]],
        stream: str,
        timestamps: Optional[Sequence[float]] = None,
    ) -> List[Detection]:
        """Feed a chunk of tuples sharing one prune window.

        Expired runs are pruned once per partition, when the batch first
        touches that partition, instead of per tuple; ``within`` constraints
        are still enforced exactly whenever a run advances.  When the TTL
        can govern a run (some step is not covered by any constraint and
        ``run_ttl_seconds`` is set) pruning falls back to per tuple, and
        reaching the run cap mid-batch lazily evicts expired runs before
        suppressing a new one — so with monotone timestamps this produces
        the same detections as calling :meth:`process` per tuple (the
        batched benchmarks assert it, single- and multi-user).

        Parameters
        ----------
        records:
            The chunk, in arrival order.
        stream:
            Stream all tuples of the chunk arrived on.
        timestamps:
            Optional pre-extracted event times, parallel to ``records``;
            defaults to each tuple's timestamp field.
        """
        self.stats.tuples_processed += len(records)
        if not records or stream not in self._relevant_streams:
            return []
        if timestamps is None:
            timestamp_field = self.config.timestamp_field
            timestamps = [float(r.get(timestamp_field, 0.0)) for r in records]
        detections: List[Detection] = []
        if self._ttl_can_apply and self.config.run_ttl_seconds is not None:
            # TTL expiry is not re-checked on advancement (unlike within
            # constraints), so only per-tuple pruning keeps equivalence.
            for record, timestamp in zip(records, timestamps):
                key = self._partition_key(record)
                runs = self._partitions.get(key)
                if runs:
                    self._prune(runs, timestamp)
                self._process_tuple(record, stream, timestamp, key, detections)
            self._maybe_sweep(len(records), timestamps[-1])
            return detections
        pruned: set = set()
        for record, timestamp in zip(records, timestamps):
            key = self._partition_key(record)
            if key not in pruned:
                pruned.add(key)
                runs = self._partitions.get(key)
                if runs:
                    self._prune(runs, timestamp)
            self._process_tuple(record, stream, timestamp, key, detections)
        self._maybe_sweep(len(records), timestamps[-1])
        return detections

    # -- internals -----------------------------------------------------------------------

    def _interpreted(self, predicate: Expression) -> CompiledExpression:
        """Wrap ``predicate`` in the interpreted evaluation path."""
        functions = self.functions

        def evaluate(record: Mapping[str, Any]) -> bool:
            return bool(predicate.evaluate(record, functions))

        return evaluate

    def _partition_key(self, record: Mapping[str, Any]) -> Any:
        """Run-table key of a tuple (``_UNPARTITIONED`` when partitioning is off)."""
        if self._partition_field is None:
            return _UNPARTITIONED
        return record.get(self._partition_field)

    def _process_tuple(
        self,
        record: Mapping[str, Any],
        stream: str,
        timestamp: float,
        key: Any,
        detections: List[Detection],
    ) -> None:
        """Advance runs / start a run for one tuple; append its detections.

        Only the tuple's own partition is touched: other players' runs are
        invisible to this tuple.
        """
        stats = self.stats
        partitions = self._partitions
        runs = partitions.get(key)
        completed: List[_Run] = []

        # Advance existing runs (each run by at most one step per tuple).
        if runs:
            step_streams = self._step_streams
            step_predicates = self._step_predicates
            step_costs = self._step_costs
            store_tuples = self.config.store_matched_tuples
            for run in list(runs):
                index = run.next_step
                if step_streams[index] != stream:
                    continue
                stats.predicate_evaluations += step_costs[index]
                if not step_predicates[index](record):
                    continue
                if not self._satisfies_constraints(run, timestamp):
                    self._remove_run(runs, run)
                    stats.runs_pruned += 1
                    continue
                run.next_step = index + 1
                run.step_timestamps.append(timestamp)
                stats.runs_advanced += 1
                if store_tuples:
                    run.matched.append(dict(record))
                if run.next_step >= self._length:
                    completed.append(run)
                    self._remove_run(runs, run)

        # Possibly start a new run from this tuple.
        if stream == self._first_stream:
            stats.predicate_evaluations += self._step_costs[0]
            if not self._first_predicate(record):
                stats.gate_rejections += 1
            else:
                if self._length == 1:
                    # A single-step match never occupies a run slot, so the
                    # run cap must not suppress it.
                    completed.append(self._new_run(record, timestamp))
                else:
                    if runs is None:
                        runs = partitions.setdefault(key, [])
                    if (
                        len(runs) >= self.config.max_active_runs
                        and not self._evict_expired(runs, timestamp)
                    ):
                        stats.runs_suppressed += 1
                    else:
                        run = self._new_run(record, timestamp)
                        run.index = len(runs)
                        runs.append(run)

        if completed:
            stats.runs_completed += len(completed)
            detections.extend(self._report(key, completed, timestamp))
        # Drop emptied partitions so the table only tracks live players.
        if runs is not None and not runs:
            partitions.pop(key, None)

    def _new_run(self, record: Mapping[str, Any], timestamp: float) -> _Run:
        run = _Run(
            next_step=1,
            start_timestamp=timestamp,
            step_timestamps=[timestamp],
            matched=[dict(record)] if self.config.store_matched_tuples else [],
            sequence_number=self._run_counter,
        )
        self._run_counter += 1
        self.stats.runs_started += 1
        return run

    def _maybe_sweep(self, count: int, now: float) -> None:
        """Periodically drop partitions of players who stopped streaming.

        A partition is only ever pruned by its own tuples, so a player who
        leaves the scene mid-gesture would park runs (and stale progress
        feedback) forever.  Every ``_IDLE_SWEEP_TUPLES`` tuples, partitions
        whose newest run activity lags the stream's event time by more than
        ``partition_idle_seconds`` are reclaimed.  Unpartitioned matchers
        never sweep — the single table keeps the seed's lifetime rules.
        """
        self._tuples_since_sweep += count
        if self._tuples_since_sweep < _IDLE_SWEEP_TUPLES:
            return
        self._tuples_since_sweep = 0
        idle = self.config.partition_idle_seconds
        if idle is None or self._partition_field is None:
            return
        stale = [
            key
            for key, runs in self._partitions.items()
            if now - max(run.step_timestamps[-1] for run in runs) > idle
        ]
        for key in stale:
            reclaimed = len(self._partitions.pop(key))
            self.stats.runs_pruned += reclaimed
            self.stats.runs_evicted += reclaimed

    def _evict_expired(self, runs: List[_Run], timestamp: float) -> bool:
        """At the run cap, prune expired runs; return whether a slot freed up.

        The batched path prunes once per chunk, so expired runs may still
        occupy slots mid-batch; evicting them lazily here keeps cap
        behaviour identical to the per-tuple path (which prunes before
        every tuple).  On the per-tuple path this re-prune is a no-op.
        """
        self._prune(runs, timestamp)
        return len(runs) < self.config.max_active_runs

    def _satisfies_constraints(self, run: _Run, timestamp: float) -> bool:
        """Check the ``within`` constraints that end at the step being entered."""
        # Explicit loop, not all(...): runs once per candidate tuple per run.
        for constraint in self._constraints_ending[run.next_step]:  # noqa: SIM110
            if timestamp - run.step_timestamps[constraint.first] > constraint.seconds:
                return False
        return True

    def _prune(self, runs: List[_Run], timestamp: float) -> None:
        """Drop one partition's runs that can no longer complete in time.

        A run inside a ``within`` constraint window is pruned by that
        constraint alone; the TTL fallback applies only while a run sits at
        a step no constraint covers (see :class:`MatcherConfig`), so
        long-window patterns are never cut short while runs at uncovered
        steps still cannot accumulate forever.  Pruning happens with the
        partition's own event time, never another player's, so interleaving
        cannot change when a run expires.
        """
        ttl = self.config.run_ttl_seconds
        if not self._has_constraints and ttl is None:
            return
        covering = self._constraints_covering
        expired: List[_Run] = []
        for run in runs:
            constraints = covering[run.next_step - 1]
            for constraint in constraints:
                if timestamp - run.step_timestamps[constraint.first] > constraint.seconds:
                    expired.append(run)
                    break
            else:
                if (
                    not constraints
                    and ttl is not None
                    and timestamp - run.start_timestamp > ttl
                ):
                    expired.append(run)
        # Emptied partitions are dropped by _process_tuple's cleanup (pruning
        # is always followed by processing a tuple of the same partition);
        # popping here would orphan the list _process_tuple still appends to.
        for run in expired:
            self._remove_run(runs, run)
        self.stats.runs_pruned += len(expired)

    def _remove_run(self, runs: List[_Run], run: _Run) -> None:
        """O(1) removal by identity: swap the last run into the freed slot."""
        index = run.index
        if index < 0 or index >= len(runs) or runs[index] is not run:
            return  # already removed (e.g. cleared by consume all)
        last = runs.pop()
        if last is not run:
            runs[index] = last
            last.index = index
        run.index = -1

    def _report(
        self, key: Any, completed: List[_Run], timestamp: float
    ) -> List[Detection]:
        completed.sort(key=lambda run: run.sequence_number)
        if self.pattern.select is SelectPolicy.FIRST:
            selected = [completed[0]]
        elif self.pattern.select is SelectPolicy.LAST:
            selected = [completed[-1]]
        else:
            selected = completed

        partition = None if key is _UNPARTITIONED else key
        detections = [
            Detection(
                output=self.output,
                query_name=self.query_name,
                timestamp=timestamp,
                start_timestamp=run.start_timestamp,
                step_timestamps=tuple(run.step_timestamps),
                matched=tuple(run.matched) if self.config.store_matched_tuples else None,
                partition=partition,
            )
            for run in selected
        ]
        self.stats.detections += len(detections)

        if self.pattern.consume is ConsumePolicy.ALL:
            # Consumption is per player: only the completing partition's
            # partial matches are discarded.
            runs = self._partitions.get(key)
            if runs:
                for run in runs:
                    run.index = -1
                runs.clear()
        return detections
