"""Derived streams (views).

The paper defines a ``kinect_t`` view that applies the whole
user-independent transformation "on-the-fly when new training samples are
recorded" so that "only a single step needs to be performed on the incoming
data stream" (Sec. 3.2).  A :class:`View` here is exactly that: a derived
stream computed by applying a per-tuple function to a source stream.
:func:`install_kinect_view` wires the standard transformation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import for type hints only
    from repro.cep.engine import CEPEngine

from repro.streams.stream import Stream, Subscription
from repro.transform.pipeline import KinectTransformer, TransformConfig

#: Sentinel distinguishing "parameter not given" from an explicit ``None``.
_UNSET: Any = object()

#: Default names of the raw and transformed Kinect streams.
RAW_STREAM_NAME = "kinect"
TRANSFORMED_STREAM_NAME = "kinect_t"


class View:
    """A derived stream: ``output = function(tuple)`` for every source tuple."""

    def __init__(
        self,
        name: str,
        source: Stream,
        output: Stream,
        function: Callable[[Mapping[str, Any]], Mapping[str, Any]],
    ) -> None:
        self.name = name
        self.source = source
        self.output = output
        self.function = function
        self.tuples_processed = 0
        self._subscription: Optional[Subscription] = None

    def start(self) -> None:
        if self._subscription is None:
            self._subscription = self.source.subscribe(
                self._on_tuple, name=self.name, batch_callback=self._on_batch
            )

    def stop(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    @property
    def active(self) -> bool:
        return self._subscription is not None

    def _on_tuple(self, record: Mapping[str, Any]) -> None:
        self.tuples_processed += 1
        self.output.push(self.function(record))

    def _on_batch(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Batch delivery: transform the chunk and forward it as one chunk."""
        self.tuples_processed += len(records)
        self.output.push_batch([self.function(record) for record in records])

    def __repr__(self) -> str:
        return (
            f"View(name={self.name!r}, source={self.source.name!r}, "
            f"output={self.output.name!r}, processed={self.tuples_processed})"
        )


def install_kinect_view(
    engine: "CEPEngine",
    transform_config: Optional[TransformConfig] = None,
    raw_name: str = RAW_STREAM_NAME,
    view_name: str = TRANSFORMED_STREAM_NAME,
    partition_field: Optional[str] = _UNSET,
) -> View:
    """Create the raw Kinect stream and its transformed ``kinect_t`` view.

    Registers two streams with the engine (if not present yet) and installs
    the transformation view between them.  Returns the installed view; its
    transformer is available as ``view.function`` (a
    :class:`~repro.transform.pipeline.KinectTransformer`).

    The transformer keeps its smoothed forearm scale per tracked player
    (``transform_config.partition_field``, default ``"player"``) so
    concurrent users in one sensor space never blend scale factors; the
    ``player`` and ``ts`` fields pass through the transformation unchanged,
    which is what lets deployed queries partition their run tables on the
    transformed stream.  ``partition_field`` here overrides the config's
    value (pass ``None`` explicitly for one shared smoothing state).
    """
    if raw_name not in engine.streams:
        engine.create_stream(raw_name)
    config = transform_config
    if partition_field is not _UNSET:
        config = replace(config or TransformConfig(), partition_field=partition_field)
    transformer = KinectTransformer(config)
    return engine.register_view(view_name, raw_name, transformer)
