"""The CEP engine: streams, views, deployed queries and sinks.

:class:`CEPEngine` plays the role of AnduIN in the paper's architecture
(Fig. 2): sensor measurements are pushed into the raw ``kinect`` stream, the
``kinect_t`` view transforms them on the fly, and every deployed gesture
query runs an NFA matcher on its input streams.  Detections are delivered to
the sinks attached to the query (by default a
:class:`~repro.cep.sinks.CollectingSink` that applications can poll).

Queries can be registered either as parsed :class:`~repro.cep.query.Query`
objects (what the learning pipeline produces) or as query text in the
paper's dialect (what an end user might paste for manual fine tuning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.cep.matcher import Detection, MatcherConfig, NFAMatcher
from repro.cep.nfa import compile_pattern
from repro.cep.parser import parse_query
from repro.cep.query import Query
from repro.cep.sinks import CollectingSink, FanOutSink, Sink
from repro.cep.udf import FunctionRegistry, default_functions
from repro.cep.views import View
from repro.errors import QueryRegistrationError, UnknownStreamError
from repro.streams.clock import Clock, SimulatedClock
from repro.streams.stream import Stream, StreamRegistry, Subscription


@dataclass
class DeployedQuery:
    """A query running inside the engine."""

    query: Query
    matcher: NFAMatcher
    sink: FanOutSink
    collector: CollectingSink
    subscriptions: List[Subscription] = field(default_factory=list)
    enabled: bool = True

    @property
    def name(self) -> str:
        return self.query.registration_name

    def detections(self) -> List[Detection]:
        """All detections collected so far for this query."""
        return list(self.collector.detections)

    def clear_detections(self) -> None:
        self.collector.clear()

    def progress(self) -> float:
        """Partial-match progress (Fig. 5 style feedback)."""
        return self.matcher.progress()

    def __repr__(self) -> str:
        return (
            f"DeployedQuery(name={self.name!r}, events={self.query.event_count()}, "
            f"detections={len(self.collector)})"
        )


class CEPEngine:
    """A single-node complex event processing engine.

    Parameters
    ----------
    clock:
        Time source used when tuples carry no timestamp.
    matcher_config:
        Default NFA runtime configuration applied to deployed queries.

    Examples
    --------
    >>> engine = CEPEngine()
    >>> _ = engine.create_stream("kinect_t")
    >>> deployed = engine.register_query(
    ...     'SELECT "hands_up" MATCHING kinect_t(rhand_y > 400);'
    ... )
    >>> engine.push("kinect_t", {"ts": 0.0, "rhand_y": 500.0})
    >>> [d.output for d in deployed.detections()]
    ['hands_up']
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        matcher_config: Optional[MatcherConfig] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.matcher_config = matcher_config or MatcherConfig()
        self.streams = StreamRegistry()
        self.functions = default_functions()
        self._queries: Dict[str, DeployedQuery] = {}
        self._views: Dict[str, View] = {}
        self.tuples_processed = 0

    # -- stream management ---------------------------------------------------------

    def create_stream(self, name: str, fields: Optional[Iterable[str]] = None) -> Stream:
        """Create and register a new stream."""
        return self.streams.create(name, fields=fields)

    def get_stream(self, name: str) -> Stream:
        return self.streams.get(name)

    def push(self, stream_name: str, record: Mapping[str, Any]) -> None:
        """Push one tuple into a registered stream."""
        self.tuples_processed += 1
        self.streams.get(stream_name).push(record)

    def push_many(self, stream_name: str, records: Iterable[Mapping[str, Any]]) -> int:
        """Push many tuples; returns the number pushed."""
        stream = self.streams.get(stream_name)
        count = 0
        for record in records:
            stream.push(record)
            count += 1
        self.tuples_processed += count
        return count

    # -- views ----------------------------------------------------------------------

    def register_view(
        self,
        name: str,
        source: Union[str, Stream],
        function: Callable[[Mapping[str, Any]], Mapping[str, Any]],
    ) -> View:
        """Register a derived stream computed from ``source`` tuple by tuple."""
        source_stream = self.streams.get(source) if isinstance(source, str) else source
        if name in self.streams:
            output_stream = self.streams.get(name)
        else:
            output_stream = self.streams.create(name)
        view = View(name=name, source=source_stream, output=output_stream, function=function)
        view.start()
        self._views[name] = view
        return view

    def get_view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise UnknownStreamError(f"no view named '{name}' is installed") from None

    @property
    def views(self) -> Dict[str, View]:
        return dict(self._views)

    # -- UDFs --------------------------------------------------------------------------

    def register_function(self, name: str, function: Callable[..., Any], arity: Optional[int] = None) -> None:
        """Register a user-defined function for use in query expressions."""
        self.functions.register(name, function, arity)

    # -- query management ----------------------------------------------------------------

    def register_query(
        self,
        query: Union[str, Query],
        name: Optional[str] = None,
        sink: Optional[Sink] = None,
        matcher_config: Optional[MatcherConfig] = None,
        create_missing_streams: bool = False,
    ) -> DeployedQuery:
        """Deploy a gesture query.

        Parameters
        ----------
        query:
            A parsed :class:`Query` or query text in the paper's dialect.
        name:
            Registration name; defaults to the query's output value.
        sink:
            Optional additional sink; a collecting sink is always attached.
        matcher_config:
            Per-query override of the NFA runtime configuration.
        create_missing_streams:
            If true, streams referenced by the query that do not exist yet
            are created on the fly (convenient in tests).

        Raises
        ------
        QueryRegistrationError
            If a query with the same name is already deployed.
        UnknownStreamError
            If the query references an unregistered stream and
            ``create_missing_streams`` is false.
        """
        if isinstance(query, str):
            query = parse_query(query)
        registration_name = name or query.registration_name
        if registration_name in self._queries:
            raise QueryRegistrationError(
                f"a query named '{registration_name}' is already registered"
            )

        referenced = sorted(query.streams())
        for stream_name in referenced:
            if stream_name not in self.streams:
                if create_missing_streams:
                    self.streams.create(stream_name)
                else:
                    raise UnknownStreamError(
                        f"query '{registration_name}' references unknown stream "
                        f"'{stream_name}'; create it or pass create_missing_streams=True"
                    )

        compiled = compile_pattern(query.pattern)
        matcher = NFAMatcher(
            pattern=compiled,
            output=query.output,
            query_name=registration_name,
            functions=self.functions,
            config=matcher_config or self.matcher_config,
        )
        collector = CollectingSink()
        fan_out = FanOutSink([collector])
        if sink is not None:
            fan_out.add(sink)

        deployed = DeployedQuery(
            query=query, matcher=matcher, sink=fan_out, collector=collector
        )

        for stream_name in referenced:
            stream = self.streams.get(stream_name)
            subscription = stream.subscribe(
                self._make_handler(deployed, stream_name),
                name=f"query:{registration_name}",
            )
            deployed.subscriptions.append(subscription)

        self._queries[registration_name] = deployed
        return deployed

    def _make_handler(
        self, deployed: DeployedQuery, stream_name: str
    ) -> Callable[[Mapping[str, Any]], None]:
        def handle(record: Mapping[str, Any]) -> None:
            if not deployed.enabled:
                return
            timestamp = record.get("ts")
            detections = deployed.matcher.process(
                record,
                stream_name,
                timestamp=float(timestamp) if timestamp is not None else self.clock.now(),
            )
            for detection in detections:
                deployed.sink.emit(detection)

        return handle

    def unregister_query(self, name: str) -> None:
        """Remove a deployed query and detach it from its streams."""
        deployed = self._queries.pop(name, None)
        if deployed is None:
            raise QueryRegistrationError(f"no query named '{name}' is registered")
        for subscription in deployed.subscriptions:
            subscription.cancel()
        deployed.subscriptions.clear()

    def get_query(self, name: str) -> DeployedQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise QueryRegistrationError(f"no query named '{name}' is registered") from None

    def query_names(self) -> List[str]:
        return sorted(self._queries)

    @property
    def queries(self) -> Dict[str, DeployedQuery]:
        return dict(self._queries)

    def enable_query(self, name: str, enabled: bool = True) -> None:
        """Pause or resume a deployed query without removing it."""
        self.get_query(name).enabled = enabled

    # -- detections -----------------------------------------------------------------------

    def detections(self, name: Optional[str] = None) -> List[Detection]:
        """All detections of one query, or of all queries in time order."""
        if name is not None:
            return self.get_query(name).detections()
        merged: List[Detection] = []
        for deployed in self._queries.values():
            merged.extend(deployed.collector.detections)
        merged.sort(key=lambda detection: detection.timestamp)
        return merged

    def clear_detections(self) -> None:
        for deployed in self._queries.values():
            deployed.clear_detections()

    def reset_matchers(self) -> None:
        """Discard all partial matches of every deployed query."""
        for deployed in self._queries.values():
            deployed.matcher.reset()

    def __repr__(self) -> str:
        return (
            f"CEPEngine(streams={self.streams.names()}, "
            f"queries={self.query_names()}, tuples={self.tuples_processed})"
        )
