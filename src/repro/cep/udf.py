"""User-defined functions (UDFs) for the expression language.

The paper registers the Roll-Pitch-Yaw operators as user-defined operators
in AnduIN so queries can express rotational movements directly; this module
provides the equivalent registry.  The default registry contains:

``abs``, ``sqrt``, ``min``, ``max``
    numeric helpers used by generated range predicates,
``dist(x1, y1, z1, x2, y2, z2)``
    Euclidean distance — the paper uses it to compute the forearm-length
    scale factor,
``roll / pitch / yaw (x1, y1, z1, x2, y2, z2)``
    RPY angles of the vector between two points (degrees).

Applications can register additional functions on an engine's registry;
they become available in every query deployed afterwards.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExpressionError, UnknownFunctionError

UDF = Callable[..., Any]


class FunctionRegistry:
    """Name → callable registry with arity checking."""

    def __init__(self) -> None:
        self._functions: Dict[str, UDF] = {}
        self._arity: Dict[str, Optional[int]] = {}

    def register(self, name: str, function: UDF, arity: Optional[int] = None) -> None:
        """Register ``function`` under ``name`` (case-insensitive).

        Parameters
        ----------
        name:
            Function name as used in query text.
        function:
            The Python callable.
        arity:
            Expected number of arguments, or ``None`` for variadic.
        """
        if not name:
            raise ExpressionError("function name must be non-empty")
        self._functions[name.lower()] = function
        self._arity[name.lower()] = arity

    def has(self, name: str) -> bool:
        return name.lower() in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)

    def call(self, name: str, arguments: Sequence[Any]) -> Any:
        """Invoke the function registered under ``name``."""
        key = name.lower()
        if key not in self._functions:
            raise UnknownFunctionError(
                f"unknown function '{name}'; registered: {self.names()}"
            )
        expected = self._arity[key]
        if expected is not None and len(arguments) != expected:
            raise ExpressionError(
                f"function '{name}' expects {expected} arguments, "
                f"got {len(arguments)}"
            )
        return self._functions[key](*arguments)

    def resolve(self, name: str, arity: Optional[int] = None) -> UDF:
        """Return the raw callable for ``name``, validating ``arity`` once.

        Used by expression compilation so the per-call path skips the
        registry lookup and the arity check entirely.
        """
        key = name.lower()
        if key not in self._functions:
            raise UnknownFunctionError(
                f"unknown function '{name}'; registered: {self.names()}"
            )
        expected = self._arity[key]
        if arity is not None and expected is not None and arity != expected:
            raise ExpressionError(
                f"function '{name}' expects {expected} arguments, "
                f"got {arity}"
            )
        return self._functions[key]

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        clone._arity = dict(self._arity)
        return clone


def _dist(x1: float, y1: float, z1: float, x2: float, y2: float, z2: float) -> float:
    return math.sqrt((x2 - x1) ** 2 + (y2 - y1) ** 2 + (z2 - z1) ** 2)


def _rpy(x1: float, y1: float, z1: float, x2: float, y2: float, z2: float):
    from repro.transform.rotation import roll_pitch_yaw

    return roll_pitch_yaw((x1, y1, z1), (x2, y2, z2))


def _roll(*args: float) -> float:
    return _rpy(*args)[0]


def _pitch(*args: float) -> float:
    return _rpy(*args)[1]


def _yaw(*args: float) -> float:
    return _rpy(*args)[2]


def default_functions() -> FunctionRegistry:
    """Return a registry pre-populated with the engine's built-in functions."""
    registry = FunctionRegistry()
    registry.register("abs", abs, arity=1)
    registry.register("sqrt", math.sqrt, arity=1)
    registry.register("min", min, arity=None)
    registry.register("max", max, arity=None)
    registry.register("dist", _dist, arity=6)
    registry.register("roll", _roll, arity=6)
    registry.register("pitch", _pitch, arity=6)
    registry.register("yaw", _yaw, arity=6)
    return registry
