"""Compilation of sequence patterns into a flat NFA description.

The paper's match operator "implements pattern matching using an NFA"
(Sec. 2).  This module turns the nested :class:`~repro.cep.query.SequencePattern`
tree into the flat structure the runtime matcher consumes:

* an ordered list of :class:`Step` objects — one NFA state transition per
  event pattern, in match order, and
* a list of :class:`TimeConstraint` objects — one per ``within`` clause,
  each recording which span of steps it covers.

Keeping time constraints as (first step, last step, seconds) triples instead
of attaching them to the tree makes the runtime check trivial: whenever a
run reaches step ``last``, the difference between the timestamps recorded at
``last`` and ``first`` must not exceed ``seconds``; and a partial run whose
constraint window has already elapsed can be pruned early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.cep.expressions import Expression
from repro.cep.query import (
    ConsumePolicy,
    EventPattern,
    PatternNode,
    Query,
    SelectPolicy,
    SequencePattern,
)


@dataclass(frozen=True)
class Step:
    """One NFA transition: the next tuple must come from ``stream`` and
    satisfy ``predicate``."""

    index: int
    stream: str
    predicate: Expression
    label: str = ""

    def describe(self) -> str:
        label = self.label or f"step {self.index}"
        return f"{label}: {self.stream}({self.predicate.to_query()})"


@dataclass(frozen=True)
class TimeConstraint:
    """A ``within`` clause covering steps ``first`` … ``last`` (inclusive)."""

    first: int
    last: int
    seconds: float

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ValueError("constraint must cover a forward span of steps")
        if self.seconds <= 0:
            raise ValueError("'within' must be positive")


@dataclass(frozen=True)
class CompiledPattern:
    """The flat, runtime-ready form of a gesture pattern."""

    steps: Tuple[Step, ...]
    constraints: Tuple[TimeConstraint, ...]
    select: SelectPolicy = SelectPolicy.FIRST
    consume: ConsumePolicy = ConsumePolicy.ALL

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a compiled pattern needs at least one step")

    @property
    def length(self) -> int:
        return len(self.steps)

    def streams(self) -> Set[str]:
        return {step.stream for step in self.steps}

    def constraints_ending_at(self, step_index: int) -> List[TimeConstraint]:
        """Constraints that must be checked when a run reaches ``step_index``."""
        return [c for c in self.constraints if c.last == step_index]

    def constraints_covering(self, step_index: int) -> List[TimeConstraint]:
        """Constraints whose span includes ``step_index`` (for early pruning)."""
        return [c for c in self.constraints if c.first <= step_index < c.last]

    def describe(self) -> str:
        lines = [step.describe() for step in self.steps]
        for constraint in self.constraints:
            lines.append(
                f"within {constraint.seconds:g}s over steps "
                f"{constraint.first}..{constraint.last}"
            )
        lines.append(f"select {self.select.value} consume {self.consume.value}")
        return "\n".join(lines)


def compile_pattern(pattern: SequencePattern) -> CompiledPattern:
    """Flatten a (possibly nested) sequence pattern into a :class:`CompiledPattern`.

    The select/consume policies of the *outermost* sequence govern the
    matcher; nested policies only contribute their ``within`` constraints,
    which matches how the paper's generated queries use them (every nesting
    level repeats ``select first consume all``).
    """
    steps: List[Step] = []
    constraints: List[TimeConstraint] = []

    def visit(node: PatternNode) -> Tuple[int, int]:
        """Emit steps for ``node``; return (first, last) step indices."""
        if isinstance(node, EventPattern):
            index = len(steps)
            steps.append(
                Step(
                    index=index,
                    stream=node.stream,
                    predicate=node.predicate,
                    label=node.label,
                )
            )
            return index, index
        first_index: Optional[int] = None
        last_index = 0
        for element in node.elements:
            start, end = visit(element)
            if first_index is None:
                first_index = start
            last_index = end
        assert first_index is not None  # SequencePattern guarantees elements
        if node.within_seconds is not None:
            constraints.append(
                TimeConstraint(
                    first=first_index, last=last_index, seconds=node.within_seconds
                )
            )
        return first_index, last_index

    visit(pattern)
    return CompiledPattern(
        steps=tuple(steps),
        constraints=tuple(constraints),
        select=pattern.select,
        consume=pattern.consume,
    )


def compile_query(query: Query) -> CompiledPattern:
    """Compile the pattern of a full :class:`~repro.cep.query.Query`."""
    return compile_pattern(query.pattern)
