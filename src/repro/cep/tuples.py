"""Tuple schemas for CEP streams.

Streams in this engine carry plain dictionaries — the Kinect middleware
produces flat records and queries reference fields by name — but a
:class:`Schema` gives a stream a declared structure: field names, types,
and optional required-ness.  Schemas are used for

* validating tuples pushed to a stream in "strict" deployments,
* describing the ``kinect`` and ``kinect_t`` streams in generated queries,
* serialising gesture descriptions (the storage layer records which fields
  a gesture constrains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError

#: Types a schema field may declare.  ``"number"`` accepts ints and floats.
_ALLOWED_TYPES = ("number", "int", "float", "string", "bool", "any")

#: Canonical partition key of the sensor streams: the tracked player id the
#: Kinect middleware stamps on every frame (declared in
#: :func:`kinect_schema`).  The matcher's run table and the transformer's
#: smoothing state are keyed by this field so concurrent users never share
#: detection state; see :class:`repro.cep.matcher.MatcherConfig`.
DEFAULT_PARTITION_FIELD = "player"


@dataclass(frozen=True)
class Field:
    """One field of a stream schema.

    Attributes
    ----------
    name:
        Field name as referenced by queries (e.g. ``rhand_x``).
    type:
        One of ``number``, ``int``, ``float``, ``string``, ``bool``, ``any``.
    required:
        Whether tuples must carry the field.
    description:
        Optional human-readable description (shown in query explanations).
    """

    name: str
    type: str = "number"
    required: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.type not in _ALLOWED_TYPES:
            raise SchemaError(
                f"field '{self.name}' has unknown type '{self.type}'; "
                f"allowed: {_ALLOWED_TYPES}"
            )

    def accepts(self, value: Any) -> bool:
        """Check whether ``value`` is compatible with the declared type."""
        if self.type == "any":
            return True
        if self.type == "string":
            return isinstance(value, str)
        if self.type == "bool":
            return isinstance(value, bool)
        if self.type == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type == "float":
            return isinstance(value, float)
        # "number"
        return isinstance(value, (int, float)) and not isinstance(value, bool)


class Schema:
    """An ordered collection of :class:`Field` definitions.

    Examples
    --------
    >>> schema = Schema("kinect", [Field("ts"), Field("rhand_x")])
    >>> schema.validate({"ts": 0.0, "rhand_x": 1.0})
    >>> "rhand_x" in schema
    True
    """

    def __init__(self, name: str, fields: Iterable[Field]) -> None:
        if not name:
            raise SchemaError("schema name must be non-empty")
        self.name = name
        self._fields: Dict[str, Field] = {}
        for f in fields:
            if f.name in self._fields:
                raise SchemaError(f"duplicate field '{f.name}' in schema '{name}'")
            self._fields[f.name] = f

    # -- introspection -----------------------------------------------------------

    @property
    def fields(self) -> Tuple[Field, ...]:
        return tuple(self._fields.values())

    def field_names(self) -> List[str]:
        return list(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def get(self, name: str) -> Optional[Field]:
        return self._fields.get(name)

    # -- validation ---------------------------------------------------------------

    def validate(self, record: Mapping[str, Any]) -> None:
        """Raise :class:`~repro.errors.SchemaError` if the record is invalid."""
        for f in self._fields.values():
            if f.name not in record:
                if f.required:
                    raise SchemaError(
                        f"tuple for schema '{self.name}' is missing required "
                        f"field '{f.name}'"
                    )
                continue
            if not f.accepts(record[f.name]):
                raise SchemaError(
                    f"field '{f.name}' of schema '{self.name}' expects type "
                    f"'{f.type}' but got {type(record[f.name]).__name__}"
                )

    def conforms(self, record: Mapping[str, Any]) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(record)
        except SchemaError:
            return False
        return True

    def project(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Return only the schema fields of ``record`` (missing ones skipped)."""
        return {name: record[name] for name in self._fields if name in record}

    def __repr__(self) -> str:
        return f"Schema(name={self.name!r}, fields={self.field_names()})"


def kinect_schema(joints: Optional[Sequence[str]] = None) -> Schema:
    """Build the schema of the (raw or transformed) Kinect stream.

    Parameters
    ----------
    joints:
        Joints to include; defaults to the full tracked joint set.
    """
    from repro.kinect.skeleton import JOINTS, TRACKED_AXES, joint_field

    selected = joints if joints is not None else JOINTS
    fields: List[Field] = [
        Field("ts", "number", description="frame timestamp in seconds"),
        Field("player", "int", required=False, description="tracked player id"),
    ]
    for joint in selected:
        for axis in TRACKED_AXES:
            fields.append(
                Field(
                    joint_field(joint, axis),
                    "number",
                    description=f"{joint} {axis.upper()} coordinate (mm)",
                )
            )
    return Schema("kinect", fields)
