"""Sinks: where detections go.

On gesture detection, the paper's engine produces "a result tuple …  which
can be used to trigger arbitrary actions in any listening application".
A :class:`Sink` receives :class:`~repro.cep.matcher.Detection` objects; the
engine attaches one (or more) to every deployed query.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.cep.matcher import Detection


class Sink(ABC):
    """A consumer of detections."""

    @abstractmethod
    def emit(self, detection: Detection) -> None:
        """Handle one detection."""


class CollectingSink(Sink):
    """Stores all detections in memory (the default sink; tests rely on it).

    Parameters
    ----------
    capacity:
        Optional bound on the number of stored detections; older detections
        are dropped first, which keeps long-running sessions bounded.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive when given")
        self.capacity = capacity
        self.detections: List[Detection] = []

    def emit(self, detection: Detection) -> None:
        self.detections.append(detection)
        if self.capacity is not None and len(self.detections) > self.capacity:
            del self.detections[0: len(self.detections) - self.capacity]

    def clear(self) -> None:
        self.detections.clear()

    def outputs(self) -> List[str]:
        """Just the output values, in detection order."""
        return [d.output for d in self.detections]

    def __len__(self) -> int:
        return len(self.detections)

    def last(self) -> Optional[Detection]:
        return self.detections[-1] if self.detections else None


class CallbackSink(Sink):
    """Invokes a callable for every detection (application integration)."""

    def __init__(self, callback: Callable[[Detection], None]) -> None:
        self.callback = callback
        self.emitted = 0

    def emit(self, detection: Detection) -> None:
        self.callback(detection)
        self.emitted += 1


class NullSink(Sink):
    """Counts detections but keeps nothing (benchmarking)."""

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, detection: Detection) -> None:
        self.emitted += 1


class FanOutSink(Sink):
    """Forwards every detection to several sinks."""

    def __init__(self, sinks: List[Sink]) -> None:
        self.sinks = list(sinks)

    def emit(self, detection: Detection) -> None:
        for sink in self.sinks:
            sink.emit(detection)

    def add(self, sink: Sink) -> None:
        self.sinks.append(sink)
